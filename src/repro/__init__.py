"""repro — reproduction of "Low-Latency Asynchronous Logic Design for Inference at the Edge".

The package implements, in pure Python, the full stack the DATE 2021 paper
builds and evaluates:

* :mod:`repro.circuits` — gate-level netlists, behavioural cell models, and
  two synthetic characterised 65 nm-class standard-cell libraries standing in
  for the paper's UMC LL and FULL DIFFUSION libraries;
* :mod:`repro.sim` — an event-driven gate-level simulator with static timing
  analysis, switching-power accounting, supply-voltage scaling, and the
  dual-rail / synchronous stimulus environments;
* :mod:`repro.core` — the paper's contribution: dual-rail encoding with
  spacer-polarity tracking, negative-gate direct mapping, 1-of-n codes, and
  the *reduced completion-detection* scheme with its STA-derived grace
  period;
* :mod:`repro.tm` — a trainable Tsetlin machine (the ML algorithm whose
  inference datapath is studied) plus synthetic edge datasets;
* :mod:`repro.datapath` — the inference datapath circuits of Figure 2
  (clause logic, population counters, early-propagating magnitude
  comparator) in both dual-rail and single-rail styles;
* :mod:`repro.synth` — technology mapping and area/leakage/timing reports;
* :mod:`repro.hdl` — structural Verilog export with behavioral primitives,
  self-checking testbenches and in-process round-trip equivalence proofs;
* :mod:`repro.analysis` — the experiment harnesses that regenerate Table I,
  Figure 3 and the operand/latency distribution analyses.

Quickstart
----------
>>> from repro.analysis import default_workload, measure_dual_rail
>>> from repro.circuits import umc_ll_library
>>> workload = default_workload(num_operands=5)
>>> result = measure_dual_rail(workload, umc_ll_library())
>>> result.correctness
1.0
"""

from . import analysis, circuits, core, datapath, hdl, sim, synth, tm

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "circuits",
    "core",
    "datapath",
    "hdl",
    "sim",
    "synth",
    "tm",
    "__version__",
]
