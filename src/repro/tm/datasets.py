"""Synthetic Boolean datasets for training and for hardware workloads.

The paper's motivating applications are low-power edge inference tasks
(keyword spotting on wearables, sensor classification).  None of its
training data is published, so this module generates synthetic datasets with
the characteristics that matter to the hardware experiments:

* **noisy XOR** — the standard Tsetlin-machine benchmark (non-linearly
  separable, needs both clause polarities);
* **parity / majority / threshold** — pure Boolean functions with
  controllable difficulty;
* **sensor blobs** — Gaussian clusters booleanised with a thermometer code,
  standing in for accelerometer/microphone-style feature frames.

Every generator takes an explicit seed and returns a :class:`Dataset`
with train/test splits, so experiments are reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .booleanize import ThermometerBooleanizer


@dataclass
class Dataset:
    """A labelled Boolean dataset with a train/test split."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_features(self) -> int:
        """Number of Boolean features per sample."""
        return int(self.train_x.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels."""
        return int(max(self.train_y.max(), self.test_y.max())) + 1

    def summary(self) -> str:
        """One-line description used by the examples."""
        return (
            f"{self.name}: {self.train_x.shape[0]} train / {self.test_x.shape[0]} test "
            f"samples, {self.num_features} Boolean features, {self.num_classes} classes"
        )


def _split(x: np.ndarray, y: np.ndarray, test_fraction: float,
           rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    indices = rng.permutation(x.shape[0])
    cut = int(round(x.shape[0] * (1.0 - test_fraction)))
    train_idx, test_idx = indices[:cut], indices[cut:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def noisy_xor(
    num_samples: int = 600,
    num_features: int = 8,
    noise: float = 0.1,
    test_fraction: float = 0.3,
    seed: int = 42,
) -> Dataset:
    """The classic noisy-XOR benchmark.

    The label is the XOR of the first two features; the remaining features
    are irrelevant distractors, and the label is flipped with probability
    *noise*.  A linear model cannot solve it; a Tsetlin machine with both
    clause polarities can.
    """
    if num_features < 2:
        raise ValueError("noisy_xor needs at least two features")
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=(num_samples, num_features), dtype=np.int8)
    y = np.logical_xor(x[:, 0], x[:, 1]).astype(np.int8)
    flips = rng.random(num_samples) < noise
    y = np.where(flips, 1 - y, y).astype(np.int8)
    train_x, train_y, test_x, test_y = _split(x, y, test_fraction, rng)
    return Dataset("noisy-xor", train_x, train_y, test_x, test_y)


def parity(
    num_samples: int = 600,
    num_features: int = 6,
    parity_bits: int = 3,
    test_fraction: float = 0.3,
    seed: int = 43,
) -> Dataset:
    """Parity of the first *parity_bits* features (hard for shallow models)."""
    if parity_bits > num_features:
        raise ValueError("parity_bits cannot exceed num_features")
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=(num_samples, num_features), dtype=np.int8)
    y = (x[:, :parity_bits].sum(axis=1) % 2).astype(np.int8)
    train_x, train_y, test_x, test_y = _split(x, y, test_fraction, rng)
    return Dataset(f"parity-{parity_bits}", train_x, train_y, test_x, test_y)


def majority(
    num_samples: int = 600,
    num_features: int = 9,
    test_fraction: float = 0.3,
    seed: int = 44,
) -> Dataset:
    """Label 1 when more than half of the features are 1."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=(num_samples, num_features), dtype=np.int8)
    y = (x.sum(axis=1) * 2 > num_features).astype(np.int8)
    train_x, train_y, test_x, test_y = _split(x, y, test_fraction, rng)
    return Dataset("majority", train_x, train_y, test_x, test_y)


def threshold_pattern(
    num_samples: int = 600,
    num_features: int = 8,
    pattern_density: float = 0.5,
    noise: float = 0.05,
    test_fraction: float = 0.3,
    seed: int = 45,
) -> Dataset:
    """Membership of a random conjunctive pattern with feature noise.

    A hidden conjunction over a random subset of the features defines the
    positive class — the kind of function a single Tsetlin clause represents
    exactly, useful for checking that training recovers interpretable
    structure.
    """
    rng = np.random.default_rng(seed)
    pattern_mask = rng.random(num_features) < pattern_density
    if not pattern_mask.any():
        pattern_mask[0] = True
    pattern_value = rng.integers(0, 2, size=num_features, dtype=np.int8)
    x = rng.integers(0, 2, size=(num_samples, num_features), dtype=np.int8)
    # Force half of the samples to match the hidden pattern.
    matches = rng.random(num_samples) < 0.5
    x[np.ix_(matches, pattern_mask)] = pattern_value[pattern_mask]
    y = np.all(x[:, pattern_mask] == pattern_value[pattern_mask], axis=1).astype(np.int8)
    noisy = rng.random(num_samples) < noise
    y = np.where(noisy, 1 - y, y).astype(np.int8)
    train_x, train_y, test_x, test_y = _split(x, y, test_fraction, rng)
    return Dataset("threshold-pattern", train_x, train_y, test_x, test_y)


def sensor_blobs(
    num_samples: int = 400,
    num_raw_features: int = 4,
    num_classes: int = 2,
    thermometer_levels: int = 3,
    spread: float = 1.0,
    test_fraction: float = 0.3,
    seed: int = 46,
) -> Dataset:
    """Gaussian sensor-frame clusters booleanised with a thermometer code.

    Stands in for the booleanised accelerometer / audio feature frames that
    an edge inference device would classify.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 3.0, size=(num_classes, num_raw_features))
    samples_per_class = num_samples // num_classes
    raw = []
    labels = []
    for class_idx in range(num_classes):
        raw.append(
            rng.normal(centers[class_idx], spread, size=(samples_per_class, num_raw_features))
        )
        labels.append(np.full(samples_per_class, class_idx, dtype=np.int8))
    raw_x = np.vstack(raw)
    y = np.concatenate(labels)
    encoder = ThermometerBooleanizer(levels=thermometer_levels)
    x = encoder.fit_transform(raw_x)
    train_x, train_y, test_x, test_y = _split(x, y, test_fraction, rng)
    return Dataset("sensor-blobs", train_x, train_y, test_x, test_y)


def random_operand_stream(
    num_features: int,
    num_operands: int,
    bias: float = 0.5,
    seed: int = 47,
) -> np.ndarray:
    """Uniform random feature vectors (a worst-case-style hardware workload)."""
    rng = np.random.default_rng(seed)
    return (rng.random((num_operands, num_features)) < bias).astype(np.int8)


# --------------------------------------------------------------------------
# Dataset registry — the "dataset" axis of the design-space exploration
# --------------------------------------------------------------------------

#: Generators addressable by name (the DSE grid's ``dataset`` axis).
DATASET_BUILDERS = {
    "noisy-xor": noisy_xor,
    "parity": parity,
    "majority": majority,
    "threshold-pattern": threshold_pattern,
    "sensor-blobs": sensor_blobs,
}

#: Datasets with continuous raw features, i.e. the ones whose Boolean width
#: is controlled by the booleanizer resolution (thermometer levels).
CONTINUOUS_DATASETS = ("sensor-blobs",)


# Adapters translate the generic DSE knobs (num_samples, num_features,
# booleanizer_levels, seed) into each generator's own signature.  Adding a
# dataset means adding exactly one entry here (plus CONTINUOUS_DATASETS when
# the booleanizer axis applies) — make_dataset has no per-name branches.
_DATASET_ADAPTERS = {
    "noisy-xor": lambda n, f, levels, seed: noisy_xor(
        num_samples=n, num_features=f, seed=seed
    ),
    "parity": lambda n, f, levels, seed: parity(
        num_samples=n, num_features=f, parity_bits=min(3, f), seed=seed
    ),
    "majority": lambda n, f, levels, seed: majority(
        num_samples=n, num_features=f, seed=seed
    ),
    "threshold-pattern": lambda n, f, levels, seed: threshold_pattern(
        num_samples=n, num_features=f, seed=seed
    ),
    "sensor-blobs": lambda n, f, levels, seed: sensor_blobs(
        num_samples=n, num_raw_features=f, thermometer_levels=levels, seed=seed
    ),
}


def dataset_names():
    """The registered dataset names, sorted."""
    return sorted(_DATASET_ADAPTERS)


def uses_booleanizer(name: str) -> bool:
    """``True`` when *name* has continuous features (booleanizer bits apply)."""
    if name not in _DATASET_ADAPTERS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {dataset_names()}")
    return name in CONTINUOUS_DATASETS


def make_dataset(
    name: str,
    num_samples: int = 400,
    num_features: int = 4,
    booleanizer_levels: int = 1,
    seed: int = 2021,
) -> Dataset:
    """Build a registered dataset from the generic DSE knobs.

    Parameters
    ----------
    num_features:
        For Boolean datasets this is the Boolean feature count directly.
        For continuous datasets (:data:`CONTINUOUS_DATASETS`) it is the
        *raw* sensor-channel count; the Boolean width after encoding is
        ``num_features × booleanizer_levels``.
    booleanizer_levels:
        Thermometer-code resolution for continuous datasets; ignored for
        Boolean datasets (their generators produce bits natively).
    """
    if name not in _DATASET_ADAPTERS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {dataset_names()}")
    if booleanizer_levels < 1:
        raise ValueError(f"booleanizer_levels must be >= 1, got {booleanizer_levels}")
    return _DATASET_ADAPTERS[name](num_samples, num_features, booleanizer_levels, seed)
