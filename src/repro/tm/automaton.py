"""Tsetlin automata — the learning elements of the Tsetlin machine.

A Tsetlin automaton (TA) is a finite-state machine with ``2n`` states that
learns one of two actions through reward/penalty reinforcement:

* states ``1 … n``   → action **exclude** (action 1 in the paper),
* states ``n+1 … 2n`` → action **include** (action 2).

A reward pushes the automaton deeper into its current action's half (more
confident); a penalty pushes it towards the boundary and eventually into the
other half.  A team of TAs — two per input feature, one for the literal and
one for its negation — decides the composition of each conjunctive clause.

For the *inference datapath* studied in the paper only the final actions
matter (the exclude outputs become the ``e`` primary inputs of the circuit);
training is implemented here so that realistic clause compositions and
operand distributions can be generated for the latency/energy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class TeamShape:
    """Dimensions of a clause's automaton team."""

    num_clauses: int
    num_literals: int


class TsetlinAutomatonTeam:
    """A matrix of Tsetlin automata: one row per clause, one column per literal.

    Parameters
    ----------
    num_clauses:
        Number of clauses controlled by this team.
    num_literals:
        Number of literals per clause (``2 × number of features``).
    num_states:
        Number of states per action half (``n``); total states are ``2n``.
    rng:
        NumPy random generator used for the initial state assignment.
    """

    def __init__(
        self,
        num_clauses: int,
        num_literals: int,
        num_states: int = 100,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_clauses <= 0 or num_literals <= 0:
            raise ValueError("team dimensions must be positive")
        if num_states <= 0:
            raise ValueError("num_states must be positive")
        self.num_clauses = int(num_clauses)
        self.num_literals = int(num_literals)
        self.num_states = int(num_states)
        rng = rng if rng is not None else np.random.default_rng()
        # Start every automaton on the exclude/include boundary so early
        # feedback decides the action quickly (standard TM initialisation).
        self.state = rng.choice(
            [self.num_states, self.num_states + 1],
            size=(self.num_clauses, self.num_literals),
        ).astype(np.int32)

    # ---------------------------------------------------------------- actions
    def include_actions(self) -> np.ndarray:
        """Boolean matrix: ``True`` where the automaton's action is *include*."""
        return self.state > self.num_states

    def exclude_actions(self) -> np.ndarray:
        """Boolean matrix: ``True`` where the automaton's action is *exclude*.

        These are the ``e`` signals abstracted to the circuit's environment
        in the paper's inference datapath.
        """
        return self.state <= self.num_states

    def include_count(self) -> int:
        """Total number of included literals across all clauses."""
        return int(self.include_actions().sum())

    # --------------------------------------------------------------- feedback
    def reward(self, mask: np.ndarray) -> None:
        """Reward the automata selected by the Boolean *mask*.

        Rewarding reinforces the current action: include states move up
        (towards ``2n``), exclude states move down (towards 1).
        """
        mask = np.asarray(mask, dtype=bool)
        include = self.include_actions()
        self.state = np.where(
            mask & include, np.minimum(self.state + 1, 2 * self.num_states), self.state
        )
        self.state = np.where(
            mask & ~include, np.maximum(self.state - 1, 1), self.state
        )

    def penalize(self, mask: np.ndarray) -> None:
        """Penalise the automata selected by the Boolean *mask*.

        Penalising weakens the current action: include states move down,
        exclude states move up, possibly crossing the action boundary.
        """
        mask = np.asarray(mask, dtype=bool)
        include = self.include_actions()
        self.state = np.where(mask & include, self.state - 1, self.state)
        self.state = np.where(mask & ~include, self.state + 1, self.state)
        np.clip(self.state, 1, 2 * self.num_states, out=self.state)

    # ---------------------------------------------------------------- helpers
    def set_actions(self, include: np.ndarray) -> None:
        """Force the automata to specific actions (used in tests and examples)."""
        include = np.asarray(include, dtype=bool)
        if include.shape != self.state.shape:
            raise ValueError(
                f"action matrix shape {include.shape} does not match team shape {self.state.shape}"
            )
        self.state = np.where(include, self.num_states + 1, self.num_states).astype(np.int32)

    def shape(self) -> TeamShape:
        """Return the team dimensions."""
        return TeamShape(self.num_clauses, self.num_literals)

    def copy(self) -> "TsetlinAutomatonTeam":
        """Deep copy of the team (used for checkpointing during training)."""
        clone = TsetlinAutomatonTeam(
            self.num_clauses, self.num_literals, self.num_states,
            rng=np.random.default_rng(0),
        )
        clone.state = self.state.copy()
        return clone
