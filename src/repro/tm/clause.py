"""Conjunctive clauses — the inference primitive of the Tsetlin machine.

A clause is the AND of a subset of literals (input features and their
negations); which literals participate is decided by the clause's Tsetlin
automaton team.  Half of a class's clauses vote *for* the class (positive
polarity) and half vote *against* it (negative polarity); the vote sum is
thresholded to produce the classification (Section II of the paper).

The functions here operate on literal matrices so they can serve both the
training loop (:mod:`repro.tm.machine`) and the software golden model the
hardware datapath is verified against (:mod:`repro.tm.inference`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def literals_from_features(features: np.ndarray) -> np.ndarray:
    """Build the literal vector ``[x_0 … x_{o-1}, ¬x_0 … ¬x_{o-1}]``.

    Parameters
    ----------
    features:
        Binary feature vector (or matrix of shape ``(samples, features)``).

    Returns
    -------
    numpy.ndarray
        Literal vector/matrix of width ``2 × features``: the original
        features followed by their negations.  The paper's circuit receives
        the features dual-rail encoded, so the negated literal is available
        for free on the negative rail — the same trick is mirrored in the
        clause-logic generator.
    """
    features = np.asarray(features)
    negated = 1 - features
    return np.concatenate([features, negated], axis=-1)


def clause_outputs(
    include: np.ndarray,
    literals: np.ndarray,
    empty_clause_output: int = 0,
) -> np.ndarray:
    """Evaluate every clause on a single literal vector.

    Parameters
    ----------
    include:
        Boolean matrix ``(clauses, literals)`` — ``True`` where a literal is
        included in the clause.
    literals:
        Binary literal vector of length ``literals``.
    empty_clause_output:
        Value produced by a clause that includes no literals at all.  The
        standard convention is 1 during training (so empty clauses keep
        receiving feedback) and 0 during classification; the caller chooses.

    Returns
    -------
    numpy.ndarray
        Binary vector with one output per clause.
    """
    include = np.asarray(include, dtype=bool)
    literals = np.asarray(literals)
    if literals.ndim != 1:
        raise ValueError("clause_outputs evaluates a single sample; use a loop or vmap for batches")
    if include.shape[1] != literals.shape[0]:
        raise ValueError(
            f"include matrix has {include.shape[1]} literal columns but the literal "
            f"vector has {literals.shape[0]} entries"
        )
    # A clause fails if any included literal is 0.
    violated = include & (literals[np.newaxis, :] == 0)
    outputs = (~violated.any(axis=1)).astype(np.int8)
    empty = ~include.any(axis=1)
    outputs[empty] = empty_clause_output
    return outputs


def split_polarities(outputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split clause outputs into positive-polarity and negative-polarity halves.

    Even-indexed clauses vote for the class, odd-indexed clauses vote
    against it (the usual TM convention, matching the paper's "half of the
    clauses can vote positively, while the other half ... negatively").
    """
    outputs = np.asarray(outputs)
    return outputs[0::2], outputs[1::2]


def vote_sum(outputs: np.ndarray) -> int:
    """Class confidence: positive votes minus negative votes."""
    positive, negative = split_polarities(outputs)
    return int(positive.sum()) - int(negative.sum())


def vote_counts(outputs: np.ndarray) -> Tuple[int, int]:
    """Return ``(positive_votes, negative_votes)`` — the two popcount operands.

    This is exactly the intermediate representation of the paper's datapath:
    the positive and negative votes are counted separately by population
    counters and only then compared by the magnitude comparator.
    """
    positive, negative = split_polarities(outputs)
    return int(positive.sum()), int(negative.sum())


def classify(outputs: np.ndarray) -> int:
    """Threshold the vote sum: class membership iff the sum is non-negative.

    "If the votes are positive (or zero), the input data is determined to
    belong to the class" (Section II).
    """
    return 1 if vote_sum(outputs) >= 0 else 0
