"""Tsetlin machine algorithm substrate (training, inference, datasets).

* :mod:`repro.tm.automaton` — Tsetlin automaton teams (reinforcement state);
* :mod:`repro.tm.clause` — conjunctive clause evaluation and vote counting;
* :mod:`repro.tm.machine` — trainable two-class and multi-class Tsetlin
  machines (Type I / Type II feedback);
* :mod:`repro.tm.inference` — inference-only model mirroring the hardware
  datapath structure (the golden reference for circuit verification);
* :mod:`repro.tm.booleanize` — threshold / thermometer booleanisers;
* :mod:`repro.tm.datasets` — synthetic edge-inference datasets and operand
  streams.
"""

from .automaton import TeamShape, TsetlinAutomatonTeam
from .booleanize import ThermometerBooleanizer, ThresholdBooleanizer
from .clause import (
    classify,
    clause_outputs,
    literals_from_features,
    split_polarities,
    vote_counts,
    vote_sum,
)
from .datasets import (
    CONTINUOUS_DATASETS,
    DATASET_BUILDERS,
    Dataset,
    dataset_names,
    majority,
    make_dataset,
    noisy_xor,
    parity,
    random_operand_stream,
    sensor_blobs,
    threshold_pattern,
    uses_booleanizer,
)
from .inference import InferenceModel, InferenceTrace
from .machine import MultiClassTsetlinMachine, TrainingHistory, TsetlinMachine

__all__ = [
    "CONTINUOUS_DATASETS",
    "DATASET_BUILDERS",
    "Dataset",
    "InferenceModel",
    "InferenceTrace",
    "MultiClassTsetlinMachine",
    "TeamShape",
    "ThermometerBooleanizer",
    "ThresholdBooleanizer",
    "TrainingHistory",
    "TsetlinAutomatonTeam",
    "TsetlinMachine",
    "classify",
    "clause_outputs",
    "dataset_names",
    "literals_from_features",
    "majority",
    "make_dataset",
    "noisy_xor",
    "parity",
    "random_operand_stream",
    "sensor_blobs",
    "split_polarities",
    "threshold_pattern",
    "uses_booleanizer",
    "vote_counts",
    "vote_sum",
]
