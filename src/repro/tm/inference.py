"""Inference-only Tsetlin machine model — the hardware's golden reference.

For inference the Tsetlin automata are not required (Section II): only their
final *exclude* decisions matter.  :class:`InferenceModel` captures exactly
that — an exclude matrix plus the datapath structure of Figure 2:

1. per-clause masking of the feature literals by the exclude signals,
2. AND-reduction into clause outputs,
3. separate population counts of the positive-polarity and
   negative-polarity votes,
4. magnitude comparison of the two counts.

Every step is exposed individually so the hardware test-bench can compare
intermediate circuit values (clause outputs, popcounts, comparator verdict)
against this model, not just the final classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass
class InferenceTrace:
    """All intermediate values of one software inference."""

    features: np.ndarray
    clause_outputs: np.ndarray
    positive_votes: int
    negative_votes: int
    decision: int

    @property
    def comparator_verdict(self) -> str:
        """``"greater"``, ``"equal"`` or ``"less"`` (positive count vs negative)."""
        if self.positive_votes > self.negative_votes:
            return "greater"
        if self.positive_votes == self.negative_votes:
            return "equal"
        return "less"


class InferenceModel:
    """Clause masks plus the vote-count/compare pipeline of the paper's datapath.

    Parameters
    ----------
    exclude:
        Boolean matrix of shape ``(clauses, 2·features)`` in the hardware
        ordering: column ``2m`` masks feature ``f_m``, column ``2m+1`` masks
        its negation.  ``True`` means the literal is excluded from the
        clause.
    """

    def __init__(self, exclude: np.ndarray) -> None:
        exclude = np.asarray(exclude, dtype=bool)
        if exclude.ndim != 2 or exclude.shape[1] % 2 != 0:
            raise ValueError(
                "exclude must be a (clauses, 2*features) matrix in hardware ordering"
            )
        if exclude.shape[0] % 2 != 0:
            raise ValueError("the number of clauses must be even (positive/negative halves)")
        self.exclude = exclude
        self.num_clauses = exclude.shape[0]
        self.num_features = exclude.shape[1] // 2

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_machine(cls, machine) -> "InferenceModel":
        """Extract the inference model from a trained :class:`~repro.tm.machine.TsetlinMachine`."""
        return cls(machine.exclude_masks())

    @classmethod
    def random(cls, num_clauses: int, num_features: int, include_probability: float = 0.25,
               seed: Optional[int] = 7) -> "InferenceModel":
        """A random clause composition (used for workload sweeps and tests)."""
        rng = np.random.default_rng(seed)
        include = rng.random((num_clauses, 2 * num_features)) < include_probability
        return cls(~include)

    # --------------------------------------------------------------- pipeline
    def partial_clause_masks(self, features: Sequence[int]) -> np.ndarray:
        """Per-clause, per-feature masked literal values (the ``pc`` signals).

        ``pc[j, m] = (e_{2m} OR f_m) AND (e_{2m+1} OR ¬f_m)`` — the OR-mask
        structure of the paper's partial clause evaluation circuit.
        """
        features = np.asarray(features, dtype=np.int8)
        if features.shape[0] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {features.shape[0]}"
            )
        f = features[np.newaxis, :]
        e_direct = self.exclude[:, 0::2]
        e_negated = self.exclude[:, 1::2]
        direct_term = e_direct | (f == 1)
        negated_term = e_negated | (f == 0)
        return (direct_term & negated_term).astype(np.int8)

    def clause_outputs(self, features: Sequence[int]) -> np.ndarray:
        """AND-reduce the partial clause values into one output per clause."""
        pc = self.partial_clause_masks(features)
        return pc.all(axis=1).astype(np.int8)

    def vote_counts(self, features: Sequence[int]) -> Tuple[int, int]:
        """Population counts of the positive- and negative-polarity votes."""
        outputs = self.clause_outputs(features)
        return int(outputs[0::2].sum()), int(outputs[1::2].sum())

    def decision(self, features: Sequence[int]) -> int:
        """Class membership: 1 when positive votes >= negative votes."""
        pos, neg = self.vote_counts(features)
        return 1 if pos >= neg else 0

    def trace(self, features: Sequence[int]) -> InferenceTrace:
        """Full intermediate-value trace for hardware cross-checking."""
        features = np.asarray(features, dtype=np.int8)
        outputs = self.clause_outputs(features)
        pos, neg = int(outputs[0::2].sum()), int(outputs[1::2].sum())
        return InferenceTrace(
            features=features,
            clause_outputs=outputs,
            positive_votes=pos,
            negative_votes=neg,
            decision=1 if pos >= neg else 0,
        )

    # -------------------------------------------------------------- workloads
    def exclude_flat(self) -> np.ndarray:
        """Exclude matrix flattened row-major — the order the hardware ``e`` bus uses."""
        return self.exclude.astype(np.int8).ravel()

    def vote_difference_distribution(self, samples: np.ndarray) -> Dict[int, int]:
        """Histogram of ``positive − negative`` votes over a sample set.

        The shape of this distribution is what determines the average-case
        benefit of the early-propagating comparator (contribution 2 of the
        paper): large vote differences terminate the comparison at a high
        order bit, small differences walk further down.
        """
        histogram: Dict[int, int] = {}
        for row in np.asarray(samples, dtype=np.int8):
            pos, neg = self.vote_counts(row)
            diff = pos - neg
            histogram[diff] = histogram.get(diff, 0) + 1
        return dict(sorted(histogram.items()))
