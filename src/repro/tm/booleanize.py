"""Booleanisation of real-valued features for the Tsetlin machine.

Tsetlin machines operate on Boolean inputs, so sensor-style continuous data
must be thresholded first.  Two standard encoders are provided:

* :class:`ThresholdBooleanizer` — one bit per feature, split at a chosen
  quantile (median by default);
* :class:`ThermometerBooleanizer` — ``levels`` bits per feature using a
  thermometer (cumulative) code over per-feature quantiles, which preserves
  ordering information and is what edge-ML Tsetlin deployments typically use.

Both are fit on training data and then applied to any dataset, mirroring a
scikit-learn-style ``fit`` / ``transform`` interface without the dependency.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ThresholdBooleanizer:
    """One Boolean per feature: ``x >= quantile(x, q)``."""

    def __init__(self, quantile: float = 0.5) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = float(quantile)
        self.thresholds_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "ThresholdBooleanizer":
        """Learn per-feature thresholds from *data* (samples × features)."""
        data = np.asarray(data, dtype=float)
        self.thresholds_ = np.quantile(data, self.quantile, axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Binarise *data* with the learnt thresholds."""
        if self.thresholds_ is None:
            raise RuntimeError("fit must be called before transform")
        data = np.asarray(data, dtype=float)
        return (data >= self.thresholds_).astype(np.int8)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on *data* and return its Boolean encoding."""
        return self.fit(data).transform(data)

    @property
    def bits_per_feature(self) -> int:
        """Number of Boolean outputs produced per input feature."""
        return 1


class ThermometerBooleanizer:
    """Thermometer (cumulative) code with *levels* bits per feature."""

    def __init__(self, levels: int = 4) -> None:
        if levels < 1:
            raise ValueError("levels must be at least 1")
        self.levels = int(levels)
        self.thresholds_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "ThermometerBooleanizer":
        """Learn evenly spaced per-feature quantile thresholds."""
        data = np.asarray(data, dtype=float)
        quantiles = np.linspace(0.0, 1.0, self.levels + 2)[1:-1]
        # Shape: (levels, features)
        self.thresholds_ = np.quantile(data, quantiles, axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Return the thermometer encoding, shape ``(samples, features × levels)``."""
        if self.thresholds_ is None:
            raise RuntimeError("fit must be called before transform")
        data = np.asarray(data, dtype=float)
        samples, features = data.shape
        bits = np.zeros((samples, features * self.levels), dtype=np.int8)
        for level in range(self.levels):
            comparison = (data >= self.thresholds_[level]).astype(np.int8)
            bits[:, level::self.levels] = comparison
        return bits

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on *data* and return its thermometer encoding."""
        return self.fit(data).transform(data)

    @property
    def bits_per_feature(self) -> int:
        """Number of Boolean outputs produced per input feature."""
        return self.levels
