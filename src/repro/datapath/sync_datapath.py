"""The synchronous single-rail baseline datapath.

Table I compares the proposed dual-rail circuit against a conventional
clocked single-rail implementation of the same inference function.  The
baseline built here has:

* a D flip-flop on every primary input (features and exclude signals) and on
  every primary output — its "sequential area" in the Table-I sense;
* the same clause / population-count / comparator structure as the dual-rail
  design, but in ordinary single-rail logic (XOR cells allowed);
* a clock whose period is set by static timing analysis of the longest
  register-to-register path — the paper's "the clock period defines the
  latency for single-rail designs".

The :class:`SingleRailDatapath` wrapper mirrors :class:`~repro.datapath.datapath.DualRailDatapath`
so the Table-I harness can drive both designs with identical operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.builder import LogicBuilder
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.sim.sta import register_to_register_period

from .clause_logic import single_rail_clause
from .comparator import comparator_decision_bit, single_rail_magnitude_comparator
from .datapath import DatapathConfig, exclude_input_name, feature_input_name
from .popcount import single_rail_popcount

#: Names of the registered single-rail outputs.
SINGLE_RAIL_OUTPUTS = ("less", "equal", "greater", "decision")


@dataclass
class SingleRailInterface:
    """Net-name maps of the generated single-rail datapath."""

    clock_net: str
    input_nets: Dict[str, str]
    output_nets: Dict[str, str]


def build_single_rail_datapath(config: DatapathConfig) -> Tuple[Netlist, SingleRailInterface]:
    """Construct the registered single-rail baseline for *config*."""
    config.validate()
    builder = LogicBuilder(
        f"tm_single_rail_f{config.num_features}_c{config.clauses_per_polarity}"
    )
    clk = builder.input("clk")

    # Registered primary inputs.
    input_nets: Dict[str, str] = {}
    registered: Dict[str, str] = {}

    def register_input(name: str) -> str:
        pad = builder.input(f"{name}_in")
        q = builder.dff(pad, clk, name=f"ff_{name.replace('[', '_').replace(']', '')}")
        input_nets[name] = pad
        registered[name] = q
        return q

    features = [register_input(feature_input_name(m)) for m in range(config.num_features)]
    excludes_pos = [
        [register_input(exclude_input_name("p", j, k)) for k in range(config.excludes_per_clause)]
        for j in range(config.clauses_per_polarity)
    ]
    excludes_neg = [
        [register_input(exclude_input_name("n", j, k)) for k in range(config.excludes_per_clause)]
        for j in range(config.clauses_per_polarity)
    ]

    # Shared inverted literals (one inverter per feature).
    not_features = [builder.not_(f) for f in features]

    positive_votes = [
        single_rail_clause(builder, features, excludes_pos[j], not_features=not_features,
                           name=f"clp{j}")
        for j in range(config.clauses_per_polarity)
    ]
    negative_votes = [
        single_rail_clause(builder, features, excludes_neg[j], not_features=not_features,
                           name=f"cln{j}")
        for j in range(config.clauses_per_polarity)
    ]

    pos_count = single_rail_popcount(builder, positive_votes, name="popp")
    neg_count = single_rail_popcount(builder, negative_votes, name="popn")

    greater, equal, less = single_rail_magnitude_comparator(builder, pos_count, neg_count)
    decision = comparator_decision_bit(builder, greater, equal)

    # Registered primary outputs.
    output_nets: Dict[str, str] = {}
    for name, net in (("less", less), ("equal", equal), ("greater", greater),
                      ("decision", decision)):
        q = builder.dff(net, clk, name=f"ff_out_{name}")
        out_name = f"{name}_out"
        builder.output(out_name, q)
        output_nets[name] = out_name

    interface = SingleRailInterface(clock_net=clk, input_nets=input_nets,
                                    output_nets=output_nets)
    return builder.netlist, interface


class SingleRailDatapath:
    """High-level handle on the synchronous baseline datapath."""

    def __init__(self, config: DatapathConfig) -> None:
        self.config = config
        self.netlist, self.interface = build_single_rail_datapath(config)

    # ------------------------------------------------------------- operands
    def operand_assignments(
        self, features: Sequence[int], exclude: np.ndarray
    ) -> Dict[str, int]:
        """Input-name → value map for one operand (same convention as dual-rail)."""
        features = np.asarray(features, dtype=np.int8)
        exclude = np.asarray(exclude, dtype=bool)
        cfg = self.config
        if features.shape[0] != cfg.num_features:
            raise ValueError(f"expected {cfg.num_features} features, got {features.shape[0]}")
        expected_shape = (cfg.num_clauses, cfg.excludes_per_clause)
        if exclude.shape != expected_shape:
            raise ValueError(
                f"exclude matrix shape {exclude.shape} does not match {expected_shape}"
            )
        assignments: Dict[str, int] = {}
        for m in range(cfg.num_features):
            assignments[feature_input_name(m)] = int(features[m])
        for j in range(cfg.clauses_per_polarity):
            for k in range(cfg.excludes_per_clause):
                assignments[exclude_input_name("p", j, k)] = int(exclude[2 * j, k])
                assignments[exclude_input_name("n", j, k)] = int(exclude[2 * j + 1, k])
        return assignments

    def clock_period(self, library: CellLibrary, vdd: Optional[float] = None) -> float:
        """Minimum clock period (ps) of the baseline on *library* at *vdd*."""
        return register_to_register_period(self.netlist, library, vdd=vdd)

    @staticmethod
    def decode_outputs(outputs: Dict[str, Optional[int]]) -> Dict[str, int]:
        """Convert sampled output values into plain integers (X becomes -1)."""
        decoded = {}
        for name, value in outputs.items():
            decoded[name] = -1 if value is None else int(value)
        return decoded

    def cell_count(self) -> int:
        """Number of cell instances in the baseline netlist."""
        return self.netlist.cell_count()
