"""Population counters (vote counting) — Section IV-B of the paper.

Two architectures are provided, for both circuit styles:

* :func:`dual_rail_popcount8` / :func:`single_rail_popcount8` — the
  half-adder-heavy eight-input counter modelled on Dalalah's bit-counting
  architecture used by the paper.  Our variant uses ten half-adders, two
  full-adders and two OR gates (the paper quotes nine half-adders; the extra
  one combines the two weight-4 carries whose mutual structure we prove in
  the unit tests).  It produces a 4-bit count ``y3 y2 y1 y0``.
* :func:`dual_rail_popcount` / :func:`single_rail_popcount` — a generic
  carry-save counter tree for any input width, used for configurations with
  a different number of clauses per polarity and for the architecture
  ablation benchmark.

Spacer-inverter placement in the dual-rail counters is handled by the
builder's polarity tracking: wherever a half/full-adder would combine
signals of differing spacer polarity, a spacer inverter is inserted — the
same role as the two explicit ``spinv`` blocks in the paper's Figure 2.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.circuits.builder import LogicBuilder
from repro.core.dual_rail import DualRailBuilder, DualRailSignal

from .adders import (
    dual_rail_full_adder,
    dual_rail_half_adder,
    single_rail_full_adder,
    single_rail_half_adder,
)


def output_width(num_inputs: int) -> int:
    """Number of count bits needed for *num_inputs* vote lines."""
    return max(1, math.ceil(math.log2(num_inputs + 1)))


# ---------------------------------------------------------------------------
# Dual-rail counters
# ---------------------------------------------------------------------------

def dual_rail_popcount8(
    builder: DualRailBuilder, inputs: Sequence[DualRailSignal], name: str = "pop"
) -> List[DualRailSignal]:
    """Eight-input dual-rail population count (Dalalah-style, HA-heavy).

    Returns the count bits LSB first: ``[y0, y1, y2, y3]``.
    """
    if len(inputs) != 8:
        raise ValueError(f"dual_rail_popcount8 requires exactly 8 inputs, got {len(inputs)}")
    x = list(inputs)
    ha = lambda a, b, n: dual_rail_half_adder(builder, a, b, name=f"{name}_{n}")
    fa = lambda a, b, c, n: dual_rail_full_adder(builder, a, b, c, name=f"{name}_{n}")

    # Stage 1: pair the inputs (4 half-adders).
    h1 = ha(x[0], x[1], "ha1")
    h2 = ha(x[2], x[3], "ha2")
    h3 = ha(x[4], x[5], "ha3")
    h4 = ha(x[6], x[7], "ha4")
    # Stage 2: combine the weight-1 sums (3 half-adders).
    h5 = ha(h1.sum, h2.sum, "ha5")
    h6 = ha(h3.sum, h4.sum, "ha6")
    h7 = ha(h5.sum, h6.sum, "ha7")
    y0 = h7.sum
    # Stage 3: combine the weight-2 signals (2 full-adders + 2 half-adders).
    f1 = fa(h1.carry, h2.carry, h5.carry, "fa1")
    f2 = fa(h3.carry, h4.carry, h6.carry, "fa2")
    h8 = ha(f1.sum, f2.sum, "ha8")
    h9 = ha(h8.sum, h7.carry, "ha9")
    y1 = h9.sum
    # Stage 4: the four weight-4 carries.  The counter structure guarantees
    # that only (f1.carry, f2.carry) can be asserted together, so a single
    # extra half-adder plus two OR gates finish the job.
    h10 = ha(f1.carry, f2.carry, "ha10")
    y3 = h10.carry
    partial = builder.or_positive(h8.carry, h9.carry, name=f"{name}_or1")
    y2 = builder.or_positive(h10.sum, partial, name=f"{name}_or2")
    return [y0, y1, y2, y3]


def dual_rail_popcount(
    builder: DualRailBuilder, inputs: Sequence[DualRailSignal], name: str = "pop"
) -> List[DualRailSignal]:
    """Generic dual-rail population counter for any input width.

    Uses a carry-save counter tree: at every weight level, groups of three
    signals are reduced with full-adders and pairs with half-adders until a
    single bit per weight remains.  Returns the count LSB first.
    """
    if not inputs:
        raise ValueError("popcount needs at least one input")
    if len(inputs) == 8:
        return dual_rail_popcount8(builder, inputs, name=name)
    width = output_width(len(inputs))
    columns: Dict[int, List[DualRailSignal]] = {0: list(inputs)}
    stage = 0
    while True:
        work_remaining = any(len(col) > 1 for col in columns.values())
        if not work_remaining:
            break
        next_columns: Dict[int, List[DualRailSignal]] = {}
        for weight in sorted(columns):
            signals = columns[weight]
            carry_column = next_columns.setdefault(weight + 1, [])
            out_column = next_columns.setdefault(weight, [])
            idx = 0
            while len(signals) - idx >= 3:
                result = dual_rail_full_adder(
                    builder, signals[idx], signals[idx + 1], signals[idx + 2],
                    name=f"{name}_w{weight}_fa{stage}_{idx}",
                )
                out_column.append(result.sum)
                carry_column.append(result.carry)
                idx += 3
            if len(signals) - idx == 2:
                result = dual_rail_half_adder(
                    builder, signals[idx], signals[idx + 1],
                    name=f"{name}_w{weight}_ha{stage}_{idx}",
                )
                out_column.append(result.sum)
                carry_column.append(result.carry)
                idx += 2
            elif len(signals) - idx == 1:
                out_column.append(signals[idx])
                idx += 1
        columns = {w: col for w, col in next_columns.items() if col}
        stage += 1

    bits: List[DualRailSignal] = []
    for weight in range(width):
        column = columns.get(weight, [])
        if column:
            bits.append(column[0])
        else:
            bits.append(builder.constant(0, builder.inputs[0].polarity if builder.inputs
                                          else inputs[0].polarity))
    return bits


# ---------------------------------------------------------------------------
# Single-rail counters
# ---------------------------------------------------------------------------

def single_rail_popcount8(
    builder: LogicBuilder, inputs: Sequence[str], name: str = "pop"
) -> List[str]:
    """Eight-input single-rail population count mirroring the dual-rail structure."""
    if len(inputs) != 8:
        raise ValueError(f"single_rail_popcount8 requires exactly 8 inputs, got {len(inputs)}")
    x = list(inputs)
    ha = lambda a, b: single_rail_half_adder(builder, a, b)
    fa = lambda a, b, c: single_rail_full_adder(builder, a, b, c)

    s1, c1 = ha(x[0], x[1])
    s2, c2 = ha(x[2], x[3])
    s3, c3 = ha(x[4], x[5])
    s4, c4 = ha(x[6], x[7])
    s5, c5 = ha(s1, s2)
    s6, c6 = ha(s3, s4)
    y0, c7 = ha(s5, s6)
    t1, u1 = fa(c1, c2, c5)
    t2, u2 = fa(c3, c4, c6)
    t3, u3 = ha(t1, t2)
    y1, u4 = ha(t3, c7)
    v2, y3 = ha(u1, u2)
    y2 = builder.or_(v2, builder.or_(u3, u4))
    return [y0, y1, y2, y3]


def single_rail_popcount(
    builder: LogicBuilder, inputs: Sequence[str], name: str = "pop"
) -> List[str]:
    """Generic single-rail carry-save population counter (LSB first)."""
    if not inputs:
        raise ValueError("popcount needs at least one input")
    if len(inputs) == 8:
        return single_rail_popcount8(builder, inputs, name=name)
    width = output_width(len(inputs))
    columns: Dict[int, List[str]] = {0: list(inputs)}
    stage = 0
    while any(len(col) > 1 for col in columns.values()):
        next_columns: Dict[int, List[str]] = {}
        for weight in sorted(columns):
            signals = columns[weight]
            carry_column = next_columns.setdefault(weight + 1, [])
            out_column = next_columns.setdefault(weight, [])
            idx = 0
            while len(signals) - idx >= 3:
                s, c = single_rail_full_adder(builder, signals[idx], signals[idx + 1],
                                              signals[idx + 2])
                out_column.append(s)
                carry_column.append(c)
                idx += 3
            if len(signals) - idx == 2:
                s, c = single_rail_half_adder(builder, signals[idx], signals[idx + 1])
                out_column.append(s)
                carry_column.append(c)
                idx += 2
            elif len(signals) - idx == 1:
                out_column.append(signals[idx])
                idx += 1
        columns = {w: col for w, col in next_columns.items() if col}
        stage += 1

    bits: List[str] = []
    for weight in range(width):
        column = columns.get(weight, [])
        if column:
            bits.append(column[0])
        else:
            bits.append(builder.tie(0))
    return bits
