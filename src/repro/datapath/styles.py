"""Datapath style selection — the architecture axis of the design space.

The paper's central comparison is between three implementations of the same
inference function:

* ``"dual-rail-reduced"`` — the proposed self-timed dual-rail datapath with
  the *reduced* completion-detection scheme (validity detectors on the
  primary outputs only; the paper's contribution 1);
* ``"dual-rail-full"`` — the conventional self-timed ablation: full
  C-element completion detection on every dual-rail signal;
* ``"sync"`` — the clocked single-rail baseline (Table I's "Single-rail"
  rows), whose latency is its STA-derived clock period.

:mod:`repro.explore` sweeps this axis like any other grid parameter; the
helpers here translate a style name into the concrete datapath
configuration / constructor so that style selection lives in one place
instead of being re-derived by every harness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from .datapath import DatapathConfig

#: The proposed design: reduced completion detection (validity on POs only).
DUAL_RAIL_REDUCED = "dual-rail-reduced"
#: The ablation: full C-element completion detection on every signal.
DUAL_RAIL_FULL = "dual-rail-full"
#: The clocked single-rail baseline.
SYNCHRONOUS = "sync"

#: Every sweepable datapath style, in presentation order.
DATAPATH_STYLES: Tuple[str, ...] = (DUAL_RAIL_REDUCED, DUAL_RAIL_FULL, SYNCHRONOUS)


def check_style(style: str) -> str:
    """Validate and return *style* (raises :class:`ValueError` otherwise)."""
    if style not in DATAPATH_STYLES:
        raise ValueError(
            f"unknown datapath style {style!r}; expected one of {DATAPATH_STYLES}"
        )
    return style


def is_dual_rail(style: str) -> bool:
    """``True`` for the two self-timed dual-rail styles."""
    return check_style(style) != SYNCHRONOUS


def style_config(style: str, config: DatapathConfig) -> DatapathConfig:
    """Specialise *config* for *style*.

    Dual-rail styles select the completion-detection scheme; the synchronous
    baseline ignores the completion field (its builder never reads it), so
    the config passes through unchanged.
    """
    check_style(style)
    if style == DUAL_RAIL_REDUCED:
        return replace(config, completion="reduced")
    if style == DUAL_RAIL_FULL:
        return replace(config, completion="full")
    return config


def describe_style(style: str) -> str:
    """Human-readable description used in reports and CSV headers."""
    return {
        DUAL_RAIL_REDUCED: "self-timed dual-rail, reduced completion detection",
        DUAL_RAIL_FULL: "self-timed dual-rail, full C-element completion detection",
        SYNCHRONOUS: "clocked single-rail baseline",
    }[check_style(style)]
