"""Half-adder and full-adder building blocks, single-rail and dual-rail.

The population counters of the inference datapath are built almost entirely
from half-adders (Section IV-B), because in dual-rail logic a half-adder is
cheap — two complex cells for the sum rails and two simple cells for the
carry rails, with **no spacer inversion** (every path has an even number of
inversions) — whereas a full-adder is comparatively expensive and brings
spacer-polarity complications (the paper's full-adder has inverted spacers
on its carry pins and forces two explicit spacer inverters into the counter).

Mappings used here:

* dual-rail half adder: ``sum_p = AO22(a_p, b_n, a_n, b_p)``,
  ``sum_n = AO22(a_p, b_p, a_n, b_n)``, ``carry_p = AND2(a_p, b_p)``,
  ``carry_n = OR2(a_n, b_n)`` — two complex + two simple gates, polarity
  preserved, exactly the cell budget quoted in the paper;
* dual-rail full adder: composed of two half-adders plus a dual-rail OR for
  the carry merge.  This is a documented substitution for the paper's
  monolithic six-complex-gate full adder: the cell count is similar
  (10 vs 12) and the spacer-inverter bookkeeping is handled by the builder's
  polarity tracking instead of by hand.
* single-rail half/full adders use the ordinary XOR/AND and XOR/XOR/MAJ3
  forms (non-unate XOR cells are allowed in the synchronous baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.circuits.builder import LogicBuilder
from repro.core.dual_rail import DualRailBuilder, DualRailSignal


@dataclass(frozen=True)
class DualRailAdderOutput:
    """Sum and carry of a dual-rail adder stage."""

    sum: DualRailSignal
    carry: DualRailSignal


def dual_rail_half_adder(
    builder: DualRailBuilder, a: DualRailSignal, b: DualRailSignal, name: str = "ha"
) -> DualRailAdderOutput:
    """The paper's dual-rail half-adder (2 complex + 2 simple cells).

    Both outputs keep the spacer polarity of the inputs; inputs of differing
    polarity are first aligned with a spacer inverter.
    """
    if a.polarity is not b.polarity:
        b = builder.spacer_inverter(b)
    logic = builder.logic
    sum_p = logic.cell("AO22", [a.pos, b.neg, a.neg, b.pos], attrs={"role": "ha-sum"})
    sum_n = logic.cell("AO22", [a.pos, b.pos, a.neg, b.neg], attrs={"role": "ha-sum"})
    carry_p = logic.cell("AND2", [a.pos, b.pos], attrs={"role": "ha-carry"})
    carry_n = logic.cell("OR2", [a.neg, b.neg], attrs={"role": "ha-carry"})
    return DualRailAdderOutput(
        sum=DualRailSignal(name=f"{name}_s", pos=sum_p, neg=sum_n, polarity=a.polarity),
        carry=DualRailSignal(name=f"{name}_c", pos=carry_p, neg=carry_n, polarity=a.polarity),
    )


def dual_rail_full_adder(
    builder: DualRailBuilder,
    a: DualRailSignal,
    b: DualRailSignal,
    cin: DualRailSignal,
    name: str = "fa",
) -> DualRailAdderOutput:
    """Dual-rail full adder built from two half-adders plus a carry OR.

    ``sum = (a ⊕ b) ⊕ cin`` and ``carry = (a·b) + ((a⊕b)·cin)``; the carry
    merge uses the positive dual-rail OR (one OR plus one AND cell), so the
    whole full adder preserves the spacer polarity of its inputs.
    """
    first = dual_rail_half_adder(builder, a, b, name=f"{name}_ha0")
    second = dual_rail_half_adder(builder, first.sum, cin, name=f"{name}_ha1")
    carry = builder.or_positive(first.carry, second.carry, name=f"{name}_c")
    return DualRailAdderOutput(sum=second.sum, carry=carry)


def single_rail_half_adder(
    builder: LogicBuilder, a: str, b: str, name: str = "ha"
) -> Tuple[str, str]:
    """Single-rail half adder: ``sum = a ⊕ b``, ``carry = a·b``."""
    s = builder.xor(a, b)
    c = builder.and_(a, b)
    return s, c


def single_rail_full_adder(
    builder: LogicBuilder, a: str, b: str, cin: str, name: str = "fa"
) -> Tuple[str, str]:
    """Single-rail full adder: two XORs for the sum, a majority gate for the carry."""
    axb = builder.xor(a, b)
    s = builder.xor(axb, cin)
    c = builder.maj3(a, b, cin)
    return s, c
