"""Tsetlin-machine inference datapaths (the circuits of the paper's Figure 2).

* :mod:`repro.datapath.clause_logic` — OR-mask / AND-tree clause blocks;
* :mod:`repro.datapath.adders` / :mod:`repro.datapath.popcount` — dual-rail
  and single-rail half/full adders and population counters;
* :mod:`repro.datapath.comparator` — the MSB-first early-propagating
  magnitude comparator with the 1-of-3 output encoding;
* :mod:`repro.datapath.datapath` — the complete dual-rail datapath plus the
  :class:`~repro.datapath.datapath.DualRailDatapath` wrapper;
* :mod:`repro.datapath.sync_datapath` — the registered single-rail baseline.
"""

from .adders import (
    DualRailAdderOutput,
    dual_rail_full_adder,
    dual_rail_half_adder,
    single_rail_full_adder,
    single_rail_half_adder,
)
from .clause_logic import (
    dual_rail_clause,
    dual_rail_partial_clause,
    single_rail_clause,
    single_rail_partial_clause,
)
from .comparator import (
    ComparatorVerdict,
    comparator_decision_bit,
    dual_rail_magnitude_comparator,
    single_rail_magnitude_comparator,
)
from .datapath import (
    DatapathConfig,
    DualRailDatapath,
    VERDICT_LABELS,
    build_dual_rail_datapath,
    exclude_input_name,
    feature_input_name,
)
from .popcount import (
    dual_rail_popcount,
    dual_rail_popcount8,
    output_width,
    single_rail_popcount,
    single_rail_popcount8,
)
from .styles import (
    DATAPATH_STYLES,
    DUAL_RAIL_FULL,
    DUAL_RAIL_REDUCED,
    SYNCHRONOUS,
    check_style,
    describe_style,
    is_dual_rail,
    style_config,
)
from .sync_datapath import (
    SINGLE_RAIL_OUTPUTS,
    SingleRailDatapath,
    SingleRailInterface,
    build_single_rail_datapath,
)

__all__ = [
    "ComparatorVerdict",
    "DATAPATH_STYLES",
    "DUAL_RAIL_FULL",
    "DUAL_RAIL_REDUCED",
    "DatapathConfig",
    "DualRailAdderOutput",
    "DualRailDatapath",
    "SINGLE_RAIL_OUTPUTS",
    "SYNCHRONOUS",
    "SingleRailDatapath",
    "SingleRailInterface",
    "VERDICT_LABELS",
    "build_dual_rail_datapath",
    "build_single_rail_datapath",
    "check_style",
    "comparator_decision_bit",
    "describe_style",
    "dual_rail_clause",
    "dual_rail_full_adder",
    "dual_rail_half_adder",
    "dual_rail_magnitude_comparator",
    "dual_rail_partial_clause",
    "dual_rail_popcount",
    "dual_rail_popcount8",
    "exclude_input_name",
    "feature_input_name",
    "is_dual_rail",
    "output_width",
    "style_config",
    "single_rail_clause",
    "single_rail_full_adder",
    "single_rail_half_adder",
    "single_rail_magnitude_comparator",
    "single_rail_partial_clause",
    "single_rail_popcount",
    "single_rail_popcount8",
]
