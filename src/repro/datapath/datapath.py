"""The complete dual-rail Tsetlin-machine inference datapath (Figure 2).

Assembly order, mirroring the paper:

1. **Input latches** — optional per-rail C-elements on every primary input
   (the dual-rail design's "sequential" cells in Table I).
2. **Clause calculation** — one OR-mask / AND-tree clause block per clause,
   for the positive-polarity and negative-polarity clause banks.
3. **Population counts** — one counter per polarity, counting the votes.
4. **Magnitude comparator** — MSB-first early-propagating comparison of the
   two counts, producing the 1-of-3 *less / equal / greater* verdict.
5. **Completion detection** — the reduced scheme (validity detectors + AND
   tree on the primary outputs) by default, or the full C-element scheme for
   the ablation.

The module also provides :class:`DualRailDatapath`, a convenience wrapper
that knows how to translate a feature vector plus an exclude matrix (e.g.
from a trained :class:`repro.tm.machine.TsetlinMachine`) into the primary
input assignments expected by the simulation environment, and how to decode
the verdict back into a classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.library import CellLibrary
from repro.core.completion import add_completion_detection
from repro.core.dual_rail import (
    DualRailBuilder,
    DualRailCircuit,
    DualRailSignal,
    SpacerPolarity,
)

from .clause_logic import dual_rail_clause
from .comparator import dual_rail_magnitude_comparator
from .popcount import dual_rail_popcount, output_width


@dataclass
class DatapathConfig:
    """Parameters of the inference datapath.

    Attributes
    ----------
    num_features:
        Number of Boolean feature inputs ``f_m``.
    clauses_per_polarity:
        Number of positive-vote clauses (the same number votes negatively).
        The paper's evaluated design uses 8 (matching its eight-input
        population counters).
    latch_inputs:
        Insert per-rail C-element latches on every primary input (the
        paper's dual-rail sequential cells).  Disable for pure combinational
        experiments.
    negative_gates:
        Use the negative-gate (NAND/NOR) optimisation inside the clause and
        comparator logic.
    completion:
        ``"reduced"`` (paper proposal), ``"full"``, or ``None`` for no
        completion detection.
    """

    num_features: int = 4
    clauses_per_polarity: int = 8
    latch_inputs: bool = True
    negative_gates: bool = True
    completion: Optional[str] = "reduced"

    @property
    def num_clauses(self) -> int:
        """Total clause count across both polarities."""
        return 2 * self.clauses_per_polarity

    @property
    def excludes_per_clause(self) -> int:
        """Number of exclude inputs per clause (two per feature)."""
        return 2 * self.num_features

    @property
    def count_width(self) -> int:
        """Bit width of each population count."""
        return output_width(self.clauses_per_polarity)

    def validate(self) -> None:
        """Raise :class:`ValueError` for unusable configurations."""
        if self.num_features < 1:
            raise ValueError("num_features must be at least 1")
        if self.clauses_per_polarity < 1:
            raise ValueError("clauses_per_polarity must be at least 1")
        if self.completion not in (None, "reduced", "full"):
            raise ValueError(f"unknown completion scheme {self.completion!r}")


VERDICT_LABELS = ("less", "equal", "greater")


def feature_input_name(m: int) -> str:
    """Logical name of feature input *m*."""
    return f"f[{m}]"


def exclude_input_name(polarity: str, clause: int, literal: int) -> str:
    """Logical name of exclude input *literal* of clause *clause* (``pos``/``neg`` bank)."""
    return f"e{polarity}[{clause}][{literal}]"


def build_dual_rail_datapath(
    config: DatapathConfig,
    library: Optional[CellLibrary] = None,
    done_fall_delay: float = 0.0,
) -> DualRailCircuit:
    """Construct the dual-rail inference datapath described by *config*.

    Parameters
    ----------
    library:
        Needed only when *done_fall_delay* is non-zero (to size the delay
        chain of the reduced completion detection).
    done_fall_delay:
        Extra delay ``td`` built into the falling edge of done (ps).
    """
    config.validate()
    builder = DualRailBuilder(
        f"tm_dual_rail_f{config.num_features}_c{config.clauses_per_polarity}",
        negative_gates=config.negative_gates,
    )
    netlist = builder.netlist

    def tag_block(block: str, start: int) -> int:
        """Tag every cell added since *start* with its datapath block.

        The ``"block"`` attribute drives the hierarchical Verilog emission
        (:func:`repro.hdl.verilog.partition_by_attr`): each tagged stage
        becomes its own module in the exported RTL.
        """
        names = list(netlist.cells)
        for cell_name in names[start:]:
            netlist.cells[cell_name].attrs.setdefault("block", block)
        return len(names)

    mark = 0

    # ----------------------------------------------------------- inputs
    features = [builder.input_bit(feature_input_name(m)) for m in range(config.num_features)]
    excludes_pos: List[List[DualRailSignal]] = []
    excludes_neg: List[List[DualRailSignal]] = []
    for j in range(config.clauses_per_polarity):
        excludes_pos.append(
            [builder.input_bit(exclude_input_name("p", j, k))
             for k in range(config.excludes_per_clause)]
        )
        excludes_neg.append(
            [builder.input_bit(exclude_input_name("n", j, k))
             for k in range(config.excludes_per_clause)]
        )

    if config.latch_inputs:
        features = [builder.c_element_latch(sig, name=f"lat_f{m}")
                    for m, sig in enumerate(features)]
        excludes_pos = [
            [builder.c_element_latch(sig, name=f"lat_ep{j}_{k}")
             for k, sig in enumerate(bank)]
            for j, bank in enumerate(excludes_pos)
        ]
        excludes_neg = [
            [builder.c_element_latch(sig, name=f"lat_en{j}_{k}")
             for k, sig in enumerate(bank)]
            for j, bank in enumerate(excludes_neg)
        ]
    mark = tag_block("latches", mark)

    # ----------------------------------------------------------- clauses
    positive_votes = [
        dual_rail_clause(builder, features, excludes_pos[j], name=f"clp{j}")
        for j in range(config.clauses_per_polarity)
    ]
    mark = tag_block("clauses_pos", mark)
    negative_votes = [
        dual_rail_clause(builder, features, excludes_neg[j], name=f"cln{j}")
        for j in range(config.clauses_per_polarity)
    ]
    mark = tag_block("clauses_neg", mark)

    # ----------------------------------------------------- population counts
    pos_count = dual_rail_popcount(builder, positive_votes, name="popp")
    mark = tag_block("popcount_pos", mark)
    neg_count = dual_rail_popcount(builder, negative_votes, name="popn")
    mark = tag_block("popcount_neg", mark)

    # ---------------------------------------------------------- comparator
    verdict = dual_rail_magnitude_comparator(builder, pos_count, neg_count, name="cmp")
    aligned = [
        builder.align_polarity(sig, SpacerPolarity.ALL_ZERO)
        for sig in (verdict.less, verdict.equal, verdict.greater)
    ]
    builder.one_of_n_output(
        "verdict",
        [sig.pos for sig in aligned],
        VERDICT_LABELS,
        SpacerPolarity.ALL_ZERO,
    )
    mark = tag_block("comparator", mark)

    circuit = builder.build(
        metadata={
            "config": config,
            "count_width": config.count_width,
            "style": "dual-rail",
        }
    )

    # ------------------------------------------------------------ completion
    if config.completion is not None:
        add_completion_detection(
            circuit,
            scheme=config.completion,
            done_fall_delay=done_fall_delay,
            library=library,
        )
        tag_block("completion", mark)
    return circuit


class DualRailDatapath:
    """High-level handle on a generated dual-rail inference datapath.

    Combines the circuit with the operand-encoding logic: a feature vector
    plus an exclude matrix (hardware ordering, as produced by
    :meth:`repro.tm.machine.TsetlinMachine.exclude_masks` or
    :class:`repro.tm.inference.InferenceModel`) become primary-input
    assignments, and the simulated 1-of-3 verdict becomes a classification.
    """

    def __init__(
        self,
        config: DatapathConfig,
        library: Optional[CellLibrary] = None,
        done_fall_delay: float = 0.0,
    ) -> None:
        self.config = config
        self.circuit = build_dual_rail_datapath(
            config, library=library, done_fall_delay=done_fall_delay
        )

    # ------------------------------------------------------------- operands
    def operand_assignments(
        self, features: Sequence[int], exclude: np.ndarray
    ) -> Dict[str, int]:
        """Primary-input values for one inference.

        Parameters
        ----------
        features:
            Boolean feature vector of length ``num_features``.
        exclude:
            Boolean matrix of shape ``(2·clauses_per_polarity, 2·num_features)``
            in hardware ordering: row ``2j`` is positive clause ``j``, row
            ``2j+1`` is negative clause ``j`` (the interleaved convention of
            the Tsetlin machine), column ``2m`` masks ``f_m`` and ``2m+1``
            masks ``¬f_m``.
        """
        features = np.asarray(features, dtype=np.int8)
        exclude = np.asarray(exclude, dtype=bool)
        cfg = self.config
        if features.shape[0] != cfg.num_features:
            raise ValueError(
                f"expected {cfg.num_features} features, got {features.shape[0]}"
            )
        expected_shape = (cfg.num_clauses, cfg.excludes_per_clause)
        if exclude.shape != expected_shape:
            raise ValueError(
                f"exclude matrix shape {exclude.shape} does not match {expected_shape}"
            )
        assignments: Dict[str, int] = {}
        for m in range(cfg.num_features):
            assignments[feature_input_name(m)] = int(features[m])
        for j in range(cfg.clauses_per_polarity):
            for k in range(cfg.excludes_per_clause):
                assignments[exclude_input_name("p", j, k)] = int(exclude[2 * j, k])
                assignments[exclude_input_name("n", j, k)] = int(exclude[2 * j + 1, k])
        return assignments

    # -------------------------------------------------------------- decoding
    @staticmethod
    def decode_verdict(one_of_n_outputs: Dict[str, Optional[int]]) -> str:
        """Translate the simulated 1-of-3 output index into a verdict label."""
        index = one_of_n_outputs.get("verdict")
        if index is None:
            raise ValueError("verdict output is still at spacer; inference did not complete")
        return VERDICT_LABELS[index]

    @classmethod
    def decision_from_verdict(cls, verdict: str) -> int:
        """Class membership: 1 for *greater* or *equal*, 0 for *less*."""
        if verdict not in VERDICT_LABELS:
            raise ValueError(f"unknown verdict {verdict!r}")
        return 1 if verdict in ("greater", "equal") else 0

    # ------------------------------------------------------------ statistics
    def cell_count(self) -> int:
        """Number of cell instances in the generated netlist."""
        return self.circuit.netlist.cell_count()

    def input_bit_count(self) -> int:
        """Number of logical (single-rail-equivalent) input bits."""
        return len(self.circuit.inputs)
