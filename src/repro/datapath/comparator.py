"""Magnitude comparator — Section IV-C of the paper.

The comparator decides whether the positive vote count is greater than,
equal to, or less than the negative vote count.  The paper's asynchronous
version uses a *request architecture*: operands are compared bit-pair by
bit-pair starting from the most significant bit, and as soon as a difference
is found the answer is known — the lower-order bits (which are also the
slowest to be produced by the population counters, because of their carry
chains) never need to be waited for.  This is where most of the average-case
latency win comes from.

Because *less*, *equal* and *greater* are mutually exclusive, the
asynchronous outputs use a **1-of-3** code instead of three dual-rail pairs
(1-of-n codes are a superset of dual-rail and switch monotonically provided
a spacer separates the valids), which saves both wires and driver logic.

Per bit position ``i`` (MSB first), with the prefix verdict ``(G, E, L)``
from the higher-order bits:

* ``G' = G  |  E · a_i · ¬b_i``
* ``L' = L  |  E · ¬a_i · b_i``
* ``E' = E · (a_i·b_i + ¬a_i·¬b_i)``

In dual-rail form every product above is a function of the operand rails
only (``¬a_i`` is the negative rail), so each rail of the 1-of-3 verdict is
built from unate AND/OR/AO22 cells and switches monotonically.  The verdict
of the final (least-significant) stage is the datapath's primary output.

A conventional single-rail ripple comparator with the same MSB-first
recurrence is provided for the synchronous baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.circuits.builder import LogicBuilder
from repro.core.dual_rail import DualRailBuilder, DualRailSignal


@dataclass
class ComparatorVerdict:
    """The 1-of-3 comparator output (dual-rail datapath)."""

    greater: DualRailSignal
    equal: DualRailSignal
    less: DualRailSignal

    def signals(self) -> Tuple[DualRailSignal, DualRailSignal, DualRailSignal]:
        """The verdict signals in ``(greater, equal, less)`` order."""
        return (self.greater, self.equal, self.less)


def dual_rail_magnitude_comparator(
    builder: DualRailBuilder,
    a_bits: Sequence[DualRailSignal],
    b_bits: Sequence[DualRailSignal],
    name: str = "cmp",
) -> ComparatorVerdict:
    """MSB-first dual-rail magnitude comparator with early propagation.

    Parameters
    ----------
    a_bits / b_bits:
        Operand bits, LSB first (the popcount output order).  The operands
        must have the same width.

    Returns
    -------
    ComparatorVerdict
        Dual-rail verdict signals.  Only the *positive* rails of the three
        verdict signals constitute the 1-of-3 output; the caller exports
        them via :meth:`repro.core.dual_rail.DualRailBuilder.one_of_n_output`.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("comparator operands must have equal width")
    if not a_bits:
        raise ValueError("comparator needs at least one bit pair")

    # Work MSB first.
    a_msb_first = list(reversed(list(a_bits)))
    b_msb_first = list(reversed(list(b_bits)))

    greater: DualRailSignal = None
    equal: DualRailSignal = None
    less: DualRailSignal = None

    for idx, (a, b) in enumerate(zip(a_msb_first, b_msb_first)):
        if a.polarity is not b.polarity:
            b = builder.spacer_inverter(b)
        stage = f"{name}_s{idx}"
        # The request-architecture stages use the *positive* dual-rail gate
        # mapping: no spacer-polarity flips, hence no spacer inverters in the
        # verdict chain, keeping the early-propagation path as short as
        # possible (the per-stage cost for an already-decided verdict is a
        # single OR level).
        bit_gt = builder.and_positive(a, builder.not_(b), name=f"{stage}_gt")
        bit_lt = builder.and_positive(builder.not_(a), b, name=f"{stage}_lt")
        bit_eq = builder.not_(builder.or_positive(bit_gt, bit_lt, name=f"{stage}_neq"))
        if idx == 0:
            greater, equal, less = bit_gt, bit_eq, bit_lt
            continue
        extend_gt = builder.and_positive(equal, bit_gt, name=f"{stage}_egt")
        extend_lt = builder.and_positive(equal, bit_lt, name=f"{stage}_elt")
        greater = builder.or_positive(greater, extend_gt, name=f"{stage}_G")
        less = builder.or_positive(less, extend_lt, name=f"{stage}_L")
        equal = builder.and_positive(equal, bit_eq, name=f"{stage}_E")

    return ComparatorVerdict(greater=greater, equal=equal, less=less)


def single_rail_magnitude_comparator(
    builder: LogicBuilder,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    name: str = "cmp",
) -> Tuple[str, str, str]:
    """Single-rail MSB-first comparator returning ``(greater, equal, less)`` nets."""
    if len(a_bits) != len(b_bits):
        raise ValueError("comparator operands must have equal width")
    if not a_bits:
        raise ValueError("comparator needs at least one bit pair")
    a_msb_first = list(reversed(list(a_bits)))
    b_msb_first = list(reversed(list(b_bits)))

    greater = None
    equal = None
    less = None
    for idx, (a, b) in enumerate(zip(a_msb_first, b_msb_first)):
        not_a = builder.not_(a)
        not_b = builder.not_(b)
        bit_gt = builder.and_(a, not_b)
        bit_lt = builder.and_(not_a, b)
        bit_eq = builder.nor(bit_gt, bit_lt)
        if idx == 0:
            greater, equal, less = bit_gt, bit_eq, bit_lt
            continue
        extend_gt = builder.and_(equal, bit_gt)
        extend_lt = builder.and_(equal, bit_lt)
        greater = builder.or_(greater, extend_gt)
        less = builder.or_(less, extend_lt)
        equal = builder.and_(equal, bit_eq)
    return greater, equal, less


def comparator_decision_bit(builder: LogicBuilder, greater: str, equal: str) -> str:
    """Class-membership bit of the baseline: 1 when positive votes >= negative votes."""
    return builder.or_(greater, equal)
