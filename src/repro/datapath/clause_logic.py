"""Clause computation: the OR-mask / AND-tree structure of Section IV-A.

A conjunctive clause evaluates the AND of its *included* literals.  In the
datapath the inclusion decision arrives as exclude signals from the Tsetlin
automaton teams:

* ``e_{2m}`` masks the direct literal ``f_m``;
* ``e_{2m+1}`` masks the negated literal ``¬f_m``.

The partial clause term of feature ``m`` is
``pc_m = (e_{2m} | f_m) & (e_{2m+1} | ¬f_m)`` — when a literal is excluded
its OR gate forces a logic-1 onto the AND tree, which is how exclusion is
implemented with pure masking and no multiplexers.

In the dual-rail version ``¬f_m`` is free (the negative rail already carries
it), so the masking needs only one dual-rail OR per literal; the AND
aggregation uses the negative-gate optimised tree.  The paper notes the
resulting block has a single inversion on every path (an inverting spacer
overall) — in this reproduction the exact inversion depth depends on the
clause width, and the builder's polarity tracking keeps it consistent.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.builder import LogicBuilder
from repro.core.dual_rail import DualRailBuilder, DualRailSignal


def dual_rail_partial_clause(
    builder: DualRailBuilder,
    feature: DualRailSignal,
    exclude_direct: DualRailSignal,
    exclude_negated: DualRailSignal,
    name: str = "pc",
) -> List[DualRailSignal]:
    """Masked literal pair for one feature of one clause.

    Returns the two masked terms ``[e_{2m} | f_m, e_{2m+1} | ¬f_m]`` that
    feed the clause's AND tree.  The ``¬f_m`` literal is obtained by a rail
    swap (no logic), which is the dual-rail advantage called out in the
    paper ("we do not need to generate ¬f_m internally").
    """
    not_feature = builder.not_(feature)
    direct = builder.or_(exclude_direct, feature, name=f"{name}_d")
    negated = builder.or_(exclude_negated, not_feature, name=f"{name}_n")
    return [direct, negated]


def dual_rail_clause(
    builder: DualRailBuilder,
    features: Sequence[DualRailSignal],
    excludes: Sequence[DualRailSignal],
    name: str = "clause",
) -> DualRailSignal:
    """Full dual-rail clause: OR masks for every literal, then an AND tree.

    Parameters
    ----------
    features:
        The dual-rail feature inputs ``f_0 … f_{o-1}``.
    excludes:
        The ``2·o`` dual-rail exclude inputs in interleaved order
        ``e_0, e_1, …, e_{2o-1}`` (direct literal of feature *m* at index
        ``2m``, negated literal at ``2m+1``).
    """
    if len(excludes) != 2 * len(features):
        raise ValueError(
            f"clause over {len(features)} features needs {2 * len(features)} exclude "
            f"signals, got {len(excludes)}"
        )
    terms: List[DualRailSignal] = []
    for m, feature in enumerate(features):
        terms.extend(
            dual_rail_partial_clause(
                builder,
                feature,
                excludes[2 * m],
                excludes[2 * m + 1],
                name=f"{name}_pc{m}",
            )
        )
    return builder.and_tree(terms, name=name)


def single_rail_partial_clause(
    builder: LogicBuilder,
    feature: str,
    not_feature: str,
    exclude_direct: str,
    exclude_negated: str,
) -> List[str]:
    """Single-rail masked literal pair (the baseline needs an explicit inverter)."""
    direct = builder.or_(exclude_direct, feature)
    negated = builder.or_(exclude_negated, not_feature)
    return [direct, negated]


def single_rail_clause(
    builder: LogicBuilder,
    features: Sequence[str],
    excludes: Sequence[str],
    not_features: Sequence[str] = None,
    name: str = "clause",
) -> str:
    """Single-rail clause: inverters for the negated literals, OR masks, AND tree.

    When *not_features* is given the inverted literals are reused (the
    baseline datapath shares one inverter per feature across all clauses);
    otherwise a private inverter is created per literal.
    """
    if len(excludes) != 2 * len(features):
        raise ValueError(
            f"clause over {len(features)} features needs {2 * len(features)} exclude "
            f"signals, got {len(excludes)}"
        )
    terms: List[str] = []
    for m, feature in enumerate(features):
        not_feature = not_features[m] if not_features is not None else builder.not_(feature)
        terms.extend(
            single_rail_partial_clause(
                builder, feature, not_feature, excludes[2 * m], excludes[2 * m + 1]
            )
        )
    return builder.and_tree(terms)
