"""Online inference serving for the reproduced Tsetlin-machine datapath.

The simulation layer answers *"how fast is the hardware?"*; this package
answers *"how fast can you serve requests with the software model of it?"*.
It provides:

* :mod:`~repro.serve.gateway` — an asyncio micro-batching engine that
  coalesces single-operand requests into full 64-lane bitpack words under
  a latency budget, with bounded-queue overload rejection and graceful
  drain-on-shutdown;
* :mod:`~repro.serve.worker` — compile-once inference workers (in-process
  or process-pool) whose classifications are bit-identical to a direct
  :func:`repro.analysis.measure.batch_functional_pass`;
* :mod:`~repro.serve.server` — a minimal JSON-lines TCP front-end;
* :mod:`~repro.serve.loadgen` — open-loop (Poisson) and closed-loop load
  generation with p50/p95/p99 SLO reporting and ``BENCH_serve.json``
  emission for the CI regression gate.

See ``docs/guides/serving.md`` for the end-to-end tour and tuning table.
"""

from .gateway import (
    FLUSH_DEADLINE,
    FLUSH_DRAIN,
    FLUSH_FULL,
    GatewayClosed,
    GatewayConfig,
    GatewayOverloaded,
    GatewayStats,
    MicroBatchGateway,
    ServeResult,
)
from .loadgen import LOAD_MODES, LoadConfig, LoadReport, run_load
from .server import InferenceServer
from .worker import (
    BatchReply,
    InferenceWorker,
    InProcessClassifier,
    ModelSpec,
    ProcessPoolClassifier,
    precompile_program,
)

__all__ = [
    "BatchReply",
    "FLUSH_DEADLINE",
    "FLUSH_DRAIN",
    "FLUSH_FULL",
    "GatewayClosed",
    "GatewayConfig",
    "GatewayOverloaded",
    "GatewayStats",
    "InferenceServer",
    "InferenceWorker",
    "InProcessClassifier",
    "LOAD_MODES",
    "LoadConfig",
    "LoadReport",
    "MicroBatchGateway",
    "ModelSpec",
    "ProcessPoolClassifier",
    "ServeResult",
    "precompile_program",
    "run_load",
]
