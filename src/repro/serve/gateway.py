"""Asyncio micro-batching gateway over the vectorized inference backends.

The bitpack backend evaluates 64 samples per machine word, but a serving
workload arrives one operand at a time.  This module closes that gap with
*micro-batching*: single-operand requests are queued, coalesced into one
feature matrix, and flushed to a compile-once worker when either

* the word is **full** (``max_batch`` requests, default 64 — one bitpack
  lane per request), or
* the **deadline** expires (``max_delay_ms`` after the request that opened
  the word), whichever comes first.

Every request gets its own :class:`asyncio.Future`; the batch reply is
fanned back out in request order, so concurrent submitters always receive
their own classification.  Admission is bounded (``queue_depth``): when the
queue is full, :meth:`MicroBatchGateway.submit` fails fast with
:class:`GatewayOverloaded` instead of letting latency grow without bound —
the standard explicit-overload-rejection discipline for SLO-driven
services.

Backpressure shapes the batches.  The gateway dispatches at most as many
micro-batches concurrently as the classifier has workers; while all workers
are busy, the batching loop keeps the current word open, so occupancy rises
exactly when the system is loaded — adaptive batching without a tuning
loop.

Shutdown is graceful: :meth:`MicroBatchGateway.stop` rejects new
submissions, drains every queued request through the normal batch path,
waits for in-flight replies and only then releases the classifier.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import List, Optional, Set

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim.backends.bitpack import WORD_BITS

from .worker import (
    BatchReply,
    InProcessClassifier,
    ModelSpec,
    ProcessPoolClassifier,
)

#: Flush-reason labels recorded on every dispatched micro-batch.
FLUSH_FULL = "full"
FLUSH_DEADLINE = "deadline"
FLUSH_DRAIN = "drain"


class GatewayOverloaded(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full."""


class GatewayClosed(RuntimeError):
    """Raised by ``submit`` after ``stop`` has begun (or before ``start``)."""


@dataclass
class GatewayConfig:
    """Tuning knobs of the micro-batching engine.

    Attributes
    ----------
    max_batch:
        Lanes per micro-batch; the default is one full bitpack word
        (:data:`~repro.sim.backends.bitpack.WORD_BITS` = 64 lanes).
    max_delay_ms:
        Deadline from the request that *opens* a word to its flush.  The
        latency cost of batching is bounded by this number; the throughput
        win grows with it.  See the serving guide's tuning table.
    queue_depth:
        Bounded admission queue; beyond it, submissions are rejected with
        :class:`GatewayOverloaded`.
    workers:
        ``0`` = in-process classification (default thread-pool executor);
        ``N >= 1`` = a :class:`~repro.serve.worker.ProcessPoolClassifier`
        with *N* compile-once worker processes.
    """

    max_batch: int = WORD_BITS
    max_delay_ms: float = 2.0
    queue_depth: int = 256
    workers: int = 0

    def __post_init__(self) -> None:
        """Validate the knob ranges."""
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {self.max_delay_ms}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")


@dataclass
class ServeResult:
    """One request's classification plus its batch provenance.

    ``model_latency_ps`` / ``model_energy_fj`` carry the timed engine's
    per-sample simulated-hardware attribution when the model spec enabled
    it (``None`` otherwise) — the service-level reply quotes the same
    quantities the paper's latency/energy harnesses measure.
    """

    verdict: str
    decision: int
    batch_size: int
    flush_reason: str
    model_latency_ps: Optional[float] = None
    model_energy_fj: Optional[float] = None


@dataclass
class GatewayStats:
    """Monotonic counters the gateway keeps while serving.

    ``batching_efficiency`` is mean dispatched occupancy over ``max_batch``
    — 1.0 means every dispatched word was full.

    The counters only ever grow, which makes "how did *this* window go?"
    questions error-prone to answer by hand.  Take a :meth:`snapshot`
    before the window and a :meth:`delta` after it::

        before = gateway.stats.snapshot()
        ...  # drive load
        window = gateway.stats.delta(before)   # per-window counters

    ``run_load`` and the serve-smoke CI job both read per-run values this
    way instead of subtracting individual fields.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    batches: int = 0
    lanes: int = 0
    full_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    max_batch: int = WORD_BITS

    @property
    def batching_efficiency(self) -> float:
        """Mean lanes per dispatched micro-batch, as a fraction of a word."""
        if self.batches == 0:
            return 0.0
        return self.lanes / (self.batches * self.max_batch)

    def snapshot(self) -> "GatewayStats":
        """An immutable copy of the counters as of now."""
        return replace(self)

    def delta(self, since: "GatewayStats") -> "GatewayStats":
        """The per-window counters accumulated since *since*.

        ``max_batch`` is configuration, not a counter, so it carries over
        unchanged — ``delta(...).batching_efficiency`` is therefore the
        *window's* efficiency.
        """
        return GatewayStats(
            submitted=self.submitted - since.submitted,
            completed=self.completed - since.completed,
            rejected=self.rejected - since.rejected,
            batches=self.batches - since.batches,
            lanes=self.lanes - since.lanes,
            full_flushes=self.full_flushes - since.full_flushes,
            deadline_flushes=self.deadline_flushes - since.deadline_flushes,
            drain_flushes=self.drain_flushes - since.drain_flushes,
            max_batch=self.max_batch,
        )


@dataclass
class _Pending:
    """A queued request: its operand and the future its reply resolves."""

    features: np.ndarray
    future: "asyncio.Future[ServeResult]" = field(repr=False)


#: Queue sentinel that tells the batching loop to drain and exit.
_SHUTDOWN = object()


class MicroBatchGateway:
    """The asyncio micro-batching engine fronting a compiled model.

    Usage::

        gateway = MicroBatchGateway(spec, GatewayConfig(max_delay_ms=2.0))
        await gateway.start()
        result = await gateway.submit([0, 1, 1, 0])
        await gateway.stop()

    ``submit`` may be called from any number of tasks concurrently; replies
    are routed per request.  The classifier may also be injected (any
    object with ``classify(features) -> BatchReply`` and ``close()``),
    which is how the tests drive the batching logic with controllable
    stubs.
    """

    def __init__(
        self,
        spec: Optional[ModelSpec] = None,
        config: Optional[GatewayConfig] = None,
        classifier=None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        if (spec is None) == (classifier is None):
            raise ValueError("provide exactly one of spec or classifier")
        self.config = config or GatewayConfig()
        self._spec = spec
        self._classifier = classifier
        self._num_features = self._resolve_num_features(spec, classifier)
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._dispatches: Set[asyncio.Task] = set()
        self._dispatch_slots: Optional[asyncio.Semaphore] = None
        self._running = False
        self._closing = False
        self.stats = GatewayStats(max_batch=self.config.max_batch)
        #: The metrics registry this gateway reports into (the process-wide
        #: default unless injected); also what the TCP ``metrics`` command
        #: renders.
        self.registry = registry or _metrics.default_registry()
        self._requests_total = self.registry.counter(
            "requests_total", "Gateway requests by outcome."
        )
        self._flush_reason = self.registry.counter(
            "flush_reason", "Dispatched micro-batches by flush reason."
        )
        self._queue_depth = self.registry.gauge(
            "gateway_queue_depth", "Requests waiting in the admission queue."
        )

    @staticmethod
    def _resolve_num_features(spec, classifier) -> Optional[int]:
        """The served model's feature width, when discoverable.

        Known from the spec, or from an injected classifier that exposes
        one (``.spec`` on the pool shape, ``.worker.spec`` in-process);
        ``None`` for bare stub classifiers, which disables length checks.
        """
        for candidate in (
            spec,
            getattr(classifier, "spec", None),
            getattr(getattr(classifier, "worker", None), "spec", None),
        ):
            config = getattr(candidate, "config", None)
            if config is not None and hasattr(config, "num_features"):
                return int(config.num_features)
        return None

    @property
    def num_features(self) -> Optional[int]:
        """Expected feature-vector length (``None`` when unknown)."""
        return self._num_features

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Compile the model (or pool) and start the batching loop."""
        if self._running:
            raise RuntimeError("gateway is already running")
        loop = asyncio.get_running_loop()
        if self._classifier is None:
            if self.config.workers > 0:
                self._classifier = await loop.run_in_executor(
                    None,
                    lambda: ProcessPoolClassifier(self._spec, self.config.workers),
                )
            else:
                self._classifier = await loop.run_in_executor(
                    None, InProcessClassifier, self._spec
                )
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._dispatch_slots = asyncio.Semaphore(max(1, self.config.workers))
        self._closing = False
        self._running = True
        self._batcher = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Graceful shutdown: drain queued work, then release the classifier.

        New submissions are rejected immediately; every request admitted
        before the call still receives its reply.
        """
        if not self._running:
            return
        self._closing = True
        assert self._queue is not None
        await self._queue.put(_SHUTDOWN)
        assert self._batcher is not None
        await self._batcher
        if self._dispatches:
            await asyncio.gather(*tuple(self._dispatches))
        self._running = False
        if self._classifier is not None:
            self._classifier.close()

    # ----------------------------------------------------------- submission
    async def submit(self, features) -> ServeResult:
        """Classify one operand; resolves when its micro-batch completes.

        Raises
        ------
        GatewayOverloaded
            When the bounded queue is full (explicit overload rejection).
        GatewayClosed
            Before :meth:`start` or after :meth:`stop` has begun.
        ValueError
            When *features* is not a flat vector of the served model's
            width.  Shape errors are rejected here, per request, so one
            malformed submission can never poison the micro-batch it
            would have been coalesced into.
        """
        if not self._running or self._closing or self._queue is None:
            raise GatewayClosed("gateway is not accepting requests")
        operand = np.asarray(features, dtype=np.uint8)
        if operand.ndim != 1:
            raise ValueError(
                f"features must be a flat vector, got shape {operand.shape}"
            )
        if self._num_features is not None and operand.shape[0] != self._num_features:
            raise ValueError(
                f"expected {self._num_features} features, got {operand.shape[0]}"
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(features=operand, future=loop.create_future())
        with _trace.span("gateway.submit"):
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                self.stats.rejected += 1
                self._requests_total.inc(outcome="rejected")
                raise GatewayOverloaded(
                    f"request queue is full ({self.config.queue_depth} pending)"
                ) from None
            self.stats.submitted += 1
            self._requests_total.inc(outcome="submitted")
            self._queue_depth.set(self._queue.qsize())
            return await pending.future

    # ------------------------------------------------------------- batching
    async def _run(self) -> None:
        """The batching loop: collect words, flush on full or deadline."""
        assert self._queue is not None and self._dispatch_slots is not None
        loop = asyncio.get_running_loop()
        draining = False
        while not draining:
            # A worker slot gates the *collection* of the next word, not
            # just its dispatch: while every worker is busy the word stays
            # open and keeps filling — adaptive batching under load.
            await self._dispatch_slots.acquire()
            first = await self._queue.get()
            if first is _SHUTDOWN:
                self._dispatch_slots.release()
                break
            with _trace.span("gateway.flush") as flush_span:
                batch: List[_Pending] = [first]
                deadline = loop.time() + self.config.max_delay_ms / 1e3
                flush_reason = FLUSH_FULL
                while len(batch) < self.config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        flush_reason = FLUSH_DEADLINE
                        break
                    try:
                        item = await asyncio.wait_for(self._queue.get(), remaining)
                    except asyncio.TimeoutError:
                        flush_reason = FLUSH_DEADLINE
                        break
                    if item is _SHUTDOWN:
                        flush_reason = FLUSH_DRAIN
                        draining = True
                        break
                    batch.append(item)
                flush_span.add(lanes=len(batch), reason=flush_reason)
                self._dispatch(batch, flush_reason)
        # Serve any requests that raced their way in behind the sentinel.
        leftovers: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _SHUTDOWN:
                leftovers.append(item)
        for start in range(0, len(leftovers), self.config.max_batch):
            await self._dispatch_slots.acquire()
            word = leftovers[start: start + self.config.max_batch]
            with _trace.span("gateway.flush", lanes=len(word), reason=FLUSH_DRAIN):
                self._dispatch(word, FLUSH_DRAIN)

    def _dispatch(self, batch: List[_Pending], flush_reason: str) -> None:
        """Hand one collected word to the classifier without blocking."""
        self.stats.batches += 1
        self.stats.lanes += len(batch)
        if flush_reason == FLUSH_FULL:
            self.stats.full_flushes += 1
        elif flush_reason == FLUSH_DEADLINE:
            self.stats.deadline_flushes += 1
        else:
            self.stats.drain_flushes += 1
        self._flush_reason.inc(reason=flush_reason)
        if self._queue is not None:
            self._queue_depth.set(self._queue.qsize())
        # The classify task copies this context at creation, so its spans
        # nest under the surrounding gateway.flush span.
        task = asyncio.create_task(self._classify(batch, flush_reason))
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    async def _classify(self, batch: List[_Pending], flush_reason: str) -> None:
        """Run one micro-batch in the executor and fan results back out."""
        assert self._dispatch_slots is not None
        loop = asyncio.get_running_loop()
        executor = getattr(self._classifier, "pool", None)
        try:
            with _trace.span("gateway.dispatch", lanes=len(batch),
                             reason=flush_reason):
                # Inside the try so a ragged batch (possible only when the
                # feature width is unknown at submit) still fans the error
                # out to every future and releases the dispatch slot.
                features = np.stack([p.features for p in batch])
                if executor is not None:
                    from .worker import _classify_in_process

                    reply: BatchReply = await loop.run_in_executor(
                        executor, _classify_in_process, features
                    )
                else:
                    reply = await loop.run_in_executor(
                        None, self._classifier.classify, features
                    )
        except Exception as err:  # propagate the failure to every submitter
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(err)
            return
        finally:
            self._dispatch_slots.release()
        with _trace.span("gateway.complete", lanes=len(batch)):
            for index, pending in enumerate(batch):
                if pending.future.done():
                    continue
                pending.future.set_result(
                    ServeResult(
                        verdict=reply.verdicts[index],
                        decision=reply.decisions[index],
                        batch_size=reply.samples,
                        flush_reason=flush_reason,
                        model_latency_ps=(
                            reply.latency_ps[index] if reply.latency_ps else None
                        ),
                        model_energy_fj=(
                            reply.energy_fj[index] if reply.energy_fj else None
                        ),
                    )
                )
                self.stats.completed += 1
                self._requests_total.inc(outcome="completed")
