"""Load generation and SLO reporting for the micro-batching gateway.

Two arrival processes, the standard pair for latency-vs-throughput studies:

**Open loop (Poisson)** — requests arrive on an exponential inter-arrival
clock at ``rate_rps`` regardless of how the service is doing.  This is the
honest model of independent users and the one that exposes queueing delay:
if the service cannot keep up, latency grows (and the bounded queue starts
rejecting) instead of the load politely slowing down.  Beware the
*coordinated omission* trap open-loop avoids: latencies are measured from
each request's scheduled arrival time, so a stalled service keeps accruing
the delay of requests it should already have absorbed.

**Closed loop** — ``concurrency`` virtual clients each keep exactly one
request outstanding.  Throughput is then *demand-limited* by the clients:
the measured rate is the service's sustainable capacity at that
concurrency, which is what the ``serve-smoke`` CI gate tracks.

Both report end-to-end latency through the same
:func:`repro.analysis.latency.summarize_slo` percentile estimator the
hardware harnesses use (p50/p95/p99/max), and both emit a
``BENCH_serve.json`` record in the same ``{python, platform, metrics}``
schema as the simulator and DSE baselines, so the existing regression gate
(:mod:`repro.analysis.regression`) applies unchanged.
"""

from __future__ import annotations

import asyncio
import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.analysis.latency import SloSummary, summarize_slo
from repro.obs import trace as _trace

from .gateway import GatewayOverloaded, MicroBatchGateway, ServeResult

#: Supported arrival processes.
LOAD_MODES = ("open", "closed")


@dataclass
class LoadConfig:
    """Shape of one load-generation run.

    Attributes
    ----------
    mode:
        ``"open"`` (Poisson arrivals at *rate_rps*) or ``"closed"``
        (*concurrency* clients, one outstanding request each).
    requests:
        Total requests to issue.
    rate_rps:
        Open-loop offered rate (requests per second).
    concurrency:
        Closed-loop virtual-client count.
    seed:
        Seeds both the operand choice and the Poisson arrival clock, so a
        run is reproducible end to end.
    """

    mode: str = "closed"
    requests: int = 512
    rate_rps: float = 1000.0
    concurrency: int = 64
    seed: int = 2021

    def __post_init__(self) -> None:
        """Validate the run shape."""
        if self.mode not in LOAD_MODES:
            raise ValueError(f"mode must be one of {LOAD_MODES}, got {self.mode!r}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")


@dataclass
class LoadReport:
    """Everything one load run measured.

    ``latencies_s`` are end-to-end seconds (submit → reply, including queue
    wait and batching delay); ``slo_ms`` is their millisecond percentile
    summary.  ``decisions`` / ``verdicts`` are in *request index* order —
    request ``k`` classified ``operands[k]`` — which is what the
    determinism check compares against a direct batch pass.
    """

    mode: str
    requests: int
    completed: int
    rejected: int
    wall_clock_s: float
    achieved_rps: float
    offered_rps: Optional[float]
    batches: int
    batching_efficiency: float
    slo_ms: SloSummary
    latencies_s: List[float] = field(repr=False)
    verdicts: List[str] = field(repr=False)
    decisions: List[int] = field(repr=False)
    request_indices: List[int] = field(repr=False)
    model_latency_ps: Optional[SloSummary] = None

    def metrics(self) -> Dict[str, float]:
        """The flat metric dict for ``BENCH_serve.json`` (gate input)."""
        metrics = {
            "serve_throughput_rps": self.achieved_rps,
            "serve_batching_efficiency": self.batching_efficiency,
            "serve_requests": float(self.requests),
            "serve_completed": float(self.completed),
            "serve_rejected": float(self.rejected),
            "serve_batches": float(self.batches),
            "serve_latency_p50_ms": self.slo_ms.p50,
            "serve_latency_p95_ms": self.slo_ms.p95,
            "serve_latency_p99_ms": self.slo_ms.p99,
            "serve_latency_max_ms": self.slo_ms.maximum,
        }
        if self.offered_rps is not None:
            metrics["serve_offered_rps"] = self.offered_rps
        return metrics

    def write_bench_json(self, path: Union[str, Path]) -> None:
        """Write the ``BENCH_serve.json`` record (sim/DSE baseline schema)."""
        payload = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "mode": self.mode,
            "metrics": dict(sorted(self.metrics().items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def summary_lines(self) -> List[str]:
        """The human-readable SLO report (printed by ``serve_demo``)."""
        slo = self.slo_ms
        lines = [
            f"Serving SLO report ({self.mode}-loop, {self.requests} requests)",
            f"  achieved throughput : {self.achieved_rps:,.0f} req/s",
        ]
        if self.offered_rps is not None:
            lines.append(f"  offered rate        : {self.offered_rps:,.0f} req/s")
        lines.append(
            f"  batching efficiency : {self.batching_efficiency:.2f} "
            f"({self.batches} batches, {self.rejected} rejected)"
        )
        lines.append(
            "  latency p50/p95/p99/max : "
            f"{slo.p50:.2f} / {slo.p95:.2f} / {slo.p99:.2f} / "
            f"{slo.maximum:.2f} ms"
        )
        if self.model_latency_ps is not None:
            hw = self.model_latency_ps
            lines.append(
                "  model latency p50/p95/p99/max : "
                f"{hw.p50:.0f} / {hw.p95:.0f} / {hw.p99:.0f} / "
                f"{hw.maximum:.0f} ps (simulated hardware)"
            )
        return lines


async def run_load(
    gateway: MicroBatchGateway,
    operands: np.ndarray,
    config: Optional[LoadConfig] = None,
) -> LoadReport:
    """Drive *gateway* with *config*'s arrival process and measure SLOs.

    Request ``k`` submits ``operands[k % len(operands)]``; per-request
    latency is wall-clock submit→reply.  Open-loop latencies are measured
    from each request's *scheduled* arrival (coordinated-omission safe);
    rejected submissions count separately and never contribute latencies.

    The report's ``batches`` / ``batching_efficiency`` are deltas over
    *this* run — the gateway's cumulative counters are snapshotted on
    entry — so back-to-back runs against one gateway each report their
    own batching behaviour.
    """
    config = config or LoadConfig()
    operands = np.asarray(operands, dtype=np.uint8)
    if operands.ndim != 2 or operands.shape[0] == 0:
        raise ValueError("operands must be a non-empty (n, num_features) matrix")
    before = gateway.stats.snapshot()
    results: Dict[int, ServeResult] = {}
    latencies: Dict[int, float] = {}
    rejected = 0

    async def issue(index: int, scheduled: Optional[float] = None) -> None:
        """Submit request *index*, recording latency or a rejection."""
        nonlocal rejected
        start = time.perf_counter() if scheduled is None else scheduled
        try:
            result = await gateway.submit(operands[index % operands.shape[0]])
        except GatewayOverloaded:
            rejected += 1
            return
        latencies[index] = time.perf_counter() - start
        results[index] = result

    wall_start = time.perf_counter()
    with _trace.span(
        "loadgen.run", mode=config.mode, requests=config.requests
    ):
        if config.mode == "open":
            rng = np.random.default_rng(config.seed)
            gaps = rng.exponential(1.0 / config.rate_rps, size=config.requests)
            tasks = []
            next_arrival = time.perf_counter()
            for index in range(config.requests):
                next_arrival += float(gaps[index])
                delay = next_arrival - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(
                    asyncio.create_task(issue(index, scheduled=next_arrival))
                )
            await asyncio.gather(*tasks)
        else:
            counter = iter(range(config.requests))

            async def client() -> None:
                """One closed-loop virtual client: always one request in flight."""
                for index in counter:
                    await issue(index)

            await asyncio.gather(
                *(client() for _ in range(min(config.concurrency, config.requests)))
            )
    wall_clock = time.perf_counter() - wall_start

    completed = sorted(results)
    latency_values = [latencies[k] for k in completed]
    model_latencies = [
        results[k].model_latency_ps
        for k in completed
        if results[k].model_latency_ps is not None
    ]
    window = gateway.stats.delta(before)
    return LoadReport(
        mode=config.mode,
        requests=config.requests,
        completed=len(completed),
        rejected=rejected,
        wall_clock_s=wall_clock,
        achieved_rps=len(completed) / wall_clock if wall_clock > 0 else 0.0,
        offered_rps=config.rate_rps if config.mode == "open" else None,
        batches=window.batches,
        batching_efficiency=window.batching_efficiency,
        slo_ms=summarize_slo(latency_values).scaled(1e3),
        latencies_s=latency_values,
        verdicts=[results[k].verdict for k in completed],
        decisions=[results[k].decision for k in completed],
        request_indices=completed,
        model_latency_ps=(
            summarize_slo(model_latencies) if model_latencies else None
        ),
    )
