"""Compile-once inference workers behind the micro-batching gateway.

A worker owns everything that is expensive to build and free to reuse: the
dual-rail datapath netlist, the levelized backend program, the bound
exclude-rail constants (via
:class:`~repro.sim.backends.session.BackendSession`) and, when latency
attribution is enabled, the technology-mapped design the timed engine runs
on.  The gateway hands a worker nothing but a ``(batch, num_features)``
feature matrix per micro-batch and gets verdicts back — the contract is a
plain function of small arrays, so it crosses process boundaries cheaply.

Two deployment shapes share the same :class:`InferenceWorker`:

* **in-process** — :class:`InProcessClassifier` holds the worker directly
  and the gateway runs ``classify`` on the event loop's default thread-pool
  executor (no pickling, no process startup; the right default for tests
  and single-machine serving);
* **multi-process** — :class:`ProcessPoolClassifier` ships a picklable
  :class:`ModelSpec` to each pool process once (the pool *initializer*
  compiles the model there) and afterwards only feature matrices and
  verdict lists cross the boundary.

Determinism: a worker built from ``ModelSpec.from_workload(w)`` evaluates
the exact netlist ``DualRailDatapath(w.config)`` builds, through the same
backend entry points as
:func:`repro.analysis.measure.batch_functional_pass` — so gateway
classifications are bit-identical to a direct batch pass over the same
operands (the serve test-suite and the ``serve-smoke`` CI job assert
this).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.analysis.measure import (
    Workload,
    build_mapped_dual_rail,
    decode_verdict_planes,
    resolve_library,
    spacer_assignments,
    verdict_signal,
)
from repro.circuits.library import CellLibrary
from repro.datapath.datapath import (
    DatapathConfig,
    DualRailDatapath,
    feature_input_name,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim.backends import BackendSession, get_backend
from repro.sim.program import CompiledProgram, compile_program, netlist_fingerprint
from repro.sim.program_cache import ProgramCache


@dataclass(frozen=True)
class ModelSpec:
    """Everything a worker process needs to compile the served model.

    Picklable by construction (dataclass config, a NumPy exclude matrix and
    plain scalars), so the same spec describes an in-process worker and a
    process-pool initializer argument.

    Attributes
    ----------
    config:
        Datapath shape (features, clauses per polarity, latches).
    exclude:
        The trained clause-composition matrix, hardware ordering (see
        :meth:`repro.datapath.datapath.DualRailDatapath.operand_assignments`).
    library:
        Cell library the backend is instantiated with (functional results
        do not depend on it; delays and energies do).
    backend:
        Vectorized backend name, ``"batch"`` or ``"bitpack"``.
    vdd:
        Supply point for delay/energy attribution (``None`` = nominal).
    attribution:
        When ``True`` the worker maps the design once and runs every
        micro-batch through the timed engine, attaching per-request
        simulated-hardware latency (ps) and switching energy (fJ).
    program:
        An already-compiled :class:`~repro.sim.program.CompiledProgram` to
        execute instead of recompiling the spec's netlist.  It must be the
        program of the exact netlist the spec builds (the worker checks the
        content hash).  :class:`ProcessPoolClassifier` fills this in
        automatically so a pool compiles each unique netlist exactly once.
    program_cache:
        Directory of the on-disk
        :class:`~repro.sim.program_cache.ProgramCache`; when *program* is
        unset, workers load the compiled program from here (compiling and
        storing it only on a cold cache).
    fused:
        Fused-kernel tier of the vectorized engine
        (``"off"``/``"grouped"``/``"codegen"``); ``None`` defers to the
        ``REPRO_FUSED_KERNELS`` environment variable — see
        :mod:`repro.sim.kernels`.
    """

    config: DatapathConfig
    exclude: np.ndarray
    library: Optional[CellLibrary] = None
    backend: str = "bitpack"
    vdd: Optional[float] = None
    attribution: bool = False
    program: Optional[CompiledProgram] = None
    program_cache: Optional[str] = None
    fused: Optional[str] = None

    @classmethod
    def from_workload(
        cls,
        workload: Workload,
        library: Optional[CellLibrary] = None,
        backend: str = "bitpack",
        vdd: Optional[float] = None,
        attribution: bool = False,
        program: Optional[CompiledProgram] = None,
        program_cache: Optional[str] = None,
        fused: Optional[str] = None,
    ) -> "ModelSpec":
        """Spec for serving *workload*'s trained clause configuration."""
        return cls(
            config=workload.config,
            exclude=np.asarray(workload.exclude),
            library=library,
            backend=backend,
            vdd=vdd,
            attribution=attribution,
            program=program,
            program_cache=program_cache,
            fused=fused,
        )


def _spec_netlist(spec: ModelSpec, library: CellLibrary):
    """The exact netlist a worker for *spec* evaluates (mapped iff attribution)."""
    if spec.attribution:
        return build_mapped_dual_rail(spec.config, library, vdd=spec.vdd).circuit.netlist
    return DualRailDatapath(spec.config).circuit.netlist


def precompile_program(spec: ModelSpec) -> CompiledProgram:
    """Compile (or cache-load) the program a worker for *spec* will execute.

    The single-compile entry point behind :class:`ProcessPoolClassifier`'s
    pre-warm: with ``spec.program_cache`` set the program is served from (and
    stored into) the on-disk cache, otherwise it is compiled directly.  The
    returned artifact can be placed on ``spec.program`` — workers then skip
    compilation entirely.
    """
    library = resolve_library(spec.library)
    netlist = _spec_netlist(spec, library)
    if spec.program_cache is not None:
        return ProgramCache(spec.program_cache).load_or_compile(
            netlist, library, vdd=spec.vdd
        )
    return compile_program(netlist, library, vdd=spec.vdd)


@dataclass
class BatchReply:
    """One micro-batch's classifications, in request order.

    ``latency_ps`` / ``energy_fj`` are per-sample simulated-hardware
    quantities from the timed engine, present only when the spec enabled
    attribution.
    """

    verdicts: List[str]
    decisions: List[int]
    latency_ps: Optional[List[float]] = None
    energy_fj: Optional[List[float]] = None

    @property
    def samples(self) -> int:
        """Number of classified requests in the reply."""
        return len(self.verdicts)


class InferenceWorker:
    """A served model, compiled once and reusable across micro-batches.

    Construction does all the heavy lifting — datapath build (plus
    synthesis mapping when attribution is on), backend levelization, and
    constant-plane binding of the exclude rails — so :meth:`classify` costs
    only the per-call feature planes and the gate evaluation itself.
    """

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        library = resolve_library(spec.library)
        if spec.attribution:
            mapped = build_mapped_dual_rail(spec.config, library, vdd=spec.vdd)
            self.datapath = mapped.datapath
            self.circuit = mapped.circuit
        else:
            self.datapath = DualRailDatapath(spec.config)
            self.circuit = self.datapath.circuit
        if spec.program is not None:
            expected = netlist_fingerprint(self.circuit.netlist)
            if spec.program.netlist_hash != expected:
                raise ValueError(
                    "spec.program was compiled from a different netlist "
                    f"(program netlist hash {spec.program.netlist_hash[:12]}…, "
                    f"spec builds {expected[:12]}…)"
                )
            engine = get_backend(
                spec.backend, program=spec.program, fused=spec.fused
            )
        else:
            engine = get_backend(
                spec.backend,
                self.circuit.netlist,
                library,
                vdd=spec.vdd,
                cache=spec.program_cache,
                fused=spec.fused,
            )
        # Bind every non-feature input rail as a session constant: the
        # exclude configuration never changes between requests, so its
        # planes are broadcast once per batch size instead of per call.
        num_features = spec.config.num_features
        reference = self.datapath.operand_assignments(
            np.zeros(num_features, dtype=np.int8), spec.exclude
        )
        feature_names = {feature_input_name(m) for m in range(num_features)}
        by_name = {sig.name: sig for sig in self.circuit.inputs}
        self._feature_rails = [
            (by_name[feature_input_name(m)].pos, by_name[feature_input_name(m)].neg)
            for m in range(num_features)
        ]
        constants = {}
        for sig in self.circuit.inputs:
            if sig.name not in feature_names:
                bit = int(reference[sig.name])
                constants[sig.pos] = bit
                constants[sig.neg] = 1 - bit
        self.session = BackendSession(engine, constants)
        self._verdict_signal = verdict_signal(self.circuit)
        self._spacer = spacer_assignments(self.circuit)
        self._output_rails = self.circuit.all_output_rails()
        self._throughput_gauge = _metrics.default_registry().gauge(
            "backend_samples_per_sec",
            "Most recent micro-batch throughput of the serving backend.",
        )

    def _feature_planes(self, features: np.ndarray) -> dict:
        """Per-rail input planes for a ``(batch, num_features)`` matrix."""
        features = np.asarray(features, dtype=np.uint8)
        if features.ndim != 2 or features.shape[1] != self.spec.config.num_features:
            raise ValueError(
                f"expected a (batch, {self.spec.config.num_features}) feature "
                f"matrix, got shape {features.shape}"
            )
        planes = {}
        for m, (pos, neg) in enumerate(self._feature_rails):
            bits = features[:, m]
            planes[pos] = bits
            planes[neg] = (1 - bits).astype(np.uint8)
        return planes

    def classify(self, features: np.ndarray) -> BatchReply:
        """Classify one micro-batch; request order is preserved.

        Functional mode runs a single ``run_arrays`` pass; attribution mode
        runs the timed engine instead, which additionally yields each
        request's simulated spacer→valid hardware latency and switching
        energy.
        """
        start = time.perf_counter()
        with _trace.span("worker.classify", backend=self.spec.backend,
                         lanes=int(np.shape(features)[0])):
            planes = self._feature_planes(features)
            if self.spec.attribution:
                timed = self.session.run_timed(planes, self._spacer)
                verdicts = decode_verdict_planes(timed, self._verdict_signal)
                latency = timed.max_arrival(self._output_rails, "valid")
                reply = BatchReply(
                    verdicts=verdicts,
                    decisions=[
                        DualRailDatapath.decision_from_verdict(v) for v in verdicts
                    ],
                    latency_ps=[float(t) for t in latency],
                    energy_fj=[float(e) for e in timed.energy_per_sample_fj],
                )
            else:
                result = self.session.run_arrays(planes)
                verdicts = decode_verdict_planes(result, self._verdict_signal)
                reply = BatchReply(
                    verdicts=verdicts,
                    decisions=[
                        DualRailDatapath.decision_from_verdict(v) for v in verdicts
                    ],
                )
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            self._throughput_gauge.set(
                reply.samples / elapsed, backend=self.spec.backend
            )
        return reply


class InProcessClassifier:
    """The gateway's default execution shape: one worker, this process.

    ``classify`` is plain synchronous code; the gateway moves it off the
    event loop onto the default thread-pool executor, so the batching loop
    keeps collecting the next word while the current one evaluates.
    """

    def __init__(self, spec: ModelSpec) -> None:
        self.worker = InferenceWorker(spec)

    def classify(self, features: np.ndarray) -> BatchReply:
        """Classify a micro-batch on the caller's thread."""
        return self.worker.classify(features)

    def close(self) -> None:
        """Nothing to release for the in-process shape."""


#: Per-process worker slot of :class:`ProcessPoolClassifier` (set by the
#: pool initializer, used by the pure-function task entry point).
_PROCESS_WORKER: Optional[InferenceWorker] = None


def _init_process_worker(spec: ModelSpec) -> None:
    """Pool initializer: compile the model once in this worker process."""
    global _PROCESS_WORKER
    _PROCESS_WORKER = InferenceWorker(spec)


def _classify_in_process(features: np.ndarray) -> BatchReply:
    """Pool task entry point: classify against the process-local worker."""
    assert _PROCESS_WORKER is not None, "pool initializer did not run"
    return _PROCESS_WORKER.classify(features)


@dataclass
class ProcessPoolClassifier:
    """Micro-batch execution over a pool of compile-once worker processes.

    Each pool process compiles the model exactly once (in the pool
    initializer); afterwards only ``(batch, num_features)`` matrices and
    :class:`BatchReply` lists cross the process boundary.  The gateway
    dispatches at most ``workers`` micro-batches concurrently, so a full
    pool applies natural backpressure to the batching loop (which responds
    by collecting larger words).
    """

    spec: ModelSpec
    workers: int = 2
    _pool: Optional[ProcessPoolExecutor] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        """Start the pool; workers compile lazily on their first task.

        When the spec names a program cache (and carries no precompiled
        program yet), the pool compiles — or cache-loads — the program once
        *here*, in the parent, and ships the artifact to every worker via
        the spec: N workers, exactly one ``backend.compile``.
        """
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.spec.program is None and self.spec.program_cache is not None:
            self.spec = replace(self.spec, program=precompile_program(self.spec))
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_process_worker,
            initargs=(self.spec,),
        )

    @property
    def pool(self) -> ProcessPoolExecutor:
        """The live executor (for the gateway's ``run_in_executor``)."""
        assert self._pool is not None
        return self._pool

    def classify(self, features: np.ndarray) -> BatchReply:
        """Classify a micro-batch in some pool process (blocking)."""
        return self.pool.submit(_classify_in_process, features).result()

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight batches."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
