"""Minimal asyncio TCP front-end for the micro-batching gateway.

The wire protocol is **JSON lines** — one request object per ``\\n``
-terminated line, one reply object per line back, correlated by an
optional client-chosen ``id``:

Request::

    {"id": 7, "features": [0, 1, 1, 0]}

Reply::

    {"id": 7, "verdict": "greater", "decision": 1,
     "batch_size": 64, "flush": "full"}

(plus ``"model_latency_ps"`` / ``"model_energy_fj"`` when the served model
enables timed attribution).  Error replies carry an ``"error"`` field
instead of a verdict: ``"overloaded"`` when the gateway's bounded queue
rejected the request (the client should back off), or ``"bad-request: …"``
for malformed lines — including feature vectors whose length does not
match the served model, which are rejected per request *before* batching
so one bad client can never poison a co-batched word.

Besides request objects, a connection may send the bare line ``metrics``
to read the process metrics registry in Prometheus text exposition format
(``# HELP`` / ``# TYPE`` / samples), terminated by a ``# EOF`` line so a
line-oriented client knows where the scrape ends; the connection stays
usable for further requests afterwards.

Lines are handled concurrently *per connection* — each line spawns a task
and replies are serialized through a per-connection lock — so a single
pipelined client can fill whole 64-lane words by itself.  Shutdown is
graceful without trusting clients to hang up:
:meth:`InferenceServer.stop` stops accepting connections, cancels the
read loop of every open connection (so idle keep-alive clients cannot
stall it), lets every in-flight line finish through the gateway's drain
path, then closes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Set

from .gateway import GatewayClosed, GatewayOverloaded, MicroBatchGateway, ServeResult


def _encode_reply(request_id, result: ServeResult) -> bytes:
    """Serialize one successful reply line."""
    payload = {
        "id": request_id,
        "verdict": result.verdict,
        "decision": result.decision,
        "batch_size": result.batch_size,
        "flush": result.flush_reason,
    }
    if result.model_latency_ps is not None:
        payload["model_latency_ps"] = result.model_latency_ps
    if result.model_energy_fj is not None:
        payload["model_energy_fj"] = result.model_energy_fj
    return (json.dumps(payload) + "\n").encode()


def _encode_error(request_id, message: str) -> bytes:
    """Serialize one error reply line."""
    return (json.dumps({"id": request_id, "error": message}) + "\n").encode()


class InferenceServer:
    """A JSON-lines TCP listener feeding a :class:`MicroBatchGateway`.

    The server owns only the listener and the per-connection tasks; the
    gateway's lifecycle (``start``/``stop``) stays with the caller, so one
    gateway can back several front-ends.

    Parameters
    ----------
    gateway:
        A started gateway requests are submitted to.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start` — the tests do).
    """

    def __init__(
        self,
        gateway: MicroBatchGateway,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight lines, close.

        Idle keep-alive connections are told to stop reading (their tasks
        are cancelled at the ``readline`` await); lines already being
        handled still complete and get their reply before the connection
        closes, so ``stop`` cannot hang on a client that simply never
        sends EOF.
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        for connection in tuple(self._connections):
            connection.cancel()
        if self._connections:
            await asyncio.gather(
                *tuple(self._connections), return_exceptions=True
            )
        self._server = None

    # ---------------------------------------------------------- connection
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Track one client connection for the drain path."""
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._connections.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read request lines, spawn per-line handlers, close on EOF.

        Cancellation (from :meth:`stop`) only ends the *read* loop; any
        line handlers already in flight are still awaited so every
        admitted request gets its reply line before the socket closes.
        """
        write_lock = asyncio.Lock()
        lines: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                lines.add(task)
                task.add_done_callback(lines.discard)
        except asyncio.CancelledError:
            pass  # stop(): quit reading; in-flight lines drain below
        finally:
            try:
                if lines:
                    await asyncio.shield(
                        asyncio.gather(*tuple(lines), return_exceptions=True)
                    )
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Parse one request line, submit it, write exactly one reply line.

        The bare command line ``metrics`` short-circuits before JSON
        parsing and replies with the gateway registry's Prometheus text
        (terminated by ``# EOF``) instead of a JSON object.
        """
        request_id = None
        if line.strip() == b"metrics":
            payload = self.gateway.registry.render_prometheus() + "# EOF\n"
            await self._write(writer, write_lock, payload.encode())
            return
        try:
            request = json.loads(line)
            request_id = request.get("id") if isinstance(request, dict) else None
            if not isinstance(request, dict) or "features" not in request:
                raise ValueError("request must be an object with a 'features' list")
            features = request["features"]
            if not isinstance(features, list) or not all(
                isinstance(bit, int) and bit in (0, 1) for bit in features
            ):
                raise ValueError("'features' must be a list of 0/1 integers")
            expected = self.gateway.num_features
            if expected is not None and len(features) != expected:
                raise ValueError(
                    f"'features' must have length {expected}, got {len(features)}"
                )
        except (json.JSONDecodeError, ValueError) as err:
            await self._write(writer, write_lock,
                              _encode_error(request_id, f"bad-request: {err}"))
            return
        try:
            result = await self.gateway.submit(features)
        except ValueError as err:  # gateway-side shape rejection
            await self._write(writer, write_lock,
                              _encode_error(request_id, f"bad-request: {err}"))
            return
        except GatewayOverloaded:
            await self._write(writer, write_lock,
                              _encode_error(request_id, "overloaded"))
            return
        except GatewayClosed:
            await self._write(writer, write_lock,
                              _encode_error(request_id, "shutting-down"))
            return
        except Exception as err:  # classification failure: reply, don't drop
            await self._write(writer, write_lock,
                              _encode_error(request_id, f"internal: {err}"))
            return
        await self._write(writer, write_lock, _encode_reply(request_id, result))

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, write_lock: asyncio.Lock, payload: bytes
    ) -> None:
        """Write one reply line atomically with respect to other handlers."""
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
