"""One-call HDL export: design + primitives + testbench + round-trip proof.

This is the orchestration layer the synthesis flow and the experiment
harness call into.  :func:`export_netlist` bundles the individual
generators of this package into a single deterministic artefact set:

* ``<design>.v`` — structural Verilog of the netlist
  (:func:`repro.hdl.verilog.emit_verilog`);
* ``primitives.v`` — behavioral models for exactly the cell types the
  design instantiates (:func:`repro.hdl.primitives.primitives_for_netlist`);
* ``tb_<design>.v`` — a self-checking testbench, when requested
  (:mod:`repro.hdl.testbench`);
* an in-process round-trip proof (:func:`repro.hdl.roundtrip.verify_roundtrip`)
  showing the emitted RTL parses back into a gate-for-gate equivalent
  netlist and re-emits byte-identically.

Files are only written when a directory is given; otherwise the export is
purely in-memory (the tests and the ``synthesize`` hook use both modes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from repro.circuits.netlist import Netlist

from .primitives import primitives_for_netlist
from .roundtrip import RoundTripReport, verify_roundtrip
from .testbench import generate_testbench
from .verilog import emit_verilog

__all__ = [
    "HdlExport",
    "export_netlist",
]


@dataclass
class HdlExport:
    """Everything produced by one :func:`export_netlist` call.

    Attributes
    ----------
    design_name:
        Name of the exported top module.
    design:
        Structural Verilog source of the design.
    primitives:
        Behavioral primitive models used by the design.
    testbench:
        Self-checking testbench source (``None`` when not requested).
    roundtrip:
        Round-trip verification report (``None`` when ``verify=False``).
    paths:
        ``{"design": ..., "primitives": ..., "testbench": ...}`` file paths
        when a directory was given, empty otherwise.
    """

    design_name: str
    design: str
    primitives: str
    testbench: Optional[str] = None
    roundtrip: Optional[RoundTripReport] = None
    paths: Dict[str, str] = field(default_factory=dict)

    @property
    def verified(self) -> bool:
        """``True`` when the round-trip proof ran and passed."""
        return self.roundtrip is not None and self.roundtrip.ok

    def summary(self) -> str:
        """Multi-line human-readable report used by the examples and CI."""
        lines = [f"HDL export of {self.design_name!r}:"]
        lines.append(f"  design     : {len(self.design)} bytes")
        lines.append(f"  primitives : {len(self.primitives)} bytes")
        if self.testbench is not None:
            lines.append(f"  testbench  : {len(self.testbench)} bytes")
        if self.roundtrip is not None:
            lines.append(f"  round-trip : {self.roundtrip.summary()}")
        for kind, path in self.paths.items():
            lines.append(f"  {kind:<11}-> {path}")
        return "\n".join(lines)


def export_netlist(
    netlist: Netlist,
    directory: Optional[str] = None,
    testbench_vectors: int = 32,
    testbench_stimulus: Optional[Mapping[str, Sequence[int]]] = None,
    testbench: bool = True,
    verify: bool = True,
    roundtrip_vectors: int = 256,
    seed: int = 2021,
) -> HdlExport:
    """Export *netlist* as Verilog, with testbench and round-trip proof.

    Parameters
    ----------
    directory:
        When given, the artefacts are written there (created on demand) as
        ``<design>.v``, ``primitives.v`` and ``tb_<design>.v``.
    testbench:
        Generate the self-checking testbench.  Clocked netlists (DFF cells)
        skip the testbench automatically — the generic generator drives
        combinational/C-element designs only.
    verify:
        Run :func:`repro.hdl.roundtrip.verify_roundtrip` on the emission.
    """
    design_text = emit_verilog(netlist)
    primitives_text = primitives_for_netlist(netlist)

    has_dff = any(cell.cell_type == "DFF" for cell in netlist.iter_cells())
    testbench_text: Optional[str] = None
    if testbench and not has_dff:
        testbench_text = generate_testbench(
            netlist,
            stimulus=testbench_stimulus,
            num_vectors=testbench_vectors,
            seed=seed,
        )

    report: Optional[RoundTripReport] = None
    if verify:
        report = verify_roundtrip(
            netlist, vectors=roundtrip_vectors, seed=seed, text=design_text
        )

    paths: Dict[str, str] = {}
    if directory is not None:
        os.makedirs(directory, exist_ok=True)
        safe_name = netlist.name.replace("/", "_")
        targets = {
            "design": (os.path.join(directory, f"{safe_name}.v"), design_text),
            "primitives": (os.path.join(directory, "primitives.v"), primitives_text),
        }
        if testbench_text is not None:
            targets["testbench"] = (
                os.path.join(directory, f"tb_{safe_name}.v"), testbench_text
            )
        for kind, (path, content) in targets.items():
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            paths[kind] = path

    return HdlExport(
        design_name=netlist.name,
        design=design_text,
        primitives=primitives_text,
        testbench=testbench_text,
        roundtrip=report,
        paths=paths,
    )
