"""Round-trip verification: parse emitted Verilog back and prove equivalence.

The emission path is only trustworthy if it can be checked without an
external simulator, so this module closes the loop in-process:

1. :func:`parse_verilog` — a minimal structural-Verilog parser covering
   exactly the subset :mod:`repro.hdl.verilog` emits (ANSI module headers,
   ``wire`` declarations, named-port instantiations, escaped identifiers);
2. :func:`netlist_from_verilog` — rebuilds a flat :class:`Netlist` from the
   parsed modules, flattening any block hierarchy by port substitution;
3. :func:`check_equivalence` — gate-for-gate comparison of two netlists:
   structural (interface, cell histogram) plus functional via the batch
   backend over random stimulus (every net plane must match exactly, X
   included); netlists with flip-flops fall back to an exact structural
   comparison, which is stronger but requires name preservation;
4. :func:`verify_roundtrip` — emit → parse → equivalence-check → re-emit,
   asserting the re-emission is byte-identical to the original text.

Because the emitter preserves every net and instance name verbatim (escaped
identifiers), the parsed netlist shares its namespace with the source
netlist — which is what makes per-net (not just per-output) comparison and
byte-stable re-emission possible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import GATE_REGISTRY, gate_spec
from repro.circuits.netlist import Netlist

from .verilog import INSTANCE_PREFIX, emit_verilog

__all__ = [
    "EquivalenceReport",
    "ParsedModule",
    "RoundTripReport",
    "VerilogParseError",
    "check_equivalence",
    "netlist_from_verilog",
    "parse_verilog",
    "verify_roundtrip",
]


class VerilogParseError(Exception):
    """Raised when the source is outside the emitted structural subset."""


_TOKEN = re.compile(
    r"""
    \s+                        # whitespace
  | //[^\n]*                   # line comment
  | /\*.*?\*/                  # block comment
  | \\[^\s]+                   # escaped identifier (backslash to whitespace)
  | [A-Za-z_][A-Za-z0-9_$]*    # simple identifier / keyword
  | [().;,]                    # punctuation
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            snippet = text[pos: pos + 20]
            raise VerilogParseError(
                f"unexpected character at offset {pos}: {snippet!r} "
                "(only the structural subset emitted by repro.hdl.verilog is supported)"
            )
        token = match.group(0)
        pos = match.end()
        if token.isspace() or token.startswith("//") or token.startswith("/*"):
            continue
        tokens.append(token)
    return tokens


def _unescape(token: str) -> str:
    return token[1:] if token.startswith("\\") else token


@dataclass
class _Instance:
    """One parsed instantiation (library cell or block submodule)."""

    module: str
    name: str
    connections: List[Tuple[str, str]]  # (port/pin, net) in source order


@dataclass
class ParsedModule:
    """One parsed structural module."""

    name: str
    ports: List[Tuple[str, str]] = field(default_factory=list)  # (direction, net)
    wires: List[str] = field(default_factory=list)
    instances: List[_Instance] = field(default_factory=list)

    @property
    def inputs(self) -> List[str]:
        return [net for direction, net in self.ports if direction == "input"]

    @property
    def outputs(self) -> List[str]:
        return [net for direction, net in self.ports if direction == "output"]


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise VerilogParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, literal: str) -> str:
        token = self._next()
        if token != literal:
            raise VerilogParseError(
                f"expected {literal!r}, got {token!r} (token {self._pos - 1})"
            )
        return token

    def parse(self) -> List[ParsedModule]:
        modules: List[ParsedModule] = []
        while self._peek() is not None:
            modules.append(self._parse_module())
        if not modules:
            raise VerilogParseError("no modules found in source")
        return modules

    def _parse_module(self) -> ParsedModule:
        self._expect("module")
        module = ParsedModule(name=_unescape(self._next()))
        self._expect("(")
        while True:
            direction = self._next()
            if direction not in ("input", "output"):
                raise VerilogParseError(
                    f"port of {module.name!r} must start with input/output, "
                    f"got {direction!r} (non-ANSI headers are not in the subset)"
                )
            module.ports.append((direction, _unescape(self._next())))
            token = self._next()
            if token == ")":
                break
            if token != ",":
                raise VerilogParseError(f"expected ',' or ')' in port list, got {token!r}")
        self._expect(";")
        while True:
            token = self._next()
            if token == "endmodule":
                return module
            if token == "wire":
                module.wires.append(_unescape(self._next()))
                self._expect(";")
                continue
            module.instances.append(self._parse_instance(token))

    def _parse_instance(self, module_type: str) -> _Instance:
        name = _unescape(self._next())
        # The emitter prefixes instance names to separate them from the net
        # namespace; strip exactly one occurrence to restore the cell name.
        if name.startswith(INSTANCE_PREFIX):
            name = name[len(INSTANCE_PREFIX):]
        inst = _Instance(module=_unescape(module_type), name=name, connections=[])
        self._expect("(")
        while True:
            self._expect(".")
            pin = _unescape(self._next())
            self._expect("(")
            net = _unescape(self._next())
            self._expect(")")
            inst.connections.append((pin, net))
            token = self._next()
            if token == ")":
                break
            if token != ",":
                raise VerilogParseError(
                    f"expected ',' or ')' in connection list of {inst.name!r}, got {token!r}"
                )
        self._expect(";")
        return inst


def parse_verilog(text: str) -> List[ParsedModule]:
    """Parse structural Verilog (the emitted subset) into module descriptions."""
    return _Parser(_tokenize(text)).parse()


def _flatten_into(
    netlist: Netlist,
    module: ParsedModule,
    by_name: Dict[str, ParsedModule],
    net_map: Dict[str, str],
) -> None:
    """Add *module*'s cells to *netlist*, renaming nets through *net_map*."""
    for wire in module.wires:
        # Internal nets keep their (globally unique) emitted names; a name
        # collision across modules would surface as a multiply-driven net
        # when the colliding cells are added below.
        netlist.get_net(net_map.setdefault(wire, wire))
    for inst in module.instances:
        if inst.module in by_name:
            sub = by_name[inst.module]
            sub_ports = {net for _direction, net in sub.ports}
            sub_map: Dict[str, str] = {}
            for port, net in inst.connections:
                if port not in sub_ports:
                    raise VerilogParseError(
                        f"instance {inst.name!r} connects unknown port {port!r} "
                        f"of module {inst.module!r}"
                    )
                sub_map[port] = net_map.get(net, net)
            missing = sorted(sub_ports - set(sub_map))
            if missing:
                raise VerilogParseError(
                    f"instance {inst.name!r} leaves ports {missing[:4]} unconnected"
                )
            _flatten_into(netlist, sub, by_name, sub_map)
            continue
        if inst.module not in GATE_REGISTRY:
            raise VerilogParseError(
                f"instance {inst.name!r} references {inst.module!r}, which is "
                "neither a module in this source nor a known library cell"
            )
        spec = gate_spec(inst.module)
        pins = dict(inst.connections)
        expected = set(spec.input_pins) | set(spec.output_pins)
        if set(pins) != expected:
            raise VerilogParseError(
                f"instance {inst.name!r} ({inst.module}) connects pins "
                f"{sorted(pins)}, expected {sorted(expected)}"
            )
        netlist.add_cell(
            inst.module,
            inputs={p: net_map.get(pins[p], pins[p]) for p in spec.input_pins},
            outputs={p: net_map.get(pins[p], pins[p]) for p in spec.output_pins},
            name=inst.name,
        )


def netlist_from_verilog(text: str, top: Optional[str] = None) -> Netlist:
    """Rebuild a flat :class:`Netlist` from emitted structural Verilog.

    Parameters
    ----------
    top:
        Name of the top module.  Defaults to the only module that is not
        instantiated by another module (the emitter always places the top
        module last, after its block submodules).
    """
    modules = parse_verilog(text)
    by_name = {m.name: m for m in modules}
    if len(by_name) != len(modules):
        raise VerilogParseError("duplicate module names in source")
    if top is None:
        instantiated = {
            inst.module for m in modules for inst in m.instances if inst.module in by_name
        }
        candidates = [m for m in modules if m.name not in instantiated]
        if len(candidates) != 1:
            raise VerilogParseError(
                f"cannot infer top module (candidates: {[m.name for m in candidates]}); "
                "pass top= explicitly"
            )
        top_module = candidates[0]
    else:
        if top not in by_name:
            raise VerilogParseError(f"no module named {top!r} in source")
        top_module = by_name[top]

    netlist = Netlist(top_module.name)
    for net in top_module.inputs:
        netlist.add_input(net)
    for net in top_module.outputs:
        netlist.add_output(net)
    _flatten_into(netlist, top_module, by_name, {net: net for _d, net in top_module.ports})
    return netlist


@dataclass
class EquivalenceReport:
    """Result of a gate-for-gate comparison of two netlists."""

    equivalent: bool
    mode: str  # "batch" or "structural"
    vectors: int
    compared_nets: int
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        return (
            f"{status} ({self.mode}: {self.compared_nets} nets, "
            f"{self.vectors} vectors, {len(self.mismatches)} mismatch(es))"
        )


def _structural_compare(reference: Netlist, candidate: Netlist,
                        mismatches: List[str]) -> None:
    for cell_name, cell in reference.cells.items():
        other = candidate.cells.get(cell_name)
        if other is None:
            mismatches.append(f"cell {cell_name!r} missing from candidate")
        elif (other.cell_type, other.inputs, other.outputs) != (
            cell.cell_type, cell.inputs, cell.outputs
        ):
            mismatches.append(f"cell {cell_name!r} differs structurally")
    for cell_name in candidate.cells:
        if cell_name not in reference.cells:
            mismatches.append(f"candidate has extra cell {cell_name!r}")


def check_equivalence(
    reference: Netlist,
    candidate: Netlist,
    vectors: int = 256,
    seed: int = 2021,
) -> EquivalenceReport:
    """Prove *candidate* is gate-for-gate equivalent to *reference*.

    Both netlists must share their net namespace (true for every netlist
    produced by the emit → parse round trip).  Combinational and C-element
    netlists are compared functionally through the batch backend: *vectors*
    random input assignments are pushed through both netlists and **every**
    net plane must match exactly (unknown/X values included).  Netlists
    containing flip-flops cannot run on the batch backend, so they are
    compared by exact structural equality instead.
    """
    mismatches: List[str] = []
    if reference.primary_inputs != candidate.primary_inputs:
        mismatches.append(
            f"primary inputs differ: {reference.primary_inputs[:4]}... vs "
            f"{candidate.primary_inputs[:4]}..."
        )
    if reference.primary_outputs != candidate.primary_outputs:
        mismatches.append(
            f"primary outputs differ: {reference.primary_outputs[:4]}... vs "
            f"{candidate.primary_outputs[:4]}..."
        )
    if reference.count_by_type() != candidate.count_by_type():
        mismatches.append(
            f"cell histograms differ: {reference.count_by_type()} vs "
            f"{candidate.count_by_type()}"
        )
    if mismatches:
        return EquivalenceReport(False, "structural", 0, 0, mismatches)

    sequential_dff = any(c.cell_type == "DFF" for c in reference.iter_cells())
    if sequential_dff:
        _structural_compare(reference, candidate, mismatches)
        return EquivalenceReport(
            equivalent=not mismatches,
            mode="structural",
            vectors=0,
            compared_nets=len(reference.nets),
            mismatches=mismatches,
        )

    # Functional comparison: identical random stimulus into both netlists.
    from repro.sim.backends.batch import BatchBackend

    rng = np.random.default_rng(seed)
    planes = {
        net: rng.integers(0, 2, size=vectors).astype(np.uint8)
        for net in reference.primary_inputs
    }
    ref_result = BatchBackend(reference).run_arrays(planes)
    cand_result = BatchBackend(candidate).run_arrays(planes)
    shared = [net for net in reference.nets if net in candidate.nets]
    for net in shared:
        if not np.array_equal(ref_result.values[net], cand_result.values[net]):
            bad = int(np.argmax(ref_result.values[net] != cand_result.values[net]))
            mismatches.append(
                f"net {net!r} diverges at vector {bad}: "
                f"{int(ref_result.values[net][bad])} vs {int(cand_result.values[net][bad])}"
            )
            if len(mismatches) >= 8:
                mismatches.append("... further mismatches suppressed")
                break
    missing = len(reference.nets) - len(shared)
    if missing:
        mismatches.append(f"{missing} reference net(s) missing from candidate")
    return EquivalenceReport(
        equivalent=not mismatches,
        mode="batch",
        vectors=vectors,
        compared_nets=len(shared),
        mismatches=mismatches,
    )


@dataclass
class RoundTripReport:
    """Result of :func:`verify_roundtrip` for one netlist."""

    design: str
    equivalence: EquivalenceReport
    byte_stable: bool
    source_bytes: int
    cells: int

    @property
    def ok(self) -> bool:
        """``True`` when the round trip proved the emission correct."""
        return self.equivalence.equivalent and self.byte_stable

    def summary(self) -> str:
        """One-line human-readable verdict."""
        stability = "byte-stable" if self.byte_stable else "BYTE-UNSTABLE"
        return (
            f"{self.design}: {self.cells} cells, {self.source_bytes} bytes, "
            f"{stability}, {self.equivalence.summary()}"
        )


def verify_roundtrip(
    netlist: Netlist,
    vectors: int = 256,
    seed: int = 2021,
    text: Optional[str] = None,
) -> RoundTripReport:
    """Emit *netlist*, re-parse the Verilog, and prove the loop closes.

    Checks performed:

    * the parsed netlist is gate-for-gate equivalent to the source
      (:func:`check_equivalence`, batch-backend functional compare on
      *vectors* random assignments, structural for clocked designs);
    * re-emitting the parsed netlist reproduces the original Verilog
      byte-for-byte (flat emission is canonical and deterministic).

    Parameters
    ----------
    text:
        Pre-emitted flat Verilog of *netlist* (to avoid emitting twice);
        emitted on demand when omitted.
    """
    if text is None:
        text = emit_verilog(netlist)
    parsed = netlist_from_verilog(text)
    equivalence = check_equivalence(netlist, parsed, vectors=vectors, seed=seed)
    reemitted = emit_verilog(parsed)
    return RoundTripReport(
        design=netlist.name,
        equivalence=equivalence,
        byte_stable=(reemitted == text),
        source_bytes=len(text),
        cells=netlist.cell_count(),
    )


def roundtrip_many(
    netlists: Sequence[Netlist], vectors: int = 256, seed: int = 2021
) -> List[RoundTripReport]:
    """Round-trip a batch of netlists (one report each, same order)."""
    return [verify_roundtrip(n, vectors=vectors, seed=seed) for n in netlists]
