"""Deterministic structural Verilog emission for :class:`~repro.circuits.netlist.Netlist`.

The emitter turns any mapped netlist — dual-rail asynchronous datapaths
(TH/C-element completion-detection structures included) as well as the
clocked single-rail baseline — into synthesizable structural Verilog:
one module instantiation per cell, one wire per net, nothing behavioral
(the behavioral cell models live in :mod:`repro.hdl.primitives`).

Determinism and naming
----------------------
* Net and instance names pass through **verbatim**: names that are not plain
  Verilog identifiers (the datapath uses names like ``f[0]_p``) are emitted
  as Verilog *escaped identifiers* (``\\f[0]_p`` followed by whitespace),
  which every Verilog tool accepts and which round-trip losslessly.
* Ports, wires, instances and pin connections are emitted in the netlist's
  deterministic iteration order (see :class:`repro.circuits.netlist.Netlist`),
  with pins in gate-spec declaration order.  Emitting the same netlist twice
  therefore produces byte-identical text, and re-emitting a netlist parsed
  back by :mod:`repro.hdl.roundtrip` reproduces the original bytes exactly
  (the golden-file tests assert both).

Hierarchy
---------
``emit_verilog(netlist, blocks=...)`` groups cells into one submodule per
named block (ports are the nets crossing the block boundary, sorted by
name); :func:`partition_by_attr` derives that grouping from the ``"block"``
cell attribute the datapath generator tags its stages with.  The flat form
(``blocks=None``) is the canonical byte-stable round-trip format; the
hierarchical form is for human/tool consumption and round-trips via
flattening (functionally gate-for-gate, not byte-for-byte).
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence

from repro.circuits.gates import gate_spec
from repro.circuits.netlist import Cell, Netlist, NetlistError

__all__ = [
    "VerilogEmissionError",
    "emit_verilog",
    "partition_by_attr",
    "verilog_identifier",
]

_SIMPLE_ID = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

#: Verilog keywords that must not be used as plain identifiers.  Only the
#: words the emitter/parser subset can actually collide with are listed.
_KEYWORDS = frozenset({
    "always", "assign", "begin", "case", "default", "else", "end", "endcase",
    "endmodule", "for", "if", "initial", "inout", "input", "module", "negedge",
    "output", "posedge", "reg", "wire",
    # Verilog gate-level primitives shadow plain identifiers too.
    "and", "buf", "bufif0", "bufif1", "nand", "nor", "not", "notif0",
    "notif1", "or", "tri", "wand", "wor", "xnor", "xor",
})


class VerilogEmissionError(NetlistError):
    """Raised when a netlist cannot be expressed as structural Verilog."""


def verilog_identifier(name: str) -> str:
    """Render *name* as a Verilog identifier.

    Plain identifiers pass through; anything else (bus-style names such as
    ``f[0]_p``, or keyword collisions) becomes an escaped identifier with
    its mandatory trailing space.
    """
    if _SIMPLE_ID.match(name) and name not in _KEYWORDS:
        return name
    if any(ch.isspace() for ch in name) or not name:
        raise VerilogEmissionError(
            f"name {name!r} contains whitespace or is empty; it cannot be a "
            "Verilog identifier (escaped identifiers end at whitespace)"
        )
    return f"\\{name} "


def _spaced(identifier: str) -> str:
    """Ensure *identifier* ends in exactly one space (escaped ids already do)."""
    return identifier if identifier.endswith(" ") else identifier + " "


def _check_exportable(netlist: Netlist) -> None:
    """Reject netlists that structural Verilog cannot represent faithfully."""
    overlap = sorted(set(netlist.primary_inputs) & set(netlist.primary_outputs))
    if overlap:
        raise VerilogEmissionError(
            f"nets {overlap[:4]} are both primary inputs and primary outputs; "
            "split the feedthrough with a BUF cell before export"
        )
    # Imported here (not at module top) to keep circuits free of hdl imports.
    from repro.circuits.validate import check_connectivity, check_structure

    report = check_structure(netlist)
    report.extend(check_connectivity(netlist))
    if report.errors:
        details = "; ".join(report.errors[:4])
        raise VerilogEmissionError(
            f"netlist {netlist.name!r} fails export validation "
            f"({len(report.errors)} error(s)): {details}"
        )


#: Prefix applied to every emitted instance name.  Verilog nets and
#: instances share one namespace per module, and the netlist builders reuse
#: the same ``<type>_<k>`` scheme for both cells and nets — the prefix keeps
#: them apart.  The round-trip parser strips exactly one occurrence.
INSTANCE_PREFIX = "u$"


def _instance_line(cell: Cell, indent: str = "  ") -> str:
    """One structural instantiation, pins in gate-spec declaration order."""
    spec = gate_spec(cell.cell_type)
    conns: List[str] = []
    for pin in spec.input_pins:
        conns.append(f".{pin}({verilog_identifier(cell.inputs[pin])})")
    for pin in spec.output_pins:
        conns.append(f".{pin}({verilog_identifier(cell.outputs[pin])})")
    joined = ", ".join(conns)
    inst = _spaced(verilog_identifier(INSTANCE_PREFIX + cell.name))
    return f"{indent}{cell.cell_type} {inst}({joined});"


def _module_text(
    name: str,
    inputs: Sequence[str],
    outputs: Sequence[str],
    wires: Sequence[str],
    body_lines: Sequence[str],
) -> str:
    lines: List[str] = []
    ports: List[str] = []
    for net in inputs:
        ports.append(f"  input {verilog_identifier(net)}")
    for net in outputs:
        ports.append(f"  output {verilog_identifier(net)}")
    lines.append(f"module {verilog_identifier(name)}(")
    lines.append(",\n".join(ports))
    lines.append(");")
    if wires:
        lines.append("")
        for net in wires:
            lines.append(f"  wire {verilog_identifier(net)};")
    if body_lines:
        lines.append("")
        lines.extend(body_lines)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def partition_by_attr(netlist: Netlist, attr: str = "block") -> Dict[str, List[str]]:
    """Group cell names by a string-valued cell attribute.

    Returns an ordered mapping ``{block_name: [cell names]}`` in order of
    first appearance (the netlist's deterministic cell order).  Cells
    without the attribute are omitted — the emitter keeps them in the top
    module.
    """
    blocks: Dict[str, List[str]] = {}
    for cell in netlist.iter_cells():
        value = cell.attrs.get(attr)
        if isinstance(value, str):
            blocks.setdefault(value, []).append(cell.name)
    return blocks


def _block_interface(
    netlist: Netlist, members: Sequence[str]
) -> Dict[str, List[str]]:
    """Classify the nets a block touches into inputs/outputs/internal."""
    member_set = set(members)
    read: Dict[str, None] = {}
    driven: Dict[str, None] = {}
    for cell_name in members:
        cell = netlist.cells[cell_name]
        for net in cell.inputs.values():
            read.setdefault(net)
        for net in cell.outputs.values():
            driven.setdefault(net)
    pos = set(netlist.primary_outputs)
    inputs: List[str] = []
    outputs: List[str] = []
    internal: List[str] = []
    for net in sorted(set(read) | set(driven)):
        net_obj = netlist.nets[net]
        driven_inside = net in driven
        if not driven_inside:
            inputs.append(net)
            continue
        read_outside = any(sink_cell not in member_set for sink_cell, _pin in net_obj.sinks)
        if net in pos or read_outside:
            outputs.append(net)
        else:
            internal.append(net)
    return {"inputs": inputs, "outputs": outputs, "internal": internal}


def emit_verilog(
    netlist: Netlist,
    blocks: Optional[Mapping[str, Sequence[str]]] = None,
    check: bool = True,
) -> str:
    """Emit *netlist* as deterministic structural Verilog.

    Parameters
    ----------
    netlist:
        A mapped netlist.  Every cell type must exist in the gate registry;
        the companion behavioral models come from
        :func:`repro.hdl.primitives.primitives_for_netlist`.
    blocks:
        Optional ordered mapping ``{block_name: cell names}``.  When given,
        each block becomes its own submodule (ports named after the nets
        they carry) and the top module instantiates them — use
        :func:`partition_by_attr` to derive this from tagged cells.  Cells
        in no block stay in the top module.  ``None`` (default) emits the
        canonical flat, byte-stable form.
    check:
        Run export validation (connectivity + structure) first and raise
        :class:`VerilogEmissionError` with the findings on failure.

    Returns
    -------
    str
        Verilog source.  Same netlist → same bytes, always.
    """
    if check:
        _check_exportable(netlist)
    for cell in netlist.iter_cells():
        gate_spec(cell.cell_type)  # raises KeyError with known-type list

    header = (
        f"// Design: {netlist.name}\n"
        f"// Structural Verilog emitted by repro.hdl.verilog (deterministic).\n"
        f"// cells={netlist.cell_count()} nets={len(netlist.nets)} "
        f"inputs={len(netlist.primary_inputs)} outputs={len(netlist.primary_outputs)}\n"
    )
    if not blocks:
        body = [_instance_line(cell) for cell in netlist.iter_cells()]
        return header + "\n" + _module_text(
            netlist.name, netlist.primary_inputs, netlist.primary_outputs,
            netlist.internal_nets(), body
        )

    # ----------------------------------------------------------- hierarchical
    owner: Dict[str, str] = {}
    for block_name, members in blocks.items():
        for cell_name in members:
            if cell_name not in netlist.cells:
                raise VerilogEmissionError(
                    f"block {block_name!r} lists unknown cell {cell_name!r}"
                )
            if cell_name in owner:
                raise VerilogEmissionError(
                    f"cell {cell_name!r} assigned to blocks {owner[cell_name]!r} "
                    f"and {block_name!r}; blocks must be disjoint"
                )
            owner[cell_name] = block_name

    modules: List[str] = []
    top_body: List[str] = []
    block_internal: Dict[str, None] = {}
    for block_name, members in blocks.items():
        iface = _block_interface(netlist, members)
        sub_name = f"{netlist.name}__{block_name}"
        member_set = set(members)
        ordered = [c.name for c in netlist.iter_cells() if c.name in member_set]
        body = [_instance_line(netlist.cells[c]) for c in ordered]
        modules.append(
            _module_text(sub_name, iface["inputs"], iface["outputs"], iface["internal"], body)
        )
        for net in iface["internal"]:
            block_internal.setdefault(net)
        conns = ", ".join(
            f".{verilog_identifier(net)}({verilog_identifier(net)})"
            for net in iface["inputs"] + iface["outputs"]
        )
        top_body.append(
            f"  {_spaced(verilog_identifier(sub_name))}"
            f"{_spaced(verilog_identifier(INSTANCE_PREFIX + block_name))}({conns});"
        )
    for cell in netlist.iter_cells():
        if cell.name not in owner:
            top_body.append(_instance_line(cell))
    top_wires = [n for n in netlist.internal_nets() if n not in block_internal]
    top = _module_text(
        netlist.name, netlist.primary_inputs, netlist.primary_outputs, top_wires, top_body
    )
    return header + "\n" + "\n".join(modules) + "\n" + top
