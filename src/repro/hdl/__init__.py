"""repro.hdl — HDL export: Verilog emission, testbenches, round-trip proof.

The paper's designs are hardware, but the seed repository could only
simulate them in Python.  This package closes that gap without requiring
any external EDA tool:

* :mod:`repro.hdl.verilog` — deterministic structural Verilog emission for
  any mapped :class:`~repro.circuits.netlist.Netlist` (flat byte-stable
  canonical form, plus per-block hierarchy via tagged cells);
* :mod:`repro.hdl.primitives` — behavioral Verilog models for every cell in
  the gate registry, derived from the same specs the simulators use;
* :mod:`repro.hdl.testbench` — self-checking testbench generators (random
  operand streams, golden outputs from the batch backend and the
  :class:`~repro.tm.inference.InferenceModel`);
* :mod:`repro.hdl.roundtrip` — a structural-Verilog parser plus
  gate-for-gate equivalence checking, proving in-process that the emitted
  RTL means exactly what the netlist does;
* :mod:`repro.hdl.export` — the one-call bundle used by
  :func:`repro.synth.flow.synthesize` (its ``export=`` hook) and
  :func:`repro.analysis.experiments.run_hdl_export`.

Quickstart
----------
>>> from repro.circuits.builder import LogicBuilder
>>> from repro.hdl import export_netlist
>>> b = LogicBuilder("demo")
>>> b.output("y", b.and_(b.input("a"), b.input("c")))
'y'
>>> export_netlist(b.netlist).verified
True
"""

from .export import HdlExport, export_netlist
from .primitives import emit_primitives, primitive_module, primitives_for_netlist
from .roundtrip import (
    EquivalenceReport,
    RoundTripReport,
    VerilogParseError,
    check_equivalence,
    netlist_from_verilog,
    parse_verilog,
    verify_roundtrip,
)
from .testbench import generate_datapath_testbench, generate_testbench
from .verilog import (
    VerilogEmissionError,
    emit_verilog,
    partition_by_attr,
    verilog_identifier,
)

__all__ = [
    "EquivalenceReport",
    "HdlExport",
    "RoundTripReport",
    "VerilogEmissionError",
    "VerilogParseError",
    "check_equivalence",
    "emit_primitives",
    "emit_verilog",
    "export_netlist",
    "generate_datapath_testbench",
    "generate_testbench",
    "netlist_from_verilog",
    "parse_verilog",
    "partition_by_attr",
    "primitive_module",
    "primitives_for_netlist",
    "verify_roundtrip",
    "verilog_identifier",
]
