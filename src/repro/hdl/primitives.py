"""Behavioral Verilog models for every cell in the gate registry.

The structural emitter (:mod:`repro.hdl.verilog`) instantiates library cells
by name (``NAND2``, ``AO22``, ``C2`` ...).  For the emitted design to be
simulatable or synthesizable, every instantiated cell type needs a Verilog
module definition.  This module generates those definitions directly from
:data:`repro.circuits.gates.GATE_REGISTRY`, so the behavioral models are
pin-compatible with — and semantically derived from — the same specs the
Python simulators use:

* combinational cells become a single ``assign`` of the obvious Boolean
  expression (AND/OR/complex-gate structure recovered from the cell-type
  name, exactly like the batch backend's vectorizer does);
* Muller C-elements become a level-sensitive hold process (drive only when
  all inputs agree — the standard behavioral C-element idiom);
* the D flip-flop becomes a positive-edge process;
* TIE cells become constant drivers.

The emission is deterministic: the same cell set always produces the same
bytes (cells are emitted in sorted name order), which the golden-file tests
rely on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.circuits.gates import GATE_REGISTRY, gate_spec
from repro.circuits.netlist import Netlist

__all__ = [
    "primitive_module",
    "emit_primitives",
    "primitives_for_netlist",
]


def _group_pins(cell_type: str, prefix: str) -> List[List[str]]:
    """Recover the pin groups of a complex gate (e.g. AOI32 → [[A1,A2,A3],[B1,B2]])."""
    widths = [int(d) for d in cell_type[len(prefix):]]
    spec = gate_spec(cell_type)
    groups: List[List[str]] = []
    idx = 0
    for width in widths:
        groups.append(list(spec.input_pins[idx: idx + width]))
        idx += width
    return groups


def _join(op: str, terms: Sequence[str]) -> str:
    return f" {op} ".join(terms)


def _complex_expr(cell_type: str, prefix: str, inner: str, outer: str, invert: bool) -> str:
    """Boolean expression of an AO/OA/AOI/OAI cell from its name."""
    groups = _group_pins(cell_type, prefix)
    terms = [pins[0] if len(pins) == 1 else f"({_join(inner, pins)})" for pins in groups]
    expr = _join(outer, terms)
    return f"~({expr})" if invert else expr


def _combinational_expr(cell_type: str) -> Optional[str]:
    """The right-hand side of ``assign Y = ...`` for a combinational cell."""
    spec = gate_spec(cell_type)
    pins = list(spec.input_pins)
    if cell_type == "INV":
        return f"~{pins[0]}"
    if cell_type == "BUF":
        return pins[0]
    if cell_type == "TIE0":
        return "1'b0"
    if cell_type == "TIE1":
        return "1'b1"
    if cell_type == "XOR2":
        return _join("^", pins)
    if cell_type == "XNOR2":
        return f"~({_join('^', pins)})"
    if cell_type == "MAJ3":
        a, b, c = pins
        return f"({a} & {b}) | ({a} & {c}) | ({b} & {c})"
    for prefix, inner, outer, invert in (
        ("NAND", "&", "&", True),
        ("NOR", "|", "|", True),
        ("AND", "&", "&", False),
        ("OR", "|", "|", False),
    ):
        if cell_type.startswith(prefix) and cell_type[len(prefix):].isdigit():
            expr = _join(inner, pins)
            return f"~({expr})" if invert else expr
    for prefix, inner, outer, invert in (
        ("AOI", "&", "|", True),
        ("OAI", "|", "&", True),
        ("AO", "&", "|", False),
        ("OA", "|", "&", False),
    ):
        if cell_type.startswith(prefix) and cell_type[len(prefix):].isdigit():
            return _complex_expr(cell_type, prefix, inner, outer, invert)
    return None


def primitive_module(cell_type: str) -> str:
    """Return the behavioral Verilog module definition for *cell_type*.

    Raises
    ------
    KeyError
        If the cell type is not in the gate registry.
    ValueError
        If no behavioral model can be derived (should not happen for
        registry cells; guards against future additions going unmodelled).
    """
    spec = gate_spec(cell_type)
    out = spec.output_pins[0]
    if spec.sequential and cell_type == "DFF":
        return (
            f"module {cell_type} (input D, input CK, output reg {out});\n"
            f"  initial {out} = 1'bx;\n"
            f"  always @(posedge CK) {out} <= D;\n"
            f"endmodule\n"
        )
    if spec.sequential and cell_type.startswith("C"):
        pins = list(spec.input_pins)
        ports = ", ".join(f"input {p}" for p in pins)
        all_high = _join("&", pins)
        all_low = _join("|", pins)
        return (
            f"module {cell_type} ({ports}, output reg {out});\n"
            f"  // Muller C-element: drive only when all inputs agree, else hold.\n"
            f"  initial {out} = 1'bx;\n"
            f"  always @* begin\n"
            f"    if ({all_high}) {out} = 1'b1;\n"
            f"    else if (~({all_low})) {out} = 1'b0;\n"
            f"  end\n"
            f"endmodule\n"
        )
    expr = _combinational_expr(cell_type)
    if expr is None:
        raise ValueError(f"no behavioral Verilog model for cell type {cell_type!r}")
    ports = ", ".join(f"input {p}" for p in spec.input_pins)
    ports = f"{ports}, output {out}" if ports else f"output {out}"
    return (
        f"module {cell_type} ({ports});\n"
        f"  assign {out} = {expr};\n"
        f"endmodule\n"
    )


def emit_primitives(cell_types: Optional[Iterable[str]] = None) -> str:
    """Emit behavioral models for *cell_types* (default: the whole registry).

    Cell types are de-duplicated and emitted in sorted order, so the output
    is byte-stable for a given cell set.
    """
    if cell_types is None:
        cell_types = GATE_REGISTRY.keys()
    wanted = sorted(set(cell_types))
    header = (
        "// Behavioral primitive models emitted by repro.hdl.primitives.\n"
        "// Pin-compatible with the structural netlist emitted alongside.\n"
        "`timescale 1ns/1ps\n"
    )
    return header + "\n" + "\n".join(primitive_module(ct) for ct in wanted)


def primitives_for_netlist(netlist: Netlist) -> str:
    """Emit behavioral models for exactly the cell types *netlist* uses."""
    return emit_primitives(sorted({cell.cell_type for cell in netlist.iter_cells()}))
