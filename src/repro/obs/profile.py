"""Profile export and analysis on top of :mod:`repro.obs.trace`.

Converts collected :class:`~repro.obs.trace.SpanRecord` trees into the
Chrome/Perfetto ``trace_event`` JSON format (open the file at
``https://ui.perfetto.dev`` or ``chrome://tracing``), computes per-name
self-time tables for quick ``trace_report`` summaries, and provides the
:func:`tracing_session` context manager the example CLIs wrap their main
body in to implement ``--trace-out``.
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from . import trace as _trace
from .trace import SpanRecord

__all__ = [
    "format_table",
    "self_time_table",
    "to_trace_events",
    "tracing_session",
    "write_trace",
]


def to_trace_events(records: Iterable[SpanRecord]) -> Dict[str, Any]:
    """Convert span records to a Chrome ``trace_event`` JSON document.

    Each span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur``.  Timestamps are normalized so the
    earliest span starts at ``ts = 0`` — absolute ``perf_counter``
    origins are meaningless across runs.  Span attributes (plus the span
    ids, for tree reconstruction) travel in ``args``.
    """
    records = list(records)
    origin = min((r.start_us for r in records), default=0.0)
    events = []
    for record in sorted(records, key=lambda r: r.start_us):
        args: Dict[str, Any] = {"span_id": record.span_id}
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        args.update(record.attrs)
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": round(record.start_us - origin, 3),
                "dur": round(record.duration_us, 3),
                "pid": record.pid,
                "tid": record.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(
    path: Union[str, Path], records: Iterable[SpanRecord]
) -> None:
    """Write records to *path*: JSON lines for ``.jsonl``, else Chrome JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        _trace.export_jsonl(path, records)
    else:
        payload = to_trace_events(records)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def self_time_table(
    records: Iterable[SpanRecord], top: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Aggregate per span *name*: call count, total time, self time.

    Self time is a span's duration minus the durations of its *direct*
    children — the part actually spent in that stage rather than in
    instrumented sub-stages.  Rows are sorted by self time, descending;
    *top* truncates the table.  Times are in microseconds.
    """
    records = list(records)
    child_time: Dict[str, float] = {}
    for record in records:
        if record.parent_id is not None:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration_us
            )
    rows: Dict[str, Dict[str, Any]] = {}
    for record in records:
        row = rows.setdefault(
            record.name, {"name": record.name, "count": 0,
                          "total_us": 0.0, "self_us": 0.0}
        )
        row["count"] += 1
        row["total_us"] += record.duration_us
        self_us = record.duration_us - child_time.get(record.span_id, 0.0)
        row["self_us"] += max(0.0, self_us)
    table = sorted(rows.values(), key=lambda r: r["self_us"], reverse=True)
    return table[:top] if top is not None else table


def format_table(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """Render a :func:`self_time_table` as aligned report lines."""
    lines = [f"{'span':<28} {'count':>7} {'total ms':>10} {'self ms':>10}"]
    for row in rows:
        lines.append(
            f"{row['name']:<28} {row['count']:>7} "
            f"{row['total_us'] / 1e3:>10.3f} {row['self_us'] / 1e3:>10.3f}"
        )
    return lines


@contextlib.contextmanager
def tracing_session(path: Optional[Union[str, Path]]) -> Iterator[None]:
    """Enable tracing for a CLI run and write the profile on exit.

    The ``--trace-out`` implementation: a falsy *path* makes this a
    no-op, otherwise the default tracer is reset + enabled for the body
    and the collected records are written to *path* (Chrome JSON, or
    JSON lines when *path* ends in ``.jsonl``) even if the body raises —
    a profile of a failed run is the one you want most.
    """
    if not path:
        yield
        return
    _trace.reset()
    _trace.enable()
    try:
        yield
    finally:
        records = _trace.drain()
        _trace.disable()
        write_trace(path, records)
