"""Unified telemetry for the reproduction: tracing, metrics, profiles.

Three dependency-free pillars (see ``docs/guides/observability.md``):

* :mod:`repro.obs.trace` — nestable wall-time spans, thread/async-safe
  via ``contextvars``, propagated across ``run_parallel`` worker
  processes and asyncio tasks; zero-cost no-ops while disabled.
* :mod:`repro.obs.metrics` — a typed registry of counters, gauges, and
  fixed-bucket histograms, snapshotable to JSON and renderable in the
  Prometheus text exposition format.
* :mod:`repro.obs.profile` — Chrome/Perfetto ``trace_event`` export,
  per-span self-time tables, and the ``--trace-out`` CLI session helper.

:mod:`repro.obs.schema` validates the emitted artifacts structurally
(used by the ``obs-smoke`` CI job).  This package deliberately imports
nothing from the rest of ``repro`` — instrumented modules import *it*,
never the other way around.
"""

from . import metrics, profile, schema, trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .profile import (
    self_time_table,
    to_trace_events,
    tracing_session,
    write_trace,
)
from .schema import (
    METRICS_SNAPSHOT_SCHEMA,
    TRACE_EVENTS_SCHEMA,
    SchemaError,
    validate_metrics_snapshot,
    validate_trace_events,
)
from .trace import SpanRecord, Tracer, capture, default_tracer, span

__all__ = [
    "METRICS_SNAPSHOT_SCHEMA",
    "TRACE_EVENTS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SchemaError",
    "SpanRecord",
    "Tracer",
    "capture",
    "default_registry",
    "default_tracer",
    "metrics",
    "profile",
    "schema",
    "self_time_table",
    "span",
    "to_trace_events",
    "trace",
    "tracing_session",
    "validate_metrics_snapshot",
    "validate_trace_events",
    "write_trace",
]
