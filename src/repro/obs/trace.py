"""Wall-time tracing spans: nestable, thread/async-safe, cross-process.

The tracer records a tree of named wall-clock intervals ("spans") around
the hot pipeline stages — compile, pack/level/unpack loops, timed-engine
phases, DSE evaluation, gateway batching — and exports them as JSON lines
or Chrome/Perfetto ``trace_event`` JSON (see :mod:`repro.obs.profile`).

Design constraints, in priority order:

**Zero cost when disabled.**  ``span()`` on a disabled tracer returns a
shared no-op singleton; the only work on the hot path is one attribute
read and one ``is``-comparable branch.  The <3% overhead budget on the
bitpack throughput benchmark (``benchmarks/test_obs_overhead.py``) is the
enforced contract.

**Thread- and async-safety.**  The "current span" is a
:class:`contextvars.ContextVar`, so concurrent asyncio tasks (the serve
gateway spawns one task per request line) and worker threads each see
their own span stack, and a task created inside a span inherits that span
as parent — asyncio copies the context at task creation.

**Cross-process propagation.**  Span ids embed the producing PID, so ids
never collide between a parent and its pool workers.  A worker wraps its
chunk in :func:`capture` and ships the finished records back with the
chunk results; the parent re-parents the worker's root spans onto its own
``run_parallel`` span via :func:`reparent` and folds them in with
:func:`adopt`.  Timestamps are ``time.perf_counter`` based, which on
Linux is the system-wide ``CLOCK_MONOTONIC`` — comparable across the
fork/spawn boundary on the platforms CI runs on.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "SpanRecord",
    "Tracer",
    "adopt",
    "capture",
    "current_span_id",
    "default_tracer",
    "disable",
    "drain",
    "enable",
    "enabled",
    "export_jsonl",
    "load_jsonl",
    "records",
    "reparent",
    "reset",
    "span",
]


@dataclass
class SpanRecord:
    """One finished span: a named wall-clock interval in the trace tree.

    ``start_us`` is an *absolute* ``perf_counter`` microsecond value; the
    exporters normalize to the earliest record, so only differences are
    meaningful.  ``span_id`` / ``parent_id`` are ``"<pid-hex>:<n>"``
    strings, unique across the processes that contribute to one trace.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start_us: float
    duration_us: float
    pid: int
    tid: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-lines wire form of this record."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_us=float(payload["start_us"]),
            duration_us=float(payload["duration_us"]),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            attrs=dict(payload.get("attrs", {})),
        )


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """No-op context entry."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """No-op context exit."""

    def add(self, **attrs: Any) -> None:
        """Discard post-creation attributes."""


#: The singleton returned by :meth:`Tracer.span` when tracing is off.
NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: measures wall time between ``__enter__``/``__exit__``."""

    __slots__ = ("_tracer", "name", "span_id", "attrs", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.attrs = attrs
        self._start = 0.0
        self._token: Optional[contextvars.Token] = None

    def add(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (counts, sizes, reasons)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        """Start the clock and become the context's current span."""
        self._token = self._tracer._current.set(self.span_id)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Stop the clock, restore the parent span, record the interval."""
        end = perf_counter()
        token = self._token
        parent_id: Optional[str] = None
        if token is not None:
            parent_id = token.old_value
            if parent_id is contextvars.Token.MISSING:
                parent_id = None
            self._tracer._current.reset(token)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=parent_id,
                start_us=self._start * 1e6,
                duration_us=(end - self._start) * 1e6,
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFFFFFF,
                attrs=self.attrs,
            )
        )


class Tracer:
    """A span recorder: hands out spans, collects finished records.

    One module-level instance (:func:`default_tracer`) backs the whole
    process; instrumented code calls the module-level :func:`span` so the
    tracer can be swapped in tests.  All mutation of the record list is
    lock-guarded — spans may finish on worker threads.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._counter = 0
        self._current: contextvars.ContextVar[Optional[str]] = (
            contextvars.ContextVar("repro_obs_current_span", default=None)
        )

    # ------------------------------------------------------------- control
    @property
    def enabled(self) -> bool:
        """Whether :meth:`span` returns live spans."""
        return self._enabled

    def enable(self) -> None:
        """Start handing out live spans."""
        self._enabled = True

    def disable(self) -> None:
        """Return to the zero-cost no-op path."""
        self._enabled = False

    def reset(self) -> None:
        """Drop all collected records and restart the id counter."""
        with self._lock:
            self._records = []
            self._counter = 0

    # -------------------------------------------------------------- spans
    def span(self, name: str, **attrs: Any) -> Union[_Span, _NoopSpan]:
        """Open a span named *name*; a no-op singleton when disabled.

        Use as a context manager::

            with trace.span("backend.compile", cells=42):
                ...
        """
        if not self._enabled:
            return NOOP_SPAN
        return _Span(self, name, attrs)

    def current_span_id(self) -> Optional[str]:
        """The id of the innermost open span in this context, if any."""
        return self._current.get()

    def _next_id(self) -> str:
        """Allocate a process-unique, cross-process-collision-free id."""
        with self._lock:
            self._counter += 1
            return f"{os.getpid():x}:{self._counter}"

    def _record(self, record: SpanRecord) -> None:
        """Append one finished span (worker threads included)."""
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------ records
    def records(self) -> List[SpanRecord]:
        """A snapshot copy of the records collected so far."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        """Return all collected records and clear the buffer."""
        with self._lock:
            out = self._records
            self._records = []
            return out

    def adopt(self, records: Iterable[SpanRecord]) -> None:
        """Fold records produced elsewhere (a worker process) into this trace."""
        with self._lock:
            self._records.extend(records)


#: The process-wide tracer behind the module-level helpers.
_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer used by the module-level helpers."""
    return _DEFAULT


def span(name: str, **attrs: Any) -> Union[_Span, _NoopSpan]:
    """Open a span on the default tracer (no-op while disabled)."""
    return _DEFAULT.span(name, **attrs)


def enable() -> None:
    """Enable the default tracer."""
    _DEFAULT.enable()


def disable() -> None:
    """Disable the default tracer."""
    _DEFAULT.disable()


def enabled() -> bool:
    """Whether the default tracer is recording."""
    return _DEFAULT.enabled


def reset() -> None:
    """Clear the default tracer's records."""
    _DEFAULT.reset()


def records() -> List[SpanRecord]:
    """Snapshot the default tracer's records."""
    return _DEFAULT.records()


def drain() -> List[SpanRecord]:
    """Drain the default tracer's records."""
    return _DEFAULT.drain()


def adopt(records: Iterable[SpanRecord]) -> None:
    """Fold externally produced records into the default tracer."""
    _DEFAULT.adopt(records)


def current_span_id() -> Optional[str]:
    """The innermost open span id on the default tracer, if any."""
    return _DEFAULT.current_span_id()


class capture:
    """Context manager: record spans into a private buffer, then hand them over.

    Used by ``run_parallel`` pool workers — the worker may have inherited
    a half-filled record list through ``fork``, so :class:`capture` swaps
    in a fresh buffer, force-enables tracing, clears the inherited
    "current span" for this context, and on exit restores everything and
    exposes the collected records as :attr:`records`::

        with capture() as grabbed:
            with span("run_parallel.chunk"):
                ...
        ship(grabbed.records)
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer or _DEFAULT
        self.records: List[SpanRecord] = []
        self._saved: List[SpanRecord] = []
        self._was_enabled = False
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "capture":
        """Swap in a fresh buffer and enable tracing."""
        tracer = self._tracer
        with tracer._lock:
            self._saved = tracer._records
            tracer._records = []
        self._was_enabled = tracer._enabled
        self._token = tracer._current.set(None)
        tracer.enable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Collect the buffer and restore the tracer's previous state."""
        tracer = self._tracer
        with tracer._lock:
            self.records = tracer._records
            tracer._records = self._saved
        if self._token is not None:
            tracer._current.reset(self._token)
        if not self._was_enabled:
            tracer.disable()


def reparent(
    records: Iterable[SpanRecord], parent_id: Optional[str]
) -> List[SpanRecord]:
    """Attach root records (``parent_id is None``) under *parent_id*.

    Non-root records keep their parents; this is how a worker chunk's
    span tree is grafted under the coordinating ``run_parallel`` span.
    """
    out = []
    for record in records:
        if record.parent_id is None:
            record.parent_id = parent_id
        out.append(record)
    return out


def export_jsonl(
    path: Union[str, Path], records: Iterable[SpanRecord]
) -> None:
    """Write *records* as JSON lines (one span object per line)."""
    lines = [json.dumps(record.to_dict(), sort_keys=True) for record in records]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_jsonl(path: Union[str, Path]) -> List[SpanRecord]:
    """Read a JSON-lines trace back into :class:`SpanRecord` objects."""
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(SpanRecord.from_dict(json.loads(line)))
    return out
