"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

A deliberately small, dependency-free subset of the Prometheus data
model — enough to expose the serving gateway's counters
(``requests_total``, ``flush_reason``), queue depth, cache hit rates, and
backend throughput over the TCP ``metrics`` line-command, without pulling
in a client library.

Metrics are get-or-create by name on a :class:`MetricsRegistry`;
label sets are applied per observation (``counter.inc(reason="full")``).
Two render targets:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict, used by
  tests, the schema check in CI, and ``--metrics-out`` CLI flags.
* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``) served by
  :class:`repro.serve.server.InferenceServer` on a bare ``metrics`` line.

Everything is lock-guarded; observations may come from worker threads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_total",
    "default_registry",
    "series_value",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Normalize a label mapping into a hashable, sorted key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    """Render a label key as the ``{name="value"}`` exposition suffix."""
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class _Metric:
    """Shared name/help/lock plumbing for all metric types."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def header_lines(self) -> List[str]:
        """The ``# HELP`` / ``# TYPE`` exposition preamble."""
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """A monotonically increasing per-label-set count."""

    kind = "counter"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add *amount* (default 1) to the series selected by *labels*."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """The current count for one label set (0 if never incremented)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state: kind, help, and every labelled series."""
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"kind": self.kind, "help": self.help, "series": series}

    def render(self) -> List[str]:
        """Exposition-format sample lines for this counter."""
        with self._lock:
            items = sorted(self._values.items())
        lines = self.header_lines()
        if not items:
            lines.append(f"{self.name} 0")
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(key)} {_render_value(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down (queue depth, throughput)."""

    kind = "gauge"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by *labels* to *value*."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Adjust the series by *amount* (may be negative)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """The current value for one label set (0 if never set)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state: kind, help, and every labelled series."""
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"kind": self.kind, "help": self.help, "series": series}

    def render(self) -> List[str]:
        """Exposition-format sample lines for this gauge."""
        with self._lock:
            items = sorted(self._values.items())
        lines = self.header_lines()
        if not items:
            lines.append(f"{self.name} 0")
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(key)} {_render_value(value)}")
        return lines


class Histogram(_Metric):
    """A fixed-bucket histogram (cumulative ``le`` buckets, sum, count)."""

    kind = "histogram"

    #: Default upper bounds, in seconds — tuned for gateway latencies.
    DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets if buckets is not None else self.DEFAULT_BUCKETS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} buckets must be sorted and unique")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation into the cumulative buckets."""
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state: bucket bounds, per-bucket counts, sum, count."""
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def render(self) -> List[str]:
        """Exposition-format ``_bucket`` / ``_sum`` / ``_count`` lines."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc_sum = self._sum
        lines = self.header_lines()
        cumulative = 0
        for bound, count in zip(self.buckets, counts[:-1]):
            cumulative += count
            lines.append(f'{self.name}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_render_value(acc_sum)}")
        lines.append(f"{self.name}_count {total}")
        return lines


def _render_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Get-or-create home for named metrics, snapshotable and renderable.

    Re-registering a name with the same type returns the existing metric
    (so instrumented modules need no global wiring); re-registering with
    a *different* type raises, catching collisions early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create the histogram *name* (buckets fixed at creation)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def _get_or_create(self, cls: type, name: str, help: str) -> Any:
        """Shared get-or-create with type-collision detection."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def names(self) -> List[str]:
        """The registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able ``{name: metric-state}`` dict of every metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot() for name in sorted(metrics)}

    def render_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = dict(self._metrics)
        lines: List[str] = []
        for name in sorted(metrics):
            lines.extend(metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every registered metric (tests only)."""
        with self._lock:
            self._metrics = {}


#: The process-wide registry instrumented modules default to.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry used when none is passed explicitly."""
    return _DEFAULT


def counter_total(snapshot: Dict[str, Any]) -> float:
    """Sum a counter snapshot's series — the label-agnostic total."""
    return sum(entry["value"] for entry in snapshot.get("series", ()))


def series_value(
    snapshot: Dict[str, Any], **labels: Any
) -> float:
    """Pull one labelled series' value out of a counter/gauge snapshot."""
    want = {str(k): str(v) for k, v in labels.items()}
    for entry in snapshot.get("series", ()):
        if entry["labels"] == want:
            return entry["value"]
    return 0.0
