"""Dependency-free structural validation for telemetry artifacts.

The ``obs-smoke`` CI job validates the emitted profiles and metrics
snapshots before uploading them; rather than adding a ``jsonschema``
dependency, this module implements the small JSON-Schema subset those
checks need (``type``, ``required``, ``properties``,
``additionalProperties``, ``items``, ``enum``, ``minItems``,
``minimum``) plus the two concrete schemas:

* :data:`TRACE_EVENTS_SCHEMA` — a Chrome ``trace_event`` document as
  produced by :func:`repro.obs.profile.to_trace_events`.
* :data:`METRICS_SNAPSHOT_SCHEMA` — a
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload.

Validation failures raise :class:`SchemaError` with a JSON-pointer-style
path, so a CI failure names the offending field directly.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = [
    "METRICS_SNAPSHOT_SCHEMA",
    "SchemaError",
    "TRACE_EVENTS_SCHEMA",
    "validate",
    "validate_metrics_snapshot",
    "validate_trace_events",
]


class SchemaError(ValueError):
    """A document failed schema validation; ``path`` locates the failure."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path or "/"
        super().__init__(f"{self.path}: {message}")


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value: Any, expected: str, path: str) -> None:
    """Enforce one JSON type name (numbers accept int-but-not-bool)."""
    if expected == "number":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(path, f"expected number, got {type(value).__name__}")
        return
    if expected == "integer":
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(path, f"expected integer, got {type(value).__name__}")
        return
    cls = _TYPES.get(expected)
    if cls is None:
        raise SchemaError(path, f"unknown schema type {expected!r}")
    if not isinstance(value, cls):
        raise SchemaError(path, f"expected {expected}, got {type(value).__name__}")


def validate(value: Any, schema: Dict[str, Any], path: str = "") -> None:
    """Validate *value* against the supported JSON-Schema subset.

    Raises :class:`SchemaError` on the first violation; returns ``None``
    on success.
    """
    expected_type = schema.get("type")
    if expected_type is not None:
        if isinstance(expected_type, list):
            for candidate in expected_type:
                try:
                    _check_type(value, candidate, path)
                    break
                except SchemaError:
                    continue
            else:
                raise SchemaError(
                    path, f"expected one of {expected_type}, "
                    f"got {type(value).__name__}"
                )
        else:
            _check_type(value, expected_type, path)
    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(path, f"{value!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            raise SchemaError(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                raise SchemaError(path, f"missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():
            if name in value:
                validate(value[name], sub, f"{path}/{name}")
        extra = schema.get("additionalProperties")
        if extra is False:
            unknown = sorted(set(value) - set(properties))
            if unknown:
                raise SchemaError(path, f"unexpected properties {unknown}")
        elif isinstance(extra, dict):
            for name, item in value.items():
                if name not in properties:
                    validate(item, extra, f"{path}/{name}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise SchemaError(
                path, f"expected at least {schema['minItems']} items, "
                f"got {len(value)}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for index, item in enumerate(value):
                validate(item, items, f"{path}/{index}")


#: Schema for a Chrome ``trace_event`` profile document.
TRACE_EVENTS_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "displayTimeUnit": {"type": "string"},
        "traceEvents": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "dur", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"enum": ["X"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

#: Schema for a :meth:`MetricsRegistry.snapshot` payload.
METRICS_SNAPSHOT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "additionalProperties": {
        "type": "object",
        "required": ["kind", "help"],
        "properties": {
            "kind": {"enum": ["counter", "gauge", "histogram"]},
            "help": {"type": "string"},
            "series": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": ["labels", "value"],
                    "properties": {
                        "labels": {"type": "object"},
                        "value": {"type": "number"},
                    },
                },
            },
            "buckets": {"type": "array", "items": {"type": "number"}},
            "counts": {"type": "array", "items": {"type": "integer"}},
            "sum": {"type": "number"},
            "count": {"type": "integer", "minimum": 0},
        },
    },
}


def validate_trace_events(payload: Dict[str, Any]) -> List[str]:
    """Validate a Chrome trace document; return its sorted span names."""
    validate(payload, TRACE_EVENTS_SCHEMA)
    return sorted({event["name"] for event in payload["traceEvents"]})


def validate_metrics_snapshot(payload: Dict[str, Any]) -> List[str]:
    """Validate a metrics snapshot; return its sorted metric names."""
    validate(payload, METRICS_SNAPSHOT_SCHEMA)
    return sorted(payload)
