"""Chunked, seeded, parallel experiment execution.

The paper's evaluation artefacts are all *embarrassingly parallel sweeps*:
voltage points (Figure 3), library × design measurements (Table I), operand
streams (latency distributions).  :func:`run_parallel` is the one execution
primitive they share.

The contract
------------
* **Work units** are the items of an input sequence; results always come
  back in input order, regardless of scheduling.
* **Chunking**: items are grouped into contiguous chunks of ``chunk_size``
  (default 1).  A chunk is the unit handed to a worker process, so chunking
  amortizes per-task setup (e.g. rebuilding a datapath and simulator) —
  chunk boundaries depend only on ``chunk_size``, never on ``jobs``.
* **Seeding**: when ``seed`` is given, chunk *i* receives an independent
  :class:`numpy.random.Generator` derived from
  ``SeedSequence([seed, i])``.  The stream a work item sees is therefore a
  pure function of ``(seed, chunk_size, item index)`` and **identical for
  every ``jobs`` setting** — ``jobs=1`` and ``jobs=8`` must produce
  bit-identical results (the determinism tests assert this).
* **Execution**: ``jobs=1`` runs serially in-process (no pool overhead,
  easiest debugging); ``jobs>1`` fans chunks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`, so workers and items
  must be picklable (module-level functions, plain data).
* **Tracing**: when the :mod:`repro.obs` tracer is enabled, the whole map
  runs under a ``run_parallel`` span and each chunk under a
  ``run_parallel.chunk`` child.  Pool workers record their spans locally
  (:class:`repro.obs.trace.capture`), ship them back alongside the chunk
  results, and the parent re-parents them onto its span — one coherent
  tree across processes, at zero cost when tracing is off.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import trace as _trace


@dataclass(frozen=True)
class WorkChunk:
    """A contiguous slice of the work list plus its RNG seed material."""

    index: int
    start: int
    items: Tuple[Any, ...]
    seed: Optional[int] = None

    def rng(self) -> Optional[np.random.Generator]:
        """The chunk's independent generator (``None`` when unseeded)."""
        if self.seed is None:
            return None
        return np.random.default_rng(np.random.SeedSequence([self.seed, self.index]))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument: ``None``/``0`` → CPU count, floor 1."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return int(jobs)


def make_chunks(
    items: Sequence[Any], chunk_size: int = 1, seed: Optional[int] = None
) -> List[WorkChunk]:
    """Split *items* into contiguous :class:`WorkChunk` groups."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks: List[WorkChunk] = []
    for index, start in enumerate(range(0, len(items), chunk_size)):
        chunks.append(
            WorkChunk(
                index=index,
                start=start,
                items=tuple(items[start: start + chunk_size]),
                seed=seed,
            )
        )
    return chunks


def _execute_chunk(worker: Callable[..., Any], chunk: WorkChunk) -> List[Any]:
    """Run one chunk serially; the per-process entry point."""
    rng = chunk.rng()
    results = []
    for item in chunk.items:
        results.append(worker(item) if rng is None else worker(item, rng))
    return results


def _execute_chunk_traced(
    worker: Callable[..., Any], chunk: WorkChunk
) -> Tuple[List[Any], List["_trace.SpanRecord"]]:
    """Pool entry point when tracing: chunk results plus the worker's spans.

    Spans are recorded into a private buffer (:class:`repro.obs.trace.capture`
    — a forked worker may hold a stale copy of the parent's record list) and
    shipped back with the results for re-parenting in the coordinator.
    """
    with _trace.capture() as captured:
        with _trace.span(
            "run_parallel.chunk", index=chunk.index, items=len(chunk.items)
        ):
            results = _execute_chunk(worker, chunk)
    return results, captured.records


def run_parallel(
    worker: Callable[..., Any],
    items: Sequence[Any],
    jobs: int = 1,
    chunk_size: int = 1,
    seed: Optional[int] = None,
) -> List[Any]:
    """Map *worker* over *items* under the chunked/seeded contract above.

    Parameters
    ----------
    worker:
        Called as ``worker(item)``, or ``worker(item, rng)`` when *seed* is
        given.  Must be picklable (module-level) for ``jobs > 1``.
    items:
        The work units; results are returned in the same order.
    jobs:
        Degree of parallelism; ``None``/``0`` selects the CPU count.
    chunk_size:
        Items per scheduling unit (see module docstring).
    seed:
        Root entropy for the per-chunk RNG contract.
    """
    jobs = resolve_jobs(jobs)
    chunks = make_chunks(items, chunk_size=chunk_size, seed=seed)
    if not chunks:
        return []
    with _trace.span(
        "run_parallel", jobs=jobs, chunks=len(chunks), items=len(items)
    ):
        if jobs == 1 or len(chunks) == 1:
            nested = []
            for chunk in chunks:
                with _trace.span(
                    "run_parallel.chunk", index=chunk.index, items=len(chunk.items)
                ):
                    nested.append(_execute_chunk(worker, chunk))
        elif _trace.enabled():
            parent_id = _trace.current_span_id()
            with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
                shipped = list(
                    pool.map(
                        _execute_chunk_traced, [worker] * len(chunks), chunks
                    )
                )
            nested = []
            for chunk_results, records in shipped:
                nested.append(chunk_results)
                _trace.adopt(_trace.reparent(records, parent_id))
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
                nested = list(
                    pool.map(_execute_chunk, [worker] * len(chunks), chunks)
                )
    return [result for chunk_results in nested for result in chunk_results]
