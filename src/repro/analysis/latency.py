"""Latency statistics of dual-rail inference runs.

Table I reports per-design *average* latency, *maximum* latency and the
valid→spacer reset time; this module turns a list of per-operand
:class:`~repro.sim.handshake.DualRailInferenceResult` objects into those
numbers (plus percentiles used by the distribution analyses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.handshake import DualRailInferenceResult


@dataclass
class LatencySummary:
    """Aggregate latency statistics of a workload run."""

    average: float
    maximum: float
    minimum: float
    p50: float
    p95: float
    reset_time: float
    samples: int

    @property
    def early_propagation_gain(self) -> float:
        """Ratio of the worst-case to the average latency (>1 means data dependence)."""
        return self.maximum / self.average if self.average > 0 else float("nan")


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def summarize_latencies(results: Sequence[DualRailInferenceResult]) -> LatencySummary:
    """Summarise the spacer→valid latencies (and reset times) of a run."""
    if not results:
        raise ValueError("cannot summarise an empty result list")
    latencies = sorted(r.t_s_to_v for r in results)
    resets = [r.t_v_to_s for r in results]
    return LatencySummary(
        average=sum(latencies) / len(latencies),
        maximum=latencies[-1],
        minimum=latencies[0],
        p50=_percentile(latencies, 0.50),
        p95=_percentile(latencies, 0.95),
        reset_time=max(resets),
        samples=len(latencies),
    )


def latencies_of(results: Sequence[DualRailInferenceResult]) -> List[float]:
    """The raw per-operand spacer→valid latencies (histogram input)."""
    return [r.t_s_to_v for r in results]
