"""Latency statistics of dual-rail inference runs — and of served requests.

Table I reports per-design *average* latency, *maximum* latency and the
valid→spacer reset time; this module turns a list of per-operand
:class:`~repro.sim.handshake.DualRailInferenceResult` objects into those
numbers (plus percentiles used by the distribution analyses).

The same percentile discipline applies one layer up: the serving gateway
(:mod:`repro.serve`) reports end-to-end request latencies with exactly the
rank-order percentile estimator used here, through
:func:`summarize_slo` / :class:`SloSummary` — so a p95 quoted for the
hardware handshake and a p95 quoted for a served request mean the same
thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.handshake import DualRailInferenceResult


@dataclass
class LatencySummary:
    """Aggregate latency statistics of a workload run."""

    average: float
    maximum: float
    minimum: float
    p50: float
    p95: float
    reset_time: float
    samples: int

    @property
    def early_propagation_gain(self) -> float:
        """Ratio of the worst-case to the average latency (>1 means data dependence)."""
        return self.maximum / self.average if self.average > 0 else float("nan")


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def summarize_latencies(results: Sequence[DualRailInferenceResult]) -> LatencySummary:
    """Summarise the spacer→valid latencies (and reset times) of a run."""
    if not results:
        raise ValueError("cannot summarise an empty result list")
    latencies = sorted(r.t_s_to_v for r in results)
    resets = [r.t_v_to_s for r in results]
    return LatencySummary(
        average=sum(latencies) / len(latencies),
        maximum=latencies[-1],
        minimum=latencies[0],
        p50=_percentile(latencies, 0.50),
        p95=_percentile(latencies, 0.95),
        reset_time=max(resets),
        samples=len(latencies),
    )


def latencies_of(results: Sequence[DualRailInferenceResult]) -> List[float]:
    """The raw per-operand spacer→valid latencies (histogram input)."""
    return [r.t_s_to_v for r in results]


@dataclass
class SloSummary:
    """Percentile summary of an arbitrary latency sample (SLO reporting).

    The unit is whatever the caller's values carry (picoseconds for the
    hardware handshake, seconds for served requests); the estimator is the
    same rank-order percentile used by :func:`summarize_latencies`, so
    hardware-level and service-level tail figures are directly comparable.
    """

    samples: int
    mean: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def scaled(self, factor: float) -> "SloSummary":
        """The same summary with every quantity multiplied by *factor*.

        Unit conversion helper (e.g. seconds → milliseconds with
        ``factor=1e3``); *samples* is left untouched.
        """
        return SloSummary(
            samples=self.samples,
            mean=self.mean * factor,
            minimum=self.minimum * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            maximum=self.maximum * factor,
        )


def summarize_slo(values: Sequence[float]) -> SloSummary:
    """Summarise any latency sample into the p50/p95/p99/max SLO figures."""
    if not values:
        raise ValueError("cannot summarise an empty latency sample")
    ordered = sorted(values)
    return SloSummary(
        samples=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
        maximum=ordered[-1],
    )
