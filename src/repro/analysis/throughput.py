"""Throughput (inferences per second) for both datapath styles.

For the single-rail design the throughput period is simply the clock period
(one operand per cycle when pipelined through the input/output registers).
For the dual-rail design the throughput period is the forward latency plus
the return-to-spacer time plus any grace period built into the completion
signal (Section IV-D: "throughput period is determined by t(S→V) + t(V→S) so
that the PIs are ready for the next operand").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.handshake import DualRailInferenceResult


@dataclass
class ThroughputSummary:
    """Average throughput of a workload run."""

    period_ps: float
    inferences_per_second: float

    @property
    def millions_per_second(self) -> float:
        """Throughput in millions of inferences per second (the Table-I unit)."""
        return self.inferences_per_second / 1e6


def throughput_from_period(period_ps: float) -> ThroughputSummary:
    """Throughput implied by a fixed per-operand period in picoseconds."""
    if period_ps <= 0:
        raise ValueError("period must be positive")
    return ThroughputSummary(period_ps=period_ps, inferences_per_second=1e12 / period_ps)


def dual_rail_throughput(
    results: Sequence[DualRailInferenceResult], grace_period: float = 0.0
) -> ThroughputSummary:
    """Average dual-rail throughput over a run.

    The per-operand period is ``t(S→V) + max(t(V→S), grace period)`` — the
    environment may not apply the next valid until both the outputs have
    reset and the reduced-CD grace period has elapsed.
    """
    if not results:
        raise ValueError("cannot compute throughput of an empty run")
    periods = [r.t_s_to_v + max(r.t_v_to_s, grace_period) for r in results]
    average_period = sum(periods) / len(periods)
    return throughput_from_period(average_period)


def synchronous_throughput(clock_period_ps: float) -> ThroughputSummary:
    """Single-rail throughput: one inference per clock cycle."""
    return throughput_from_period(clock_period_ps)
