"""Measurement, statistics and experiment harnesses for the paper's evaluation."""

from .distributions import (
    Histogram,
    comparator_decision_depth,
    latency_histogram,
    latency_vs_decision_depth,
    mean_latency_by_depth,
    operand_distributions,
)
from .experiments import (
    DualRailMeasurement,
    SingleRailMeasurement,
    Workload,
    default_workload,
    dual_rail_table_row,
    measure_dual_rail,
    measure_single_rail,
    random_workload,
    run_figure3,
    run_table1,
    single_rail_table_row,
)
from .latency import LatencySummary, latencies_of, summarize_latencies
from .tables import (
    Figure3Point,
    Table1Row,
    format_figure3,
    format_histogram,
    format_table1,
)
from .throughput import (
    ThroughputSummary,
    dual_rail_throughput,
    synchronous_throughput,
    throughput_from_period,
)

__all__ = [
    "DualRailMeasurement",
    "Figure3Point",
    "Histogram",
    "LatencySummary",
    "SingleRailMeasurement",
    "Table1Row",
    "ThroughputSummary",
    "Workload",
    "comparator_decision_depth",
    "default_workload",
    "dual_rail_table_row",
    "dual_rail_throughput",
    "format_figure3",
    "format_histogram",
    "format_table1",
    "latencies_of",
    "latency_histogram",
    "latency_vs_decision_depth",
    "mean_latency_by_depth",
    "measure_dual_rail",
    "measure_single_rail",
    "operand_distributions",
    "random_workload",
    "run_figure3",
    "run_table1",
    "single_rail_table_row",
    "summarize_latencies",
    "synchronous_throughput",
    "throughput_from_period",
]
