"""Shared workload / library / measurement plumbing for every harness.

Before the design-space-exploration subsystem existed, each experiment
harness in :mod:`repro.analysis.experiments` repeated the same setup by
hand: pick a default workload, pick default libraries, build the dual-rail
datapath, synthesize it, compute the grace period, wire up a simulator and
handshake environment.  This module is the single home for that plumbing;
the Table-I / Figure-3 / latency-distribution harnesses and the
:mod:`repro.explore` evaluator all consume the same helpers, so a
measurement made by the DSE sweep is — by construction — the same
measurement the paper-reproduction harnesses make.

Contents
--------
* :class:`Workload` plus the :func:`default_workload` / :func:`random_workload`
  constructors and :func:`truncate_workload` (prefix sub-streams);
* :func:`resolve_workload` / :func:`resolve_library` /
  :func:`resolve_libraries` — argument-defaulting used by every harness;
* :class:`MappedDualRail` / :func:`build_mapped_dual_rail` — the
  build → map → grace-period pipeline shared by all dual-rail measurements;
* :class:`DualRailTestbench` / :func:`make_dual_rail_environment` — the
  simulator + handshake environment (+ optional monitors) construction;
* :class:`FunctionalSweep` / :func:`batch_functional_pass` and its plane
  helpers — the vectorized functional evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.library import CellLibrary, default_libraries, full_diffusion_library
from repro.core.completion import GracePeriod, compute_grace_period
from repro.core.dual_rail import DualRailCircuit, OneOfNSignal, decode_pair
from repro.core.one_of_n import decode_one_of_n
from repro.datapath.datapath import (
    DatapathConfig,
    DualRailDatapath,
    VERDICT_LABELS,
    feature_input_name,
)
from repro.obs import trace as _trace
from repro.sim.backends import (
    ArrayBatchResult,
    PackedBatchResult,
    TimedBatchResult,
    get_backend,
)
from repro.sim.handshake import DualRailEnvironment, DualRailInferenceResult
from repro.sim.monitors import ForbiddenStateMonitor, MonotonicityMonitor, ProtocolViolation
from repro.sim.power import PowerAccountant, PowerReport
from repro.sim.simulator import GateLevelSimulator
from repro.synth.flow import SynthesisResult, synthesize
from repro.tm.inference import InferenceModel
from repro.tm.machine import TsetlinMachine
from repro.tm.datasets import noisy_xor


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------


@dataclass
class Workload:
    """A hardware workload: clause configuration plus a stream of operands."""

    config: DatapathConfig
    exclude: np.ndarray
    feature_vectors: np.ndarray
    model: InferenceModel
    description: str = ""

    @property
    def num_operands(self) -> int:
        """Number of feature vectors in the stream."""
        return int(self.feature_vectors.shape[0])


def default_workload(
    num_features: int = 4,
    clauses_per_polarity: int = 8,
    num_operands: int = 40,
    epochs: int = 25,
    seed: int = 2021,
    latch_inputs: bool = True,
) -> Workload:
    """Train a Tsetlin machine on noisy-XOR and package it as a hardware workload.

    The trained machine's exclude actions configure the clauses; the test
    split of the dataset provides the operand stream (re-sampled with
    replacement to reach *num_operands*).
    """
    config = DatapathConfig(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        latch_inputs=latch_inputs,
    )
    dataset = noisy_xor(num_samples=400, num_features=num_features, noise=0.05, seed=seed)
    machine = TsetlinMachine(
        num_features=num_features,
        num_clauses=config.num_clauses,
        threshold=clauses_per_polarity,
        s=3.0,
        seed=seed,
    )
    machine.fit(dataset.train_x, dataset.train_y, epochs=epochs)
    model = InferenceModel.from_machine(machine)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, dataset.test_x.shape[0], size=num_operands)
    feature_vectors = dataset.test_x[indices]
    return Workload(
        config=config,
        exclude=model.exclude,
        feature_vectors=feature_vectors,
        model=model,
        description=(
            f"noisy-XOR Tsetlin machine, {num_features} features, "
            f"{clauses_per_polarity} clauses per polarity, {num_operands} operands"
        ),
    )


def random_workload(
    num_features: int = 4,
    clauses_per_polarity: int = 8,
    num_operands: int = 40,
    include_probability: float = 0.25,
    seed: int = 7,
    latch_inputs: bool = True,
) -> Workload:
    """A workload with random clause composition (no training required)."""
    config = DatapathConfig(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        latch_inputs=latch_inputs,
    )
    model = InferenceModel.random(
        config.num_clauses, num_features, include_probability=include_probability, seed=seed
    )
    rng = np.random.default_rng(seed)
    feature_vectors = (rng.random((num_operands, num_features)) < 0.5).astype(np.int8)
    return Workload(
        config=config,
        exclude=model.exclude,
        feature_vectors=feature_vectors,
        model=model,
        description="random clause composition workload",
    )


def truncate_workload(workload: Workload, num_operands: Optional[int]) -> Workload:
    """A view of *workload* restricted to its first *num_operands* operands.

    ``None`` or a count >= the stream length returns *workload* unchanged,
    so callers can pass their ``operands_per_point``-style argument straight
    through.
    """
    if num_operands is None or num_operands >= workload.num_operands:
        return workload
    return replace(workload, feature_vectors=workload.feature_vectors[:num_operands])


def resolve_workload(workload: Optional[Workload], **defaults) -> Workload:
    """Return *workload*, or :func:`default_workload` built with *defaults*."""
    if workload is not None:
        return workload
    return default_workload(**defaults)


def resolve_library(library: Optional[CellLibrary], name: Optional[str] = None) -> CellLibrary:
    """Return *library*, or the named default (FULL DIFFUSION when unnamed).

    Parameters
    ----------
    name:
        Key into :func:`repro.circuits.library.default_libraries` used when
        *library* is ``None``; ``None`` selects the subthreshold-capable
        FULL DIFFUSION library (the permissive default: it works at every
        supply point the sweeps visit).
    """
    if library is not None:
        return library
    if name is None:
        return full_diffusion_library()
    libraries = default_libraries()
    try:
        return libraries[name]
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; expected one of {sorted(libraries)}"
        )


def resolve_libraries(
    libraries: Optional[Sequence[CellLibrary]],
) -> List[CellLibrary]:
    """Return *libraries* as a list, defaulting to both Table-I libraries."""
    if libraries is not None:
        return list(libraries)
    return list(default_libraries().values())


# --------------------------------------------------------------------------
# Dual-rail build → map → grace pipeline
# --------------------------------------------------------------------------


def rebind_interface(circuit: DualRailCircuit, synthesis: SynthesisResult) -> DualRailCircuit:
    """Re-bind the dual-rail interface onto the technology-mapped netlist."""
    return DualRailCircuit(
        netlist=synthesis.netlist,
        inputs=circuit.inputs,
        outputs=circuit.outputs,
        one_of_n_outputs=circuit.one_of_n_outputs,
        done_net=circuit.done_net,
        metadata=dict(circuit.metadata),
    )


@dataclass
class MappedDualRail:
    """A dual-rail datapath built, technology-mapped and timing-analysed.

    The product of :func:`build_mapped_dual_rail`: everything a measurement
    needs before any simulation runs — the construction half that used to be
    duplicated across ``measure_dual_rail``, the latency-distribution chunk
    worker and (now) the DSE evaluator.
    """

    config: DatapathConfig
    library: CellLibrary
    vdd: Optional[float]
    datapath: DualRailDatapath
    synthesis: SynthesisResult
    circuit: DualRailCircuit
    grace: GracePeriod


def build_mapped_dual_rail(
    config: DatapathConfig,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> MappedDualRail:
    """Build the dual-rail datapath for *config*, map it, compute its grace.

    This is the one construction path for every dual-rail measurement:
    datapath assembly, technology mapping with the unate-cell check
    (Requirement 2), interface re-binding onto the mapped netlist, and the
    reduced-CD grace period at the measurement supply.
    """
    with _trace.span("measure.map", library=library.name):
        datapath = DualRailDatapath(config, library=library)
        synthesis = synthesize(
            datapath.circuit.netlist, library, vdd=vdd, clocked=False,
            enforce_unate=True,
        )
        circuit = rebind_interface(datapath.circuit, synthesis)
        grace = compute_grace_period(circuit, library, vdd=vdd)
    return MappedDualRail(
        config=config,
        library=library,
        vdd=vdd,
        datapath=datapath,
        synthesis=synthesis,
        circuit=circuit,
        grace=grace,
    )


@dataclass
class DualRailTestbench:
    """A ready-to-run simulator + handshake environment for a mapped design."""

    simulator: GateLevelSimulator
    environment: DualRailEnvironment
    monotonicity: Optional[MonotonicityMonitor]
    forbidden: Optional[ForbiddenStateMonitor]

    @property
    def monitors_ok(self) -> bool:
        """``True`` when every attached monitor is still clean."""
        mono = self.monotonicity.ok if self.monotonicity is not None else True
        forb = self.forbidden.ok if self.forbidden is not None else True
        return mono and forb


def make_dual_rail_environment(
    mapped: MappedDualRail,
    check_monotonic: bool = False,
    check_forbidden: bool = False,
) -> DualRailTestbench:
    """Construct (and reset) the event-driven testbench for *mapped*.

    Monitors are opt-in: the fast sweep paths skip them, the Table-I
    measurement enables both (the paper's hazard-freedom claim).
    """
    simulator = GateLevelSimulator(mapped.circuit.netlist, mapped.library, vdd=mapped.vdd)
    monitor = MonotonicityMonitor() if check_monotonic else None
    if monitor is not None:
        simulator.add_monitor(monitor)
    forbidden = None
    if check_forbidden:
        forbidden = ForbiddenStateMonitor(simulator, mapped.circuit.outputs)
        simulator.add_monitor(forbidden)
    environment = DualRailEnvironment(
        mapped.circuit, simulator, grace_period=mapped.grace.td,
        monotonicity_monitor=monitor,
    )
    environment.reset()
    return DualRailTestbench(
        simulator=simulator,
        environment=environment,
        monotonicity=monitor,
        forbidden=forbidden,
    )


# --------------------------------------------------------------------------
# Vectorized functional evaluation (batch / bitpack backends)
# --------------------------------------------------------------------------

#: Backends that implement the vectorized ``run_arrays`` plane interface
#: :func:`batch_functional_pass` is built on (``"event"`` does not).
FUNCTIONAL_BACKENDS = ("batch", "bitpack")


@dataclass
class FunctionalSweep:
    """Functional-only result of pushing a workload through a backend.

    Produced by :func:`batch_functional_pass`; carries everything Table-I
    style correctness accounting and batch energy estimation need, but no
    timing (use the event-driven environment when latency matters).
    """

    library: str
    backend: str
    samples: int
    verdicts: List[str]
    decisions: List[int]
    correctness: float
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)
    energy_per_inference_fj: float = 0.0


def workload_input_planes(
    circuit: DualRailCircuit, datapath: DualRailDatapath, workload: Workload
) -> Dict[str, np.ndarray]:
    """Per-rail input arrays for the whole operand stream of *workload*.

    Feature inputs vary per sample (column *m* of the feature matrix);
    exclude inputs are constant across the stream, so they broadcast from
    the first operand's assignment.  That broadcast assumption is checked
    against the last operand — if any non-feature input ever varied over the
    stream, this raises instead of silently computing wrong batch verdicts.
    """
    features = np.asarray(workload.feature_vectors, dtype=np.uint8)
    samples = features.shape[0]
    if samples == 0:
        # Zero-length planes give a well-formed empty sweep downstream.
        empty = np.zeros(0, dtype=np.uint8)
        return {rail: empty for sig in circuit.inputs for rail in sig.rails()}
    constants = datapath.operand_assignments(workload.feature_vectors[0], workload.exclude)
    if samples > 1:
        check = datapath.operand_assignments(workload.feature_vectors[-1], workload.exclude)
        feature_names = {
            feature_input_name(m) for m in range(workload.config.num_features)
        }
        varying = [name for name, value in constants.items()
                   if name not in feature_names and check[name] != value]
        if varying:
            raise ValueError(
                f"non-feature inputs vary across the operand stream "
                f"(e.g. {varying[:3]}); the batch plane broadcast would be wrong"
            )
    feature_index = {
        feature_input_name(m): m for m in range(workload.config.num_features)
    }
    planes: Dict[str, np.ndarray] = {}
    for sig in circuit.inputs:
        if sig.name in feature_index:
            bits = features[:, feature_index[sig.name]]
        else:
            bits = np.full(samples, int(constants[sig.name]), dtype=np.uint8)
        # encode_bit: the pos rail carries the bit, the neg rail its complement.
        planes[sig.pos] = bits
        planes[sig.neg] = (1 - bits).astype(np.uint8)
    return planes


def spacer_assignments(circuit: DualRailCircuit) -> Dict[str, int]:
    """The all-spacer input word (the rest state activity is counted from)."""
    spacer: Dict[str, int] = {}
    for sig in circuit.inputs:
        value = sig.polarity.spacer_rail_value
        spacer[sig.pos] = value
        spacer[sig.neg] = value
    return spacer


def verdict_signal(circuit: DualRailCircuit) -> OneOfNSignal:
    """The 1-of-3 verdict output port of a datapath circuit."""
    return next(
        sig for sig in circuit.one_of_n_outputs if tuple(sig.labels) == VERDICT_LABELS
    )


def decode_verdict_planes(
    result: Union[ArrayBatchResult, PackedBatchResult], sig: OneOfNSignal
) -> List[str]:
    """Vectorized 1-of-n decode of the verdict rails over a whole batch.

    Works on any result exposing the ``values[net] -> uint8 plane``
    interface — the batch backend's :class:`ArrayBatchResult` and the
    bitpack backend's :class:`PackedBatchResult` (which unpacks only the
    rails touched here).
    """
    rails = np.stack([result.values[rail] for rail in sig.rails])
    if np.any(rails > 1):
        raise ValueError(f"1-of-n output {sig.name!r} carries unknown values")
    active = rails != sig.polarity.spacer_rail_value
    active_counts = active.sum(axis=0)
    if np.any(active_counts != 1):
        bad = int(np.argmax(active_counts != 1))
        raise ValueError(
            f"invalid 1-of-{len(sig.rails)} codeword for sample {bad}: "
            f"{[int(v) for v in rails[:, bad]]}"
        )
    indices = active.argmax(axis=0)
    return [sig.labels[int(i)] for i in indices]


def batch_functional_pass(
    datapath: DualRailDatapath,
    circuit: DualRailCircuit,
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
    with_activity: bool = True,
    backend: str = "batch",
    program_cache: Optional[str] = None,
) -> FunctionalSweep:
    """Run the whole operand stream through a vectorized backend at once.

    ``with_activity=False`` skips the spacer-baseline evaluation and energy
    pricing — the right mode when only verdicts are wanted (e.g. when the
    event simulation is computing power anyway).  *backend* selects any of
    :data:`FUNCTIONAL_BACKENDS` (``"batch"`` or ``"bitpack"``); both settle
    to identical values net-for-net and count identical activity, so the
    choice only moves wall-clock time.  *program_cache* names an on-disk
    :class:`~repro.sim.program_cache.ProgramCache` directory: the compiled
    program is loaded from it when present and stored into it otherwise.
    """
    if backend not in FUNCTIONAL_BACKENDS:
        raise ValueError(
            f"unknown functional backend {backend!r}; expected one of {FUNCTIONAL_BACKENDS}"
        )
    with _trace.span("measure.functional", backend=backend) as sweep_span:
        engine = get_backend(
            backend, circuit.netlist, library, vdd=vdd, cache=program_cache
        )
        planes = workload_input_planes(circuit, datapath, workload)
        baseline = spacer_assignments(circuit) if with_activity else None
        result = engine.run_arrays(planes, baseline=baseline)
        verdicts = decode_verdict_planes(result, verdict_signal(circuit))
        decisions = [DualRailDatapath.decision_from_verdict(v) for v in verdicts]
        golden = [workload.model.decision(f) for f in workload.feature_vectors]
        correct = sum(1 for d, g in zip(decisions, golden) if d == g)
        if with_activity:
            accountant = PowerAccountant(circuit.netlist, library, vdd=vdd)
            energy = accountant.energy_from_activity(result.activity_by_cell_type)
        else:
            energy = None
        samples = len(verdicts)
        sweep_span.add(samples=samples)
    return FunctionalSweep(
        library=library.name,
        backend=backend,
        samples=samples,
        verdicts=verdicts,
        decisions=decisions,
        correctness=correct / samples if samples else 0.0,
        activity_by_cell_type=result.activity_by_cell_type,
        energy_per_inference_fj=(
            energy.total_fj / samples if energy is not None and samples else 0.0
        ),
    )


# --------------------------------------------------------------------------
# Vectorized timing (the data-dependent timing engine)
# --------------------------------------------------------------------------

#: Backends the experiment harnesses accept as a *timing* source.  ``"event"``
#: is the reference (per-operand event-driven handshake cycles); ``"batch"``
#: and ``"bitpack"`` time the whole operand stream through the vectorized
#: :mod:`repro.sim.backends.timed` engine — equivalent per sample (the
#: equivalence suite pins it against the event oracle) and one to three
#: orders of magnitude faster.
TIMING_BACKENDS = ("event", "batch", "bitpack")


def check_timing_backend(timing_backend: str) -> None:
    """Raise :class:`ValueError` for timing-backend names no harness accepts."""
    if timing_backend not in TIMING_BACKENDS:
        raise ValueError(
            f"unknown timing backend {timing_backend!r}; "
            f"expected one of {TIMING_BACKENDS}"
        )


@dataclass
class TimedDualRailRun:
    """A whole operand stream timed through the vectorized engine.

    Attributes
    ----------
    results:
        One :class:`~repro.sim.handshake.DualRailInferenceResult` per
        operand, field-compatible with the event-driven environment's
        results (latency summaries, histograms and throughput all work
        unchanged).  Absolute timestamps (``t_start``, ``done_rise``,
        ``done_fall``) start from 0 at the first operand, whereas the event
        environment's origin is its initial reset settle; all *relative*
        quantities agree with the event oracle to float re-association
        accuracy.
    timed:
        The raw :class:`~repro.sim.backends.timed.TimedBatchResult` (per-net
        arrival planes, per-sample energy, activity counts).
    window_ps:
        Total duration of the run — the sum of every operand's full
        handshake cycle including the grace period, i.e. exactly the
        measurement window the event-driven power accounting uses.
    """

    results: List[DualRailInferenceResult]
    timed: TimedBatchResult
    window_ps: float


def _logic_value(plane: np.ndarray, sample: int) -> Optional[int]:
    """Decode one plane entry back into the scalar LogicValue domain."""
    value = int(plane[sample])
    return None if value == 2 else value


def _check_output_protocol(circuit: DualRailCircuit, timed: TimedBatchResult) -> None:
    """Enforce the event environment's output-state obligations on a timed run.

    :class:`~repro.sim.handshake.DualRailEnvironment` raises
    :class:`~repro.sim.monitors.ProtocolViolation` when an output port fails
    to reach a valid codeword after valid inputs, or fails to return to
    spacer — states the reduced-CD ``done`` signal does not necessarily
    observe.  The timed path checks the same obligations vectorized: every
    dual-rail pair must settle to a valid codeword (rails known and
    complementary) in the valid phase and to spacer at rest; every 1-of-n
    port must assert exactly one rail per sample and rest all-spacer.
    """
    for sig in circuit.outputs:
        pos, neg = timed.values[sig.pos], timed.values[sig.neg]
        bad = (pos > 1) | (neg > 1) | (pos == neg)
        if np.any(bad):
            k = int(np.argmax(bad))
            raise ProtocolViolation(
                f"output {sig.name!r} never reached the valid state for "
                f"sample {k} (rails are "
                f"({_logic_value(pos, k)}, {_logic_value(neg, k)}))"
            )
        spacer = sig.polarity.spacer_rail_value
        if (timed.spacer_values[sig.pos] != spacer
                or timed.spacer_values[sig.neg] != spacer):
            raise ProtocolViolation(
                f"output {sig.name!r} never reached the spacer state at rest"
            )
    for sig in circuit.one_of_n_outputs:
        rails = np.stack([timed.values[r] for r in sig.rails])
        if np.any(rails > 1):
            raise ProtocolViolation(
                f"1-of-n output {sig.name!r} carries unknown values"
            )
        active = (rails != sig.polarity.spacer_rail_value).sum(axis=0)
        if np.any(active != 1):
            k = int(np.argmax(active != 1))
            raise ProtocolViolation(
                f"1-of-n output {sig.name!r} never reached the valid state "
                f"for sample {k} (rails {[int(v) for v in rails[:, k]]})"
            )
        idle = sig.polarity.spacer_rail_value
        if any(timed.spacer_values[r] != idle for r in sig.rails):
            raise ProtocolViolation(
                f"1-of-n output {sig.name!r} never reached the spacer state at rest"
            )


def timed_dual_rail_run(
    mapped: MappedDualRail,
    workload: Workload,
    timing_backend: str = "batch",
    program_cache: Optional[str] = None,
) -> TimedDualRailRun:
    """Time every operand of *workload* in one vectorized pass.

    The vectorized counterpart of driving
    :func:`make_dual_rail_environment` over the stream: per-operand
    spacer→valid latency, reset times, internal-reset times, done edges and
    switching energy, computed by the
    :mod:`~repro.sim.backends.timed` engine of the chosen backend
    (``"batch"`` or ``"bitpack"``).  The same protocol obligations are
    enforced, mirroring the event environment: every output port must reach
    a valid codeword for every operand and rest at spacer, and ``done``
    must assert, otherwise
    :class:`~repro.sim.monitors.ProtocolViolation` is raised.
    """
    if timing_backend not in TIMING_BACKENDS or timing_backend == "event":
        raise ValueError(
            f"timed_dual_rail_run needs a vectorized timing backend "
            f"({[b for b in TIMING_BACKENDS if b != 'event']}), got {timing_backend!r}"
        )
    circuit, datapath = mapped.circuit, mapped.datapath
    with _trace.span("measure.timed", backend=timing_backend):
        engine = get_backend(
            timing_backend,
            circuit.netlist,
            mapped.library,
            vdd=mapped.vdd,
            cache=program_cache,
        )
        planes = workload_input_planes(circuit, datapath, workload)
        timed = engine.run_timed(planes, spacer_assignments(circuit))
        _check_output_protocol(circuit, timed)

    rails = circuit.all_output_rails()
    t_s_to_v = timed.max_arrival(rails, "valid")
    t_v_to_s = timed.max_arrival(rails, "reset")
    settle_valid = timed.settle_time("valid")
    internal_reset = timed.settle_time("reset")
    done = circuit.done_net
    if done is not None:
        if np.any(timed.values[done] != 1):
            raise ProtocolViolation(
                "completion (done) never asserted after valid inputs"
            )
        done_rise = timed.arrival_of(done, "valid")
        done_fall = timed.arrival_of(done, "reset")
    else:
        done_rise = done_fall = None

    grace = mapped.grace.td
    results: List[DualRailInferenceResult] = []
    t_start = 0.0
    for k in range(timed.samples):
        operand = datapath.operand_assignments(
            workload.feature_vectors[k], workload.exclude
        )
        outputs: Dict[str, Optional[int]] = {}
        for sig in circuit.outputs:
            outputs[sig.name] = decode_pair(
                _logic_value(timed.values[sig.pos], k),
                _logic_value(timed.values[sig.neg], k),
                sig.polarity,
            )
        one_of_n: Dict[str, Optional[int]] = {}
        for sig in circuit.one_of_n_outputs:
            one_of_n[sig.name] = decode_one_of_n(
                [_logic_value(timed.values[r], k) for r in sig.rails], sig.polarity
            )
        t_spacer = t_start + float(settle_valid[k])
        # The environment may apply the next operand only once the outputs
        # have reset, the grace period td has elapsed, done has fallen and
        # (in practice, because it settles fully) every internal net has
        # reset — the max below reproduces its ready-time rule exactly.
        reset_span = max(
            grace,
            float(t_v_to_s[k]),
            float(internal_reset[k]),
            float(done_fall[k]) if done_fall is not None else 0.0,
        )
        results.append(
            DualRailInferenceResult(
                operand=dict(operand),
                outputs=outputs,
                one_of_n_outputs=one_of_n,
                t_start=t_start,
                t_s_to_v=float(t_s_to_v[k]),
                t_v_to_s=float(t_v_to_s[k]),
                t_internal_reset=float(internal_reset[k]),
                done_rise=(
                    t_start + float(done_rise[k]) if done_rise is not None else None
                ),
                done_fall=(
                    t_spacer + float(done_fall[k]) if done_fall is not None else None
                ),
            )
        )
        t_start = t_spacer + reset_span
    return TimedDualRailRun(results=results, timed=timed, window_ps=t_start)


def timed_power_report(mapped: MappedDualRail, run: TimedDualRailRun) -> PowerReport:
    """Average power of a timed run — same accounting as the event window.

    Dynamic energy is the timed engine's per-sample switching energy (two
    transitions per toggling cell per handshake, priced through the
    library's per-cell energies at the measurement supply); the window is
    the run's total duration including grace periods; leakage comes from
    the same :class:`~repro.sim.power.PowerAccountant` the event path uses.
    For glitch-free (monotonic) netlists these are exactly the transitions
    the event simulator logs, so the report matches the event-driven one to
    float accuracy.
    """
    if run.window_ps <= 0:
        raise ValueError("timed run has an empty measurement window")
    accountant = PowerAccountant(mapped.circuit.netlist, mapped.library, vdd=mapped.vdd)
    total_fj = float(run.timed.energy_per_sample_fj.sum())
    operations = len(run.results)
    dynamic_uw = total_fj / run.window_ps * 1e3
    leakage_nw = accountant.leakage_nw()
    return PowerReport(
        dynamic_uw=dynamic_uw,
        leakage_nw=leakage_nw,
        total_uw=dynamic_uw + leakage_nw * 1e-3,
        energy_per_operation_fj=total_fj / operations if operations else 0.0,
        operations=operations,
        window_ps=run.window_ps,
    )
