"""Shared workload / library / measurement plumbing for every harness.

Before the design-space-exploration subsystem existed, each experiment
harness in :mod:`repro.analysis.experiments` repeated the same setup by
hand: pick a default workload, pick default libraries, build the dual-rail
datapath, synthesize it, compute the grace period, wire up a simulator and
handshake environment.  This module is the single home for that plumbing;
the Table-I / Figure-3 / latency-distribution harnesses and the
:mod:`repro.explore` evaluator all consume the same helpers, so a
measurement made by the DSE sweep is — by construction — the same
measurement the paper-reproduction harnesses make.

Contents
--------
* :class:`Workload` plus the :func:`default_workload` / :func:`random_workload`
  constructors and :func:`truncate_workload` (prefix sub-streams);
* :func:`resolve_workload` / :func:`resolve_library` /
  :func:`resolve_libraries` — argument-defaulting used by every harness;
* :class:`MappedDualRail` / :func:`build_mapped_dual_rail` — the
  build → map → grace-period pipeline shared by all dual-rail measurements;
* :class:`DualRailTestbench` / :func:`make_dual_rail_environment` — the
  simulator + handshake environment (+ optional monitors) construction;
* :class:`FunctionalSweep` / :func:`batch_functional_pass` and its plane
  helpers — the vectorized functional evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.library import CellLibrary, default_libraries, full_diffusion_library
from repro.core.completion import GracePeriod, compute_grace_period
from repro.core.dual_rail import DualRailCircuit, OneOfNSignal
from repro.datapath.datapath import (
    DatapathConfig,
    DualRailDatapath,
    VERDICT_LABELS,
    feature_input_name,
)
from repro.sim.backends import ArrayBatchResult, PackedBatchResult, get_backend
from repro.sim.handshake import DualRailEnvironment
from repro.sim.monitors import ForbiddenStateMonitor, MonotonicityMonitor
from repro.sim.power import PowerAccountant
from repro.sim.simulator import GateLevelSimulator
from repro.synth.flow import SynthesisResult, synthesize
from repro.tm.inference import InferenceModel
from repro.tm.machine import TsetlinMachine
from repro.tm.datasets import noisy_xor


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------


@dataclass
class Workload:
    """A hardware workload: clause configuration plus a stream of operands."""

    config: DatapathConfig
    exclude: np.ndarray
    feature_vectors: np.ndarray
    model: InferenceModel
    description: str = ""

    @property
    def num_operands(self) -> int:
        """Number of feature vectors in the stream."""
        return int(self.feature_vectors.shape[0])


def default_workload(
    num_features: int = 4,
    clauses_per_polarity: int = 8,
    num_operands: int = 40,
    epochs: int = 25,
    seed: int = 2021,
    latch_inputs: bool = True,
) -> Workload:
    """Train a Tsetlin machine on noisy-XOR and package it as a hardware workload.

    The trained machine's exclude actions configure the clauses; the test
    split of the dataset provides the operand stream (re-sampled with
    replacement to reach *num_operands*).
    """
    config = DatapathConfig(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        latch_inputs=latch_inputs,
    )
    dataset = noisy_xor(num_samples=400, num_features=num_features, noise=0.05, seed=seed)
    machine = TsetlinMachine(
        num_features=num_features,
        num_clauses=config.num_clauses,
        threshold=clauses_per_polarity,
        s=3.0,
        seed=seed,
    )
    machine.fit(dataset.train_x, dataset.train_y, epochs=epochs)
    model = InferenceModel.from_machine(machine)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, dataset.test_x.shape[0], size=num_operands)
    feature_vectors = dataset.test_x[indices]
    return Workload(
        config=config,
        exclude=model.exclude,
        feature_vectors=feature_vectors,
        model=model,
        description=(
            f"noisy-XOR Tsetlin machine, {num_features} features, "
            f"{clauses_per_polarity} clauses per polarity, {num_operands} operands"
        ),
    )


def random_workload(
    num_features: int = 4,
    clauses_per_polarity: int = 8,
    num_operands: int = 40,
    include_probability: float = 0.25,
    seed: int = 7,
    latch_inputs: bool = True,
) -> Workload:
    """A workload with random clause composition (no training required)."""
    config = DatapathConfig(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        latch_inputs=latch_inputs,
    )
    model = InferenceModel.random(
        config.num_clauses, num_features, include_probability=include_probability, seed=seed
    )
    rng = np.random.default_rng(seed)
    feature_vectors = (rng.random((num_operands, num_features)) < 0.5).astype(np.int8)
    return Workload(
        config=config,
        exclude=model.exclude,
        feature_vectors=feature_vectors,
        model=model,
        description="random clause composition workload",
    )


def truncate_workload(workload: Workload, num_operands: Optional[int]) -> Workload:
    """A view of *workload* restricted to its first *num_operands* operands.

    ``None`` or a count >= the stream length returns *workload* unchanged,
    so callers can pass their ``operands_per_point``-style argument straight
    through.
    """
    if num_operands is None or num_operands >= workload.num_operands:
        return workload
    return replace(workload, feature_vectors=workload.feature_vectors[:num_operands])


def resolve_workload(workload: Optional[Workload], **defaults) -> Workload:
    """Return *workload*, or :func:`default_workload` built with *defaults*."""
    if workload is not None:
        return workload
    return default_workload(**defaults)


def resolve_library(library: Optional[CellLibrary], name: Optional[str] = None) -> CellLibrary:
    """Return *library*, or the named default (FULL DIFFUSION when unnamed).

    Parameters
    ----------
    name:
        Key into :func:`repro.circuits.library.default_libraries` used when
        *library* is ``None``; ``None`` selects the subthreshold-capable
        FULL DIFFUSION library (the permissive default: it works at every
        supply point the sweeps visit).
    """
    if library is not None:
        return library
    if name is None:
        return full_diffusion_library()
    libraries = default_libraries()
    try:
        return libraries[name]
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; expected one of {sorted(libraries)}"
        )


def resolve_libraries(
    libraries: Optional[Sequence[CellLibrary]],
) -> List[CellLibrary]:
    """Return *libraries* as a list, defaulting to both Table-I libraries."""
    if libraries is not None:
        return list(libraries)
    return list(default_libraries().values())


# --------------------------------------------------------------------------
# Dual-rail build → map → grace pipeline
# --------------------------------------------------------------------------


def rebind_interface(circuit: DualRailCircuit, synthesis: SynthesisResult) -> DualRailCircuit:
    """Re-bind the dual-rail interface onto the technology-mapped netlist."""
    return DualRailCircuit(
        netlist=synthesis.netlist,
        inputs=circuit.inputs,
        outputs=circuit.outputs,
        one_of_n_outputs=circuit.one_of_n_outputs,
        done_net=circuit.done_net,
        metadata=dict(circuit.metadata),
    )


@dataclass
class MappedDualRail:
    """A dual-rail datapath built, technology-mapped and timing-analysed.

    The product of :func:`build_mapped_dual_rail`: everything a measurement
    needs before any simulation runs — the construction half that used to be
    duplicated across ``measure_dual_rail``, the latency-distribution chunk
    worker and (now) the DSE evaluator.
    """

    config: DatapathConfig
    library: CellLibrary
    vdd: Optional[float]
    datapath: DualRailDatapath
    synthesis: SynthesisResult
    circuit: DualRailCircuit
    grace: GracePeriod


def build_mapped_dual_rail(
    config: DatapathConfig,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> MappedDualRail:
    """Build the dual-rail datapath for *config*, map it, compute its grace.

    This is the one construction path for every dual-rail measurement:
    datapath assembly, technology mapping with the unate-cell check
    (Requirement 2), interface re-binding onto the mapped netlist, and the
    reduced-CD grace period at the measurement supply.
    """
    datapath = DualRailDatapath(config, library=library)
    synthesis = synthesize(
        datapath.circuit.netlist, library, vdd=vdd, clocked=False, enforce_unate=True
    )
    circuit = rebind_interface(datapath.circuit, synthesis)
    grace = compute_grace_period(circuit, library, vdd=vdd)
    return MappedDualRail(
        config=config,
        library=library,
        vdd=vdd,
        datapath=datapath,
        synthesis=synthesis,
        circuit=circuit,
        grace=grace,
    )


@dataclass
class DualRailTestbench:
    """A ready-to-run simulator + handshake environment for a mapped design."""

    simulator: GateLevelSimulator
    environment: DualRailEnvironment
    monotonicity: Optional[MonotonicityMonitor]
    forbidden: Optional[ForbiddenStateMonitor]

    @property
    def monitors_ok(self) -> bool:
        """``True`` when every attached monitor is still clean."""
        mono = self.monotonicity.ok if self.monotonicity is not None else True
        forb = self.forbidden.ok if self.forbidden is not None else True
        return mono and forb


def make_dual_rail_environment(
    mapped: MappedDualRail,
    check_monotonic: bool = False,
    check_forbidden: bool = False,
) -> DualRailTestbench:
    """Construct (and reset) the event-driven testbench for *mapped*.

    Monitors are opt-in: the fast sweep paths skip them, the Table-I
    measurement enables both (the paper's hazard-freedom claim).
    """
    simulator = GateLevelSimulator(mapped.circuit.netlist, mapped.library, vdd=mapped.vdd)
    monitor = MonotonicityMonitor() if check_monotonic else None
    if monitor is not None:
        simulator.add_monitor(monitor)
    forbidden = None
    if check_forbidden:
        forbidden = ForbiddenStateMonitor(simulator, mapped.circuit.outputs)
        simulator.add_monitor(forbidden)
    environment = DualRailEnvironment(
        mapped.circuit, simulator, grace_period=mapped.grace.td,
        monotonicity_monitor=monitor,
    )
    environment.reset()
    return DualRailTestbench(
        simulator=simulator,
        environment=environment,
        monotonicity=monitor,
        forbidden=forbidden,
    )


# --------------------------------------------------------------------------
# Vectorized functional evaluation (batch / bitpack backends)
# --------------------------------------------------------------------------

#: Backends that implement the vectorized ``run_arrays`` plane interface
#: :func:`batch_functional_pass` is built on (``"event"`` does not).
FUNCTIONAL_BACKENDS = ("batch", "bitpack")


@dataclass
class FunctionalSweep:
    """Functional-only result of pushing a workload through a backend.

    Produced by :func:`batch_functional_pass`; carries everything Table-I
    style correctness accounting and batch energy estimation need, but no
    timing (use the event-driven environment when latency matters).
    """

    library: str
    backend: str
    samples: int
    verdicts: List[str]
    decisions: List[int]
    correctness: float
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)
    energy_per_inference_fj: float = 0.0


def workload_input_planes(
    circuit: DualRailCircuit, datapath: DualRailDatapath, workload: Workload
) -> Dict[str, np.ndarray]:
    """Per-rail input arrays for the whole operand stream of *workload*.

    Feature inputs vary per sample (column *m* of the feature matrix);
    exclude inputs are constant across the stream, so they broadcast from
    the first operand's assignment.  That broadcast assumption is checked
    against the last operand — if any non-feature input ever varied over the
    stream, this raises instead of silently computing wrong batch verdicts.
    """
    features = np.asarray(workload.feature_vectors, dtype=np.uint8)
    samples = features.shape[0]
    if samples == 0:
        # Zero-length planes give a well-formed empty sweep downstream.
        empty = np.zeros(0, dtype=np.uint8)
        return {rail: empty for sig in circuit.inputs for rail in sig.rails()}
    constants = datapath.operand_assignments(workload.feature_vectors[0], workload.exclude)
    if samples > 1:
        check = datapath.operand_assignments(workload.feature_vectors[-1], workload.exclude)
        feature_names = {
            feature_input_name(m) for m in range(workload.config.num_features)
        }
        varying = [name for name, value in constants.items()
                   if name not in feature_names and check[name] != value]
        if varying:
            raise ValueError(
                f"non-feature inputs vary across the operand stream "
                f"(e.g. {varying[:3]}); the batch plane broadcast would be wrong"
            )
    feature_index = {
        feature_input_name(m): m for m in range(workload.config.num_features)
    }
    planes: Dict[str, np.ndarray] = {}
    for sig in circuit.inputs:
        if sig.name in feature_index:
            bits = features[:, feature_index[sig.name]]
        else:
            bits = np.full(samples, int(constants[sig.name]), dtype=np.uint8)
        # encode_bit: the pos rail carries the bit, the neg rail its complement.
        planes[sig.pos] = bits
        planes[sig.neg] = (1 - bits).astype(np.uint8)
    return planes


def spacer_assignments(circuit: DualRailCircuit) -> Dict[str, int]:
    """The all-spacer input word (the rest state activity is counted from)."""
    spacer: Dict[str, int] = {}
    for sig in circuit.inputs:
        value = sig.polarity.spacer_rail_value
        spacer[sig.pos] = value
        spacer[sig.neg] = value
    return spacer


def decode_verdict_planes(
    result: Union[ArrayBatchResult, PackedBatchResult], sig: OneOfNSignal
) -> List[str]:
    """Vectorized 1-of-n decode of the verdict rails over a whole batch.

    Works on any result exposing the ``values[net] -> uint8 plane``
    interface — the batch backend's :class:`ArrayBatchResult` and the
    bitpack backend's :class:`PackedBatchResult` (which unpacks only the
    rails touched here).
    """
    rails = np.stack([result.values[rail] for rail in sig.rails])
    if np.any(rails > 1):
        raise ValueError(f"1-of-n output {sig.name!r} carries unknown values")
    active = rails != sig.polarity.spacer_rail_value
    active_counts = active.sum(axis=0)
    if np.any(active_counts != 1):
        bad = int(np.argmax(active_counts != 1))
        raise ValueError(
            f"invalid 1-of-{len(sig.rails)} codeword for sample {bad}: "
            f"{[int(v) for v in rails[:, bad]]}"
        )
    indices = active.argmax(axis=0)
    return [sig.labels[int(i)] for i in indices]


def batch_functional_pass(
    datapath: DualRailDatapath,
    circuit: DualRailCircuit,
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
    with_activity: bool = True,
    backend: str = "batch",
) -> FunctionalSweep:
    """Run the whole operand stream through a vectorized backend at once.

    ``with_activity=False`` skips the spacer-baseline evaluation and energy
    pricing — the right mode when only verdicts are wanted (e.g. when the
    event simulation is computing power anyway).  *backend* selects any of
    :data:`FUNCTIONAL_BACKENDS` (``"batch"`` or ``"bitpack"``); both settle
    to identical values net-for-net and count identical activity, so the
    choice only moves wall-clock time.
    """
    if backend not in FUNCTIONAL_BACKENDS:
        raise ValueError(
            f"unknown functional backend {backend!r}; expected one of {FUNCTIONAL_BACKENDS}"
        )
    engine = get_backend(backend, circuit.netlist, library, vdd=vdd)
    planes = workload_input_planes(circuit, datapath, workload)
    baseline = spacer_assignments(circuit) if with_activity else None
    result = engine.run_arrays(planes, baseline=baseline)
    verdict_sig = next(
        sig for sig in circuit.one_of_n_outputs if tuple(sig.labels) == VERDICT_LABELS
    )
    verdicts = decode_verdict_planes(result, verdict_sig)
    decisions = [DualRailDatapath.decision_from_verdict(v) for v in verdicts]
    golden = [workload.model.decision(f) for f in workload.feature_vectors]
    correct = sum(1 for d, g in zip(decisions, golden) if d == g)
    if with_activity:
        accountant = PowerAccountant(circuit.netlist, library, vdd=vdd)
        energy = accountant.energy_from_activity(result.activity_by_cell_type)
    else:
        energy = None
    samples = len(verdicts)
    return FunctionalSweep(
        library=library.name,
        backend=backend,
        samples=samples,
        verdicts=verdicts,
        decisions=decisions,
        correctness=correct / samples if samples else 0.0,
        activity_by_cell_type=result.activity_by_cell_type,
        energy_per_inference_fj=(
            energy.total_fj / samples if energy is not None and samples else 0.0
        ),
    )
