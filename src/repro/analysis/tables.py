"""Report rows and plain-text table formatting for the paper's Table I / Figure 3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Table1Row:
    """One row of Table I (one design style on one library).

    Units match the paper: areas in µm², average power in µW, leakage in nW,
    latencies and reset time in ps, throughput in millions of inferences
    per second.
    """

    technology: str
    design: str
    cell_area: float
    sequential_area: float
    avg_power_uw: float
    leakage_power_nw: float
    avg_latency_ps: float
    max_latency_ps: float
    t_v_to_s_ps: Optional[float]
    avg_inferences_millions: float
    extra: Dict[str, float] = field(default_factory=dict)


TABLE1_COLUMNS = (
    ("technology", "Technology"),
    ("design", "Design"),
    ("cell_area", "Cell Area"),
    ("sequential_area", "Seq. Area"),
    ("avg_power_uw", "Avg Power (uW)"),
    ("leakage_power_nw", "Leakage (nW)"),
    ("avg_latency_ps", "Avg Latency (ps)"),
    ("max_latency_ps", "Max Latency (ps)"),
    ("t_v_to_s_ps", "tV->S (ps)"),
    ("avg_inferences_millions", "Avg Inf. (M/s)"),
)


def _format_value(value) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table-I rows as an aligned plain-text table."""
    headers = [label for _key, label in TABLE1_COLUMNS]
    table: List[List[str]] = [headers]
    for row in rows:
        table.append([_format_value(getattr(row, key)) for key, _label in TABLE1_COLUMNS])
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = []
    for idx, line in enumerate(table):
        lines.append("  ".join(value.ljust(widths[col]) for col, value in enumerate(line)))
        if idx == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(lines)


@dataclass
class Figure3Point:
    """One point of the Figure-3 latency-versus-supply curve."""

    vdd: float
    avg_latency_ps: float
    max_latency_ps: float
    functional: bool
    correct: bool


def format_figure3(points: Sequence[Figure3Point]) -> str:
    """Render the Figure-3 sweep as an aligned plain-text table."""
    lines = ["VDD (V)  Avg Latency (ps)  Max Latency (ps)  Functional  Correct"]
    lines.append("-" * len(lines[0]))
    for p in points:
        lines.append(
            f"{p.vdd:7.2f}  {p.avg_latency_ps:16.1f}  {p.max_latency_ps:16.1f}  "
            f"{str(p.functional):10}  {str(p.correct)}"
        )
    return "\n".join(lines)


def format_histogram(counts: Dict[int, int], label: str = "value", bar_width: int = 40) -> str:
    """ASCII histogram used by the distribution example and benchmark."""
    if not counts:
        return f"(no {label} samples)"
    peak = max(counts.values())
    lines = []
    for value in sorted(counts):
        count = counts[value]
        bar = "#" * max(1, int(round(bar_width * count / peak))) if count else ""
        lines.append(f"{label}={value:>4}  {count:>6}  {bar}")
    return "\n".join(lines)
