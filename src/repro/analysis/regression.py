"""Benchmark regression gating against a committed baseline.

The bench-smoke CI job records throughput figures into ``BENCH_sim.json``
(see ``benchmarks/conftest.py``).  Uploading the file as an artifact leaves
a perf trajectory, but nothing *fails* when a change slows the simulator
down — this module closes that loop.  ``benchmarks/baseline.json`` commits
the expected figures; :func:`compare_to_baseline` checks a fresh run
against them within a tolerance band, and the CI gate
(``benchmarks/check_regression.py``) fails the job on any regression.

Baseline format
---------------
::

    {
      "default_tolerance": 0.30,
      "metrics": {
        "batch_backend_samples_per_sec": {
          "value": 16000.0,
          "direction": "higher-is-better",
          "tolerance": 0.65
        },
        ...
      }
    }

* ``direction`` is ``"higher-is-better"`` (throughputs) or
  ``"lower-is-better"`` (latencies, wall-clock);
* ``tolerance`` is the per-metric allowed fractional regression — a
  higher-is-better metric regresses when
  ``current < value * (1 - tolerance)``; falls back to
  ``default_tolerance`` (0.30 unless the file overrides it);
* absolute throughput metrics carry a wide band (CI runner speed varies
  run to run), while machine-independent ratios such as
  ``batch_vs_event_speedup`` use the tight default.

A metric present in the baseline but missing from the current run is a
failure too: silently dropping a tracked benchmark must not pass the gate.
Metrics in the current run that the baseline does not track are reported
but never fail (new benchmarks can land before their baseline).

One baseline file may back several independently produced bench records
(``BENCH_sim.json`` from bench-smoke, ``BENCH_serve.json`` from
serve-smoke): each gate invocation scopes the baseline to its own metric
family with :func:`filter_baseline` (``--only-prefix`` / ``--skip-prefix``
on the CLI), so a simulator run is never failed for "missing" serving
metrics and vice versa.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: ``--only-prefix`` / ``--skip-prefix`` style scopes: one prefix or several.
PrefixSpec = Optional[Union[str, Sequence[str]]]

#: Default allowed fractional regression when a metric has no own tolerance.
DEFAULT_TOLERANCE = 0.30

_DIRECTIONS = ("higher-is-better", "lower-is-better")


@dataclass(frozen=True)
class BaselineMetric:
    """One tracked metric of the committed baseline."""

    name: str
    value: float
    direction: str = "higher-is-better"
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if self.tolerance is not None and not 0.0 <= self.tolerance < 1.0:
            raise ValueError(
                f"metric {self.name!r}: tolerance must be in [0, 1), got {self.tolerance}"
            )

    def bound(self, default_tolerance: float) -> float:
        """The worst acceptable current value."""
        tol = self.tolerance if self.tolerance is not None else default_tolerance
        if self.direction == "higher-is-better":
            return self.value * (1.0 - tol)
        return self.value * (1.0 + tol)

    def regressed(self, current: float, default_tolerance: float) -> bool:
        """``True`` when *current* falls outside the tolerance band."""
        limit = self.bound(default_tolerance)
        if self.direction == "higher-is-better":
            return current < limit
        return current > limit


@dataclass
class MetricComparison:
    """Outcome of checking one current metric against its baseline entry."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    bound: Optional[float]
    regressed: bool
    note: str = ""

    def describe(self) -> str:
        """One log line for the CI gate output."""
        status = "FAIL" if self.regressed else "ok"
        cur = "missing" if self.current is None else f"{self.current:.6g}"
        if self.baseline is None:
            return f"[{status:4}] {self.name}: {cur} (untracked — no baseline entry)"
        return (
            f"[{status:4}] {self.name}: current={cur} baseline={self.baseline:.6g} "
            f"bound={self.bound:.6g}{' — ' + self.note if self.note else ''}"
        )


@dataclass
class BaselineFile:
    """Parsed ``benchmarks/baseline.json``."""

    default_tolerance: float
    metrics: Dict[str, BaselineMetric]


def load_baseline(path: Union[str, Path]) -> BaselineFile:
    """Parse a baseline file (see the module docstring for the schema)."""
    raw = json.loads(Path(path).read_text())
    default_tolerance = float(raw.get("default_tolerance", DEFAULT_TOLERANCE))
    metrics: Dict[str, BaselineMetric] = {}
    for name, entry in raw.get("metrics", {}).items():
        metrics[name] = BaselineMetric(
            name=name,
            value=float(entry["value"]),
            direction=entry.get("direction", "higher-is-better"),
            tolerance=entry.get("tolerance"),
        )
    return BaselineFile(default_tolerance=default_tolerance, metrics=metrics)


def _as_prefixes(spec: PrefixSpec) -> Tuple[str, ...]:
    """Normalize a prefix spec (``None`` / one string / several) to a tuple."""
    if spec is None:
        return ()
    if isinstance(spec, str):
        return (spec,)
    return tuple(spec)


def filter_baseline(
    baseline: BaselineFile,
    only_prefix: PrefixSpec = None,
    skip_prefix: PrefixSpec = None,
) -> BaselineFile:
    """A view of *baseline* scoped to one or more metric families.

    ``only_prefix`` keeps only metrics whose name starts with any of the
    given prefixes; ``skip_prefix`` drops any match.  Each accepts a single
    prefix string or a sequence of them (the CLI flags are repeatable), and
    both may be given (``only`` applies first).  Used by gate invocations
    that compare a bench record which by design carries only a subset of
    the tracked metrics.
    """
    only = _as_prefixes(only_prefix)
    skip = _as_prefixes(skip_prefix)
    metrics = dict(baseline.metrics)
    if only:
        metrics = {
            n: m for n, m in metrics.items()
            if any(n.startswith(p) for p in only)
        }
    if skip:
        metrics = {
            n: m for n, m in metrics.items()
            if not any(n.startswith(p) for p in skip)
        }
    return BaselineFile(
        default_tolerance=baseline.default_tolerance, metrics=metrics
    )


def compare_to_baseline(
    current: Mapping[str, float],
    baseline: BaselineFile,
    default_tolerance: Optional[float] = None,
) -> List[MetricComparison]:
    """Check every tracked metric of *baseline* against the *current* run.

    Returns one :class:`MetricComparison` per metric (tracked first, then
    untracked extras in name order); any comparison with ``regressed=True``
    means the gate must fail.
    """
    tolerance = (
        baseline.default_tolerance if default_tolerance is None else default_tolerance
    )
    comparisons: List[MetricComparison] = []
    for name in sorted(baseline.metrics):
        metric = baseline.metrics[name]
        value = current.get(name)
        if value is None:
            comparisons.append(
                MetricComparison(
                    name=name,
                    baseline=metric.value,
                    current=None,
                    bound=metric.bound(tolerance),
                    regressed=True,
                    note="tracked metric missing from the current run",
                )
            )
            continue
        value = float(value)
        comparisons.append(
            MetricComparison(
                name=name,
                baseline=metric.value,
                current=value,
                bound=metric.bound(tolerance),
                regressed=metric.regressed(value, tolerance),
                note=f"direction={metric.direction}",
            )
        )
    for name in sorted(set(current) - set(baseline.metrics)):
        comparisons.append(
            MetricComparison(
                name=name,
                baseline=None,
                current=float(current[name]),
                bound=None,
                regressed=False,
            )
        )
    return comparisons


def regressions(comparisons: List[MetricComparison]) -> List[MetricComparison]:
    """The failing subset of *comparisons*."""
    return [c for c in comparisons if c.regressed]
