"""Operand and delay probability distributions (contribution 2 of the paper).

The second stated contribution is the "analysis of operand and delay
probability distributions in the ML inference circuit": the average-case
latency benefit of the early-propagating comparator depends entirely on how
the vote counts (the comparator operands) are distributed for real
workloads.  This module provides:

* the vote-count and vote-difference distributions of a workload as seen by
  the datapath,
* the comparator *decision depth* — how many bit positions (from the MSB)
  must be examined before the verdict is known — per operand, and
* the per-operand latency histogram of a simulated run,

so the relationship "large vote difference → shallow decision → short
latency" can be measured and plotted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.handshake import DualRailInferenceResult
from repro.tm.inference import InferenceModel


@dataclass
class Histogram:
    """A labelled integer histogram with convenience statistics."""

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, value: int, weight: int = 1) -> None:
        """Increment the bucket for *value*."""
        self.counts[value] = self.counts.get(value, 0) + weight

    @property
    def total(self) -> int:
        """Total number of recorded samples."""
        return sum(self.counts.values())

    def probability(self, value: int) -> float:
        """Empirical probability of *value*."""
        return self.counts.get(value, 0) / self.total if self.total else 0.0

    def mean(self) -> float:
        """Mean of the recorded values."""
        if not self.total:
            return float("nan")
        return sum(v * c for v, c in self.counts.items()) / self.total

    def as_sorted_items(self) -> List[Tuple[int, int]]:
        """Buckets sorted by value."""
        return sorted(self.counts.items())


def comparator_decision_depth(pos: int, neg: int, width: int) -> int:
    """Number of bit positions (from the MSB) examined before the verdict is known.

    The MSB-first comparator stops at the first differing bit pair; equal
    operands require all *width* positions.
    """
    for depth in range(1, width + 1):
        shift = width - depth
        if (pos >> shift) & 1 != (neg >> shift) & 1:
            return depth
    return width


def operand_distributions(
    model: InferenceModel, samples: np.ndarray, count_width: int
) -> Dict[str, Histogram]:
    """Vote-count, vote-difference and decision-depth distributions of a workload."""
    pos_hist = Histogram()
    neg_hist = Histogram()
    diff_hist = Histogram()
    depth_hist = Histogram()
    for row in np.asarray(samples, dtype=np.int8):
        pos, neg = model.vote_counts(row)
        pos_hist.add(pos)
        neg_hist.add(neg)
        diff_hist.add(pos - neg)
        depth_hist.add(comparator_decision_depth(pos, neg, count_width))
    return {
        "positive_votes": pos_hist,
        "negative_votes": neg_hist,
        "vote_difference": diff_hist,
        "decision_depth": depth_hist,
    }


def latency_histogram(
    results: Sequence[DualRailInferenceResult], bin_width_ps: float = 50.0
) -> Histogram:
    """Per-operand latency histogram with *bin_width_ps* buckets."""
    if bin_width_ps <= 0:
        raise ValueError("bin width must be positive")
    hist = Histogram()
    for result in results:
        hist.add(int(math.floor(result.t_s_to_v / bin_width_ps)))
    return hist


def latency_vs_decision_depth(
    results: Sequence[DualRailInferenceResult],
    model: InferenceModel,
    features_per_result: Sequence[Sequence[int]],
    count_width: int,
) -> List[Tuple[int, float]]:
    """Pair each operand's comparator decision depth with its measured latency.

    Returns ``(depth, latency_ps)`` tuples — the raw data behind the claim
    that operands decided at a high-order bit finish earlier.
    """
    if len(results) != len(features_per_result):
        raise ValueError("results and feature vectors must align one-to-one")
    pairs: List[Tuple[int, float]] = []
    for result, features in zip(results, features_per_result):
        pos, neg = model.vote_counts(features)
        depth = comparator_decision_depth(pos, neg, count_width)
        pairs.append((depth, result.t_s_to_v))
    return pairs


def mean_latency_by_depth(pairs: Sequence[Tuple[int, float]]) -> Dict[int, float]:
    """Average latency per comparator decision depth."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for depth, latency in pairs:
        sums[depth] = sums.get(depth, 0.0) + latency
        counts[depth] = counts.get(depth, 0) + 1
    return {depth: sums[depth] / counts[depth] for depth in sorted(sums)}
