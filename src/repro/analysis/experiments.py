"""End-to-end experiment harnesses for the paper's evaluation artefacts.

These functions are shared by the benchmarks (``benchmarks/``), the examples
(``examples/``) and the integration tests so that every consumer measures the
designs the same way:

* :func:`measure_dual_rail` — build, map, and simulate the dual-rail
  datapath for a workload; returns latency/power/area/correctness figures.
* :func:`measure_single_rail` — the same for the clocked baseline.
* :func:`functional_sweep` — decisions + switching activity only, through
  the vectorized batch backend (no timing, orders of magnitude faster).
* :func:`run_table1` — both designs on both libraries → Table-I rows.
* :func:`run_figure3` — the dual-rail design on the subthreshold library
  across the 0.25–1.2 V supply range → Figure-3 points.
* :func:`run_latency_distribution` — the per-operand latency stream behind
  the latency-distribution analysis (contribution 2).
* :func:`run_reduced_cd_comparison` — reduced vs full completion detection.
* :func:`run_hdl_export` — map a trained workload's datapath, emit it as
  structural Verilog with a self-checking handshake testbench, and prove
  the emission correct via the round-trip equivalence check.
* :func:`default_workload` — a trained-Tsetlin-machine workload (noisy-XOR)
  with the exclude matrix and feature stream the experiments run on.

Backends and parallelism
------------------------
The sweep harnesses accept ``backend=`` and ``jobs=`` arguments:

* ``backend="event"`` (default) is the seed behaviour: every quantity comes
  from the timing-accurate event-driven simulation.
* ``backend="batch"`` obtains the *functional* quantities (verdicts,
  decisions, correctness) from the vectorized batch backend while all timing
  quantities (latency, grace, power windows) still come from the event
  simulation — so the numbers are identical to the event path, by
  construction and by test.
* ``backend="bitpack"`` does the same through the bit-packed 64-lane engine
  (64 samples per ``uint64`` word) — the fastest functional path; results
  are identical to both other backends.
* ``jobs=N`` fans independent work units (voltage points, library×design
  measurements, operand chunks) out over :func:`repro.analysis.runner.run_parallel`;
  results are deterministic and identical for every ``jobs`` value.
* ``timing_backend="batch"|"bitpack"`` (on :func:`measure_dual_rail`,
  :func:`run_table1`, :func:`run_figure3`, :func:`run_latency_distribution`)
  swaps the *timing* source: instead of event-simulating every operand, the
  vectorized data-dependent timing engine (:mod:`repro.sim.backends.timed`)
  times the whole stream in one levelized pass — per-operand latencies,
  reset times and energies equivalent to the event oracle (see the
  timing-and-energy-model guide for the tolerance contract) at batch-backend
  throughput.  ``timing_backend="event"`` (default) keeps the seed
  behaviour and remains the equivalence oracle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.library import CellLibrary
from repro.core.completion import GracePeriod, compute_grace_period
from repro.datapath.datapath import DatapathConfig, DualRailDatapath
from repro.datapath.sync_datapath import SingleRailDatapath
from repro.sim.handshake import SynchronousEnvironment
from repro.sim.power import PowerAccountant, PowerReport
from repro.sim.simulator import GateLevelSimulator
from repro.sim.voltage import FIGURE3_VOLTAGES
from repro.synth.flow import HdlExportOptions, SynthesisResult, synthesize
from repro.tm.datasets import random_operand_stream

from .latency import LatencySummary, summarize_latencies
from .measure import (
    FunctionalSweep,
    Workload,
    batch_functional_pass,
    build_mapped_dual_rail,
    check_timing_backend,
    decode_verdict_planes,
    make_dual_rail_environment,
    rebind_interface,
    resolve_libraries,
    resolve_library,
    resolve_workload,
    timed_dual_rail_run,
    timed_power_report,
    truncate_workload,
    verdict_signal,
)
from .runner import run_parallel
from .tables import Figure3Point, Table1Row
from .throughput import dual_rail_throughput, synchronous_throughput

#: Backends the experiment harnesses can schedule.  Deliberately a subset of
#: :func:`repro.sim.backends.available_backends`: the harness must know which
#: quantities each backend can produce (timing always stays event-driven), so
#: a backend registered with the generic registry is not automatically usable
#: here.
EXPERIMENT_BACKENDS = ("event", "batch", "bitpack")


def _check_backend(backend: str) -> None:
    if backend not in EXPERIMENT_BACKENDS:
        raise ValueError(
            f"unknown experiment backend {backend!r}; expected one of {EXPERIMENT_BACKENDS}"
        )


@dataclass
class DualRailMeasurement:
    """Everything measured from one dual-rail simulation run."""

    library: str
    synthesis: SynthesisResult
    latency: LatencySummary
    power: PowerReport
    grace: GracePeriod
    throughput_millions: float
    correctness: float
    monotonic: bool
    latencies_ps: List[float] = field(default_factory=list)
    verdicts: List[str] = field(default_factory=list)


@dataclass
class SingleRailMeasurement:
    """Everything measured from one single-rail (synchronous) simulation run."""

    library: str
    synthesis: SynthesisResult
    clock_period_ps: float
    power: PowerReport
    throughput_millions: float
    correctness: float


def functional_sweep(
    workload: Workload,
    library: Optional[CellLibrary] = None,
    vdd: Optional[float] = None,
    synthesize_netlist: bool = True,
    backend: str = "batch",
) -> FunctionalSweep:
    """Decisions, verdicts and switching activity for a workload — no timing.

    This is the fast path for correctness sweeps and energy estimation over
    large operand streams: the whole stream is evaluated in one vectorized
    pass through the batch (or bit-packed) backend (see the
    ``BENCH_sim.json`` numbers for the samples/sec gap versus the event
    backend).

    Parameters
    ----------
    synthesize_netlist:
        When ``True`` (default) the technology-mapped netlist is evaluated —
        the same netlist :func:`measure_dual_rail` simulates; ``False`` skips
        synthesis and evaluates the as-built netlist (faster setup, same
        functional results).
    backend:
        ``"batch"`` (default) or ``"bitpack"`` — both produce identical
        results; ``"bitpack"`` packs 64 samples per word and is the fastest
        on long streams.
    """
    library = resolve_library(library)
    datapath = DualRailDatapath(workload.config, library=library)
    circuit = datapath.circuit
    if synthesize_netlist:
        synthesis = synthesize(
            circuit.netlist, library, vdd=vdd, clocked=False, enforce_unate=True
        )
        circuit = rebind_interface(circuit, synthesis)
    return batch_functional_pass(
        datapath, circuit, workload, library, vdd=vdd, backend=backend
    )


def measure_dual_rail(
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
    check_monotonic: bool = True,
    backend: str = "event",
    timing_backend: str = "event",
    program_cache: Optional[str] = None,
) -> DualRailMeasurement:
    """Build, synthesise and simulate the dual-rail datapath on *workload*.

    With ``backend="batch"`` or ``backend="bitpack"`` the verdicts and
    correctness come from the selected vectorized backend (one pass over the
    whole operand stream) while every timing quantity — latency, reset
    times, grace period, power windows — still comes from the event-driven
    simulation.

    ``timing_backend`` selects where the timing quantities come from:

    * ``"event"`` (default) — the seed behaviour: per-operand event-driven
      handshake cycles, with the monotonicity and forbidden-state monitors
      attached as requested;
    * ``"batch"`` / ``"bitpack"`` — the vectorized data-dependent timing
      engine (:mod:`repro.sim.backends.timed`): the whole stream is timed
      in one levelized pass, producing per-operand latencies, reset times
      and energies equivalent to the event oracle (pinned by the
      equivalence suite, within float re-association accuracy) at one to
      three orders of magnitude higher throughput.  No event simulation
      runs at all, so ``check_monotonic`` does not apply — monotonic
      settling is an *assumption* of the timed model (guaranteed by the
      unate mapping, Requirement 2) and the measurement reports
      ``monotonic=True``; see the timing-and-energy-model guide.

    ``program_cache`` (a directory path) routes backend construction through
    the on-disk :class:`~repro.sim.program_cache.ProgramCache`, so repeated
    measurements of the same design load the compiled program instead of
    recompiling it.
    """
    _check_backend(backend)
    check_timing_backend(timing_backend)
    if timing_backend != "event":
        return _measure_dual_rail_timed(
            workload, library, vdd, timing_backend, program_cache=program_cache
        )
    mapped = build_mapped_dual_rail(workload.config, library, vdd=vdd)
    datapath, synthesis = mapped.datapath, mapped.synthesis
    circuit, grace = mapped.circuit, mapped.grace
    bench = make_dual_rail_environment(
        mapped, check_monotonic=check_monotonic, check_forbidden=True
    )
    simulator, environment = bench.simulator, bench.environment

    accountant = PowerAccountant(circuit.netlist, library, vdd=vdd)
    window_start = simulator.time
    results = []
    correct = 0
    verdicts: List[str] = []
    functional: Optional[FunctionalSweep] = None
    if backend != "event":
        # One vectorized pass answers every functional question; the event
        # loop below is then purely for the timing quantities.  Activity and
        # energy come from the event transition log here, so the vectorized
        # pass skips its own (with_activity=False).
        functional = batch_functional_pass(
            datapath, circuit, workload, library, vdd=vdd,
            with_activity=False, backend=backend, program_cache=program_cache,
        )
    for index, features in enumerate(workload.feature_vectors):
        assignments = datapath.operand_assignments(features, workload.exclude)
        result = environment.infer(assignments)
        results.append(result)
        if functional is not None:
            verdict = functional.verdicts[index]
        else:
            verdict = DualRailDatapath.decode_verdict(result.one_of_n_outputs)
        verdicts.append(verdict)
        decision = DualRailDatapath.decision_from_verdict(verdict)
        if decision == workload.model.decision(features):
            correct += 1
    window_end = simulator.time

    latency = summarize_latencies(results)
    power = accountant.report(simulator, window_start, window_end, operations=len(results))
    throughput = dual_rail_throughput(results, grace_period=grace.td)
    return DualRailMeasurement(
        library=library.name,
        synthesis=synthesis,
        latency=latency,
        power=power,
        grace=grace,
        throughput_millions=throughput.millions_per_second,
        correctness=correct / len(results),
        monotonic=bench.monitors_ok,
        latencies_ps=[r.t_s_to_v for r in results],
        verdicts=verdicts,
    )


def _measure_dual_rail_timed(
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float],
    timing_backend: str,
    program_cache: Optional[str] = None,
) -> DualRailMeasurement:
    """The all-vectorized measurement path behind ``timing_backend != "event"``.

    One levelized timed pass produces every quantity the event loop would:
    per-operand latencies and reset times, the power window, switching
    energy, verdicts and correctness.  The construction half (build → map →
    grace) is shared with the event path, so area, grace-period and
    synthesis figures are identical by construction.
    """
    mapped = build_mapped_dual_rail(workload.config, library, vdd=vdd)
    run = timed_dual_rail_run(
        mapped, workload, timing_backend, program_cache=program_cache
    )
    verdicts = decode_verdict_planes(run.timed, verdict_signal(mapped.circuit))
    correct = sum(
        1
        for verdict, features in zip(verdicts, workload.feature_vectors)
        if DualRailDatapath.decision_from_verdict(verdict)
        == workload.model.decision(features)
    )
    latency = summarize_latencies(run.results)
    power = timed_power_report(mapped, run)
    throughput = dual_rail_throughput(run.results, grace_period=mapped.grace.td)
    return DualRailMeasurement(
        library=library.name,
        synthesis=mapped.synthesis,
        latency=latency,
        power=power,
        grace=mapped.grace,
        throughput_millions=throughput.millions_per_second,
        correctness=correct / len(verdicts),
        monotonic=True,  # model assumption (unate mapping), not a monitor verdict
        latencies_ps=[r.t_s_to_v for r in run.results],
        verdicts=verdicts,
    )


def measure_single_rail(
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> SingleRailMeasurement:
    """Build, synthesise and simulate the synchronous baseline on *workload*."""
    datapath = SingleRailDatapath(workload.config)
    synthesis = synthesize(datapath.netlist, library, vdd=vdd, clocked=True)
    clock_period = synthesis.clock_period

    simulator = GateLevelSimulator(synthesis.netlist, library, vdd=vdd)
    environment = SynchronousEnvironment(
        simulator,
        clock_net=datapath.interface.clock_net,
        input_nets=datapath.interface.input_nets,
        output_nets=datapath.interface.output_nets,
        clock_period=clock_period,
    )
    accountant = PowerAccountant(synthesis.netlist, library, vdd=vdd)

    window_start = simulator.time
    correct = 0
    total = 0
    for features in workload.feature_vectors:
        assignments = datapath.operand_assignments(features, workload.exclude)
        cycle = environment.run_operand(assignments)
        outputs = SingleRailDatapath.decode_outputs(cycle.outputs)
        total += 1
        if outputs.get("decision") == workload.model.decision(features):
            correct += 1
    window_end = simulator.time

    # One operand per clock cycle once the registers are primed; the
    # measurement loop above runs two cycles per operand for simplicity, so
    # power is normalised to the pipelined (one-cycle) operation period.
    operations = max(1, total)
    power = accountant.report(simulator, window_start, window_end, operations=operations)
    throughput = synchronous_throughput(clock_period)
    return SingleRailMeasurement(
        library=library.name,
        synthesis=synthesis,
        clock_period_ps=clock_period,
        power=power,
        throughput_millions=throughput.millions_per_second,
        correctness=correct / total if total else 0.0,
    )


def dual_rail_table_row(measurement: DualRailMeasurement) -> Table1Row:
    """Convert a dual-rail measurement into a Table-I row."""
    return Table1Row(
        technology=measurement.library,
        design="Proposed Dual-rail",
        cell_area=measurement.synthesis.area.total,
        sequential_area=measurement.synthesis.area.sequential,
        avg_power_uw=measurement.power.total_uw,
        leakage_power_nw=measurement.power.leakage_nw,
        avg_latency_ps=measurement.latency.average,
        max_latency_ps=measurement.latency.maximum,
        t_v_to_s_ps=measurement.latency.reset_time,
        avg_inferences_millions=measurement.throughput_millions,
        extra={
            "energy_per_inference_fj": measurement.power.energy_per_operation_fj,
            "grace_td_ps": measurement.grace.td,
            "correctness": measurement.correctness,
        },
    )


def single_rail_table_row(measurement: SingleRailMeasurement) -> Table1Row:
    """Convert a single-rail measurement into a Table-I row."""
    return Table1Row(
        technology=measurement.library,
        design="Single-rail",
        cell_area=measurement.synthesis.area.total,
        sequential_area=measurement.synthesis.area.sequential,
        avg_power_uw=measurement.power.total_uw,
        leakage_power_nw=measurement.power.leakage_nw,
        avg_latency_ps=measurement.clock_period_ps,
        max_latency_ps=measurement.clock_period_ps,
        t_v_to_s_ps=None,
        avg_inferences_millions=measurement.throughput_millions,
        extra={
            "energy_per_inference_fj": measurement.power.energy_per_operation_fj,
            "correctness": measurement.correctness,
        },
    )


def _table1_worker(item: Tuple[Workload, CellLibrary, str, str, str]) -> object:
    """Process-pool work unit of :func:`run_table1`: one library × design."""
    workload, library, design, backend, timing_backend = item
    if design == "single-rail":
        return measure_single_rail(workload, library)
    return measure_dual_rail(
        workload, library, backend=backend, timing_backend=timing_backend
    )


def run_table1(
    workload: Optional[Workload] = None,
    libraries: Optional[Sequence[CellLibrary]] = None,
    backend: str = "event",
    jobs: int = 1,
    timing_backend: str = "event",
) -> Tuple[List[Table1Row], Dict[str, object]]:
    """Reproduce Table I: single-rail vs dual-rail on both libraries.

    Returns the table rows plus the raw measurement objects keyed by
    ``"<library>/<design>"`` for deeper inspection.  The four measurements
    are independent work units, so ``jobs=4`` runs them concurrently; the
    single-rail baseline is clocked (flip-flops) and therefore always uses
    the event backend regardless of *backend* or *timing_backend* (its
    latency is the STA clock period by definition).

    ``timing_backend="batch"`` (or ``"bitpack"``) obtains the dual-rail
    latency, power and throughput columns from the vectorized timing engine
    instead of per-operand event simulation — the whole-table wall-clock
    lever; values agree with the event run within float re-association
    accuracy (documented in the timing-and-energy-model guide).
    """
    _check_backend(backend)
    check_timing_backend(timing_backend)
    workload = resolve_workload(workload)
    libs = resolve_libraries(libraries)
    items = []
    for library in libs:
        items.append((workload, library, "single-rail", backend, timing_backend))
        items.append((workload, library, "dual-rail", backend, timing_backend))
    measurements = run_parallel(_table1_worker, items, jobs=jobs)
    rows: List[Table1Row] = []
    raw: Dict[str, object] = {}
    for (workload, library, design, _backend, _timing), measurement in zip(
        items, measurements
    ):
        if design == "single-rail":
            rows.append(single_rail_table_row(measurement))
        else:
            rows.append(dual_rail_table_row(measurement))
        raw[f"{library.name}/{design}"] = measurement
    return rows, raw


def _figure3_worker(
    item: Tuple[Workload, CellLibrary, float, str, str]
) -> Figure3Point:
    """Process-pool work unit of :func:`run_figure3`: one voltage point."""
    workload, library, vdd, backend, timing_backend = item
    if not library.voltage_model.is_functional(vdd):
        return Figure3Point(vdd=vdd, avg_latency_ps=float("nan"),
                            max_latency_ps=float("nan"),
                            functional=False, correct=False)
    measurement = measure_dual_rail(
        workload, library, vdd=vdd, check_monotonic=False, backend=backend,
        timing_backend=timing_backend,
    )
    return Figure3Point(
        vdd=vdd,
        avg_latency_ps=measurement.latency.average,
        max_latency_ps=measurement.latency.maximum,
        functional=True,
        correct=measurement.correctness == 1.0,
    )


def run_figure3(
    workload: Optional[Workload] = None,
    voltages: Sequence[float] = FIGURE3_VOLTAGES,
    library: Optional[CellLibrary] = None,
    operands_per_point: Optional[int] = None,
    backend: str = "event",
    jobs: int = 1,
    timing_backend: str = "event",
) -> List[Figure3Point]:
    """Reproduce Figure 3: dual-rail latency versus supply voltage.

    The dual-rail datapath is simulated on the subthreshold-capable
    FULL DIFFUSION library at every supply point; functional correctness is
    checked at each voltage (the paper's headline robustness claim).

    Every voltage point is an independent work unit: ``jobs=N`` sweeps N
    supplies concurrently with identical results.  ``backend="batch"``
    sources the per-point correctness check from the vectorized backend as
    a live cross-check (latencies stay event-driven, so this knob does not
    make a point cheaper).  ``timing_backend="batch"``/``"bitpack"`` is the
    per-point wall-clock lever: the latencies the figure plots come from
    the vectorized timing engine, one levelized pass per voltage point
    instead of one event-driven handshake per operand, with sweep values
    equal to the event run within float re-association accuracy.
    """
    _check_backend(backend)
    check_timing_backend(timing_backend)
    workload = resolve_workload(workload, num_operands=12)
    library = resolve_library(library)
    sub_workload = truncate_workload(workload, operands_per_point)
    items = [
        (sub_workload, library, float(vdd), backend, timing_backend)
        for vdd in voltages
    ]
    return run_parallel(_figure3_worker, items, jobs=jobs)


def _latency_chunk_worker(
    item: Tuple[Workload, CellLibrary, Optional[float], np.ndarray, str, Optional[str]]
) -> List[object]:
    """Work unit of :func:`run_latency_distribution`: one operand chunk.

    Builds a private datapath + simulator (work units share nothing, so any
    chunking gives identical per-operand measurements: every inference
    starts from the fully-settled spacer state).  Under a vectorized timing
    backend the chunk is timed in one levelized pass instead of one
    event-driven handshake per operand; with a *program_cache* directory the
    chunk's compiled program is served from disk instead of recompiled.
    """
    workload, library, vdd, chunk_features, timing_backend, program_cache = item
    mapped = build_mapped_dual_rail(workload.config, library, vdd=vdd)
    if timing_backend != "event":
        chunk_workload = replace(workload, feature_vectors=np.asarray(chunk_features))
        return timed_dual_rail_run(
            mapped, chunk_workload, timing_backend, program_cache=program_cache
        ).results
    bench = make_dual_rail_environment(mapped)
    results = []
    for features in chunk_features:
        assignments = mapped.datapath.operand_assignments(features, workload.exclude)
        results.append(bench.environment.infer(assignments))
    return results


#: Default operands per latency-distribution chunk.  A *constant* (rather
#: than an even split across ``jobs``) so that chunk boundaries — and hence
#: the absolute simulation time of every operand — are identical for every
#: ``jobs`` value, making the parallel sweep bit-reproducible.  Each chunk
#: pays one datapath build + synthesis, so the default is sized to cover the
#: paper-scale streams (<= 64 operands) in a single chunk — serial runs cost
#: exactly what the seed's single-environment loop did; pass a smaller
#: ``chunk_size`` to trade setup overhead for parallelism on short streams.
LATENCY_CHUNK_OPERANDS = 64


def run_latency_distribution(
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    timing_backend: str = "event",
    program_cache: Optional[str] = None,
) -> List[object]:
    """Per-operand dual-rail inference results for distribution analysis.

    Returns one :class:`~repro.sim.handshake.DualRailInferenceResult` per
    operand, in stream order — the input to ``latency_histogram`` and
    friends.  The stream is split into chunks of *chunk_size* operands
    (default :data:`LATENCY_CHUNK_OPERANDS`); each chunk simulates on its
    own datapath instance.  Chunk boundaries depend only on *chunk_size* —
    never on *jobs* — so ``jobs=1`` and ``jobs=N`` return bit-identical
    measurements (operands land at the same absolute simulation times).

    ``timing_backend="batch"``/``"bitpack"`` times each chunk in one
    vectorized pass (the long-stream wall-clock lever: chunks still fan out
    over *jobs*, and within a chunk the per-operand cost collapses to array
    sweeps).  Relative per-operand quantities match the event oracle within
    float re-association accuracy; absolute ``t_start`` timestamps restart
    at 0 per chunk, whereas the event path's origin is each chunk's initial
    reset settle.

    ``program_cache`` (a directory path) serves every chunk's compiled
    program from the on-disk
    :class:`~repro.sim.program_cache.ProgramCache`.  The parent process
    pre-warms the cache before fanning out, so a parallel run compiles each
    unique netlist exactly once instead of once per worker.
    """
    check_timing_backend(timing_backend)
    features = list(workload.feature_vectors)
    if not features:
        return []
    if chunk_size is None:
        chunk_size = LATENCY_CHUNK_OPERANDS
    chunks = [
        np.asarray(features[start: start + chunk_size])
        for start in range(0, len(features), chunk_size)
    ]
    if program_cache is not None and timing_backend != "event":
        # Pre-warm in the parent: compile (or load) once before the fan-out
        # so concurrent workers never race to compile the same program.
        from repro.sim.program_cache import ProgramCache

        mapped = build_mapped_dual_rail(workload.config, library, vdd=vdd)
        ProgramCache(program_cache).load_or_compile(
            mapped.circuit.netlist, mapped.library, vdd=mapped.vdd
        )
    items = [
        (workload, library, vdd, chunk, timing_backend, program_cache)
        for chunk in chunks
    ]
    nested = run_parallel(_latency_chunk_worker, items, jobs=jobs)
    return [result for chunk_results in nested for result in chunk_results]


@dataclass
class ReducedCDComparison:
    """Reduced vs full completion detection, quantified (Section III-A).

    ``datapath_*_cells`` compare the schemes on the full inference datapath
    (a single 1-of-3 output, where both are tiny); ``block_*_area_um2``
    compare them on a multi-output block (the 8-input population counter),
    where the reduced scheme's AND-tree aggregation beats the C-element
    tree.  ``grace`` carries the timing-assumption numbers
    ``td = t_int − t_io`` and ``t_done(1→0)``.
    """

    datapath_reduced_cells: int
    datapath_full_cells: int
    block_reduced_area_um2: float
    block_full_area_um2: float
    grace: GracePeriod


def _cd_scheme_worker(
    item: Tuple[str, CellLibrary, DatapathConfig]
) -> Tuple[int, float, Optional[GracePeriod]]:
    """Work unit of :func:`run_reduced_cd_comparison`: one CD scheme.

    Returns the datapath completion cell count, the popcount-block CD area
    overhead, and — for the reduced scheme, whose timing assumption needs
    it — the grace period of the datapath just built.
    """
    from repro.core.completion import add_completion_detection, completion_overhead_area
    from repro.core.dual_rail import DualRailBuilder, SpacerPolarity
    from repro.datapath.popcount import dual_rail_popcount8

    scheme, library, config = item
    datapath_config = DatapathConfig(
        num_features=config.num_features,
        clauses_per_polarity=config.clauses_per_polarity,
        completion=scheme,
    )
    datapath = DualRailDatapath(datapath_config, library=library)
    info = datapath.circuit.metadata["completion"]
    grace = compute_grace_period(datapath.circuit, library) if scheme == "reduced" else None

    builder = DualRailBuilder(f"pop_cd_{scheme}")
    inputs = [builder.input_bit(f"x{i}") for i in range(8)]
    bits = dual_rail_popcount8(builder, inputs)
    for i, bit in enumerate(bits):
        builder.output_bit(f"y{i}", builder.align_polarity(bit, SpacerPolarity.ALL_ZERO))
    block = builder.build()
    add_completion_detection(block, scheme=scheme)
    return info.total_cells, completion_overhead_area(block, library), grace


@dataclass
class HdlExportReport:
    """Everything :func:`run_hdl_export` produced for one workload.

    Attributes
    ----------
    library:
        Target library the netlist was mapped onto before emission.
    design:
        Name of the exported top module.
    export:
        The :class:`repro.hdl.export.HdlExport` bundle (design text,
        primitives, round-trip report, file paths).
    testbench_bytes:
        Size of the generated handshake testbench.
    blocks:
        ``{block name: cell count}`` of the hierarchical partitioning.
    hierarchical_equivalent:
        ``True`` when the hierarchical emission flattens back into a
        gate-for-gate equivalent netlist as well.
    paths:
        All files written (empty when no directory was given).
    """

    library: str
    design: str
    export: object
    testbench_bytes: int
    blocks: Dict[str, int]
    hierarchical_equivalent: bool
    paths: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """``True`` when every verification step passed."""
        return bool(self.export.verified and self.hierarchical_equivalent)

    def summary(self) -> str:
        """Multi-line report used by ``examples/export_verilog.py`` and CI."""
        lines = [
            f"HDL export report — {self.design} on {self.library}",
            self.export.summary(),
            f"  testbench  : {self.testbench_bytes} bytes (handshake, self-checking)",
            f"  hierarchy  : {len(self.blocks)} blocks "
            f"({', '.join(f'{k}:{v}' for k, v in self.blocks.items())})",
            f"  hier check : "
            f"{'EQUIVALENT' if self.hierarchical_equivalent else 'NOT EQUIVALENT'}",
            f"  verdict    : {'OK' if self.ok else 'FAILED'}",
        ]
        return "\n".join(lines)


def run_hdl_export(
    workload: Optional[Workload] = None,
    library: Optional[CellLibrary] = None,
    directory: Optional[str] = None,
    testbench_operands: int = 16,
    roundtrip_vectors: int = 256,
    seed: int = 2021,
) -> HdlExportReport:
    """Export a workload's mapped dual-rail datapath as verified Verilog.

    The full pipeline: build the datapath for *workload* (default: the
    trained noisy-XOR workload), technology-map it onto *library* (default
    UMC LL), emit flat structural Verilog + behavioral primitives through
    the :func:`repro.synth.flow.synthesize` export hook (which also runs
    the round-trip equivalence proof), generate the self-checking
    spacer/valid handshake testbench, and additionally emit + flatten the
    per-block hierarchical form as a second equivalence witness.

    Parameters
    ----------
    directory:
        When given, all artefacts are written there: ``<design>.v``,
        ``primitives.v``, ``tb_<design>.v`` and ``<design>_hier.v``.
    """
    from repro.hdl import (
        check_equivalence,
        emit_verilog,
        generate_datapath_testbench,
        netlist_from_verilog,
        partition_by_attr,
    )

    workload = resolve_workload(workload)
    library = resolve_library(library, "UMC LL")
    datapath = DualRailDatapath(workload.config, library=library)
    synthesis = synthesize(
        datapath.circuit.netlist,
        library,
        clocked=False,
        enforce_unate=True,
        export=HdlExportOptions(
            directory=directory,
            testbench=False,  # the handshake testbench below replaces it
            verify=True,
            roundtrip_vectors=roundtrip_vectors,
            seed=seed,
        ),
    )
    mapped = synthesis.netlist
    export = synthesis.hdl

    stimulus = random_operand_stream(
        workload.config.num_features, testbench_operands, seed=seed
    )
    testbench = generate_datapath_testbench(
        datapath,
        workload.model,
        exclude=workload.exclude,
        feature_vectors=stimulus,
        seed=seed,
        netlist=mapped,
    )

    blocks = partition_by_attr(mapped)
    hier_text = emit_verilog(mapped, blocks=blocks)
    flattened = netlist_from_verilog(hier_text)
    hier_equivalence = check_equivalence(
        mapped, flattened, vectors=roundtrip_vectors, seed=seed
    )

    paths = dict(export.paths)
    if directory is not None:
        safe_name = mapped.name.replace("/", "_")
        tb_path = os.path.join(directory, f"tb_{safe_name}.v")
        hier_path = os.path.join(directory, f"{safe_name}_hier.v")
        with open(tb_path, "w", encoding="utf-8") as handle:
            handle.write(testbench)
        with open(hier_path, "w", encoding="utf-8") as handle:
            handle.write(hier_text)
        paths["testbench"] = tb_path
        paths["hierarchical"] = hier_path

    return HdlExportReport(
        library=library.name,
        design=mapped.name,
        export=export,
        testbench_bytes=len(testbench),
        blocks={name: len(cells) for name, cells in blocks.items()},
        hierarchical_equivalent=hier_equivalence.equivalent,
        paths=paths,
    )


def run_reduced_cd_comparison(
    library: Optional[CellLibrary] = None,
    config: Optional[DatapathConfig] = None,
    jobs: int = 1,
) -> ReducedCDComparison:
    """Quantify the reduced completion-detection proposal against full CD.

    The two schemes are independent work units (``jobs=2`` builds them
    concurrently); the returned grace period is computed for the reduced
    scheme, which is the one whose timing assumption needs it.
    """
    library = resolve_library(library, "UMC LL")
    config = config if config is not None else DatapathConfig(num_features=4,
                                                              clauses_per_polarity=8)
    items = [("reduced", library, config), ("full", library, config)]
    (reduced_cells, reduced_area, grace), (full_cells, full_area, _) = run_parallel(
        _cd_scheme_worker, items, jobs=jobs
    )
    return ReducedCDComparison(
        datapath_reduced_cells=reduced_cells,
        datapath_full_cells=full_cells,
        block_reduced_area_um2=reduced_area,
        block_full_area_um2=full_area,
        grace=grace,
    )
