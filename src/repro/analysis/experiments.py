"""End-to-end experiment harnesses for the paper's evaluation artefacts.

These functions are shared by the benchmarks (``benchmarks/``), the examples
(``examples/``) and the integration tests so that every consumer measures the
designs the same way:

* :func:`measure_dual_rail` — build, map, and simulate the dual-rail
  datapath for a workload; returns latency/power/area/correctness figures.
* :func:`measure_single_rail` — the same for the clocked baseline.
* :func:`run_table1` — both designs on both libraries → Table-I rows.
* :func:`run_figure3` — the dual-rail design on the subthreshold library
  across the 0.25–1.2 V supply range → Figure-3 points.
* :func:`default_workload` — a trained-Tsetlin-machine workload (noisy-XOR)
  with the exclude matrix and feature stream the experiments run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.library import CellLibrary, default_libraries, full_diffusion_library
from repro.core.completion import GracePeriod, compute_grace_period
from repro.core.dual_rail import DualRailCircuit
from repro.datapath.datapath import DatapathConfig, DualRailDatapath
from repro.datapath.sync_datapath import SingleRailDatapath
from repro.sim.handshake import DualRailEnvironment, SynchronousEnvironment
from repro.sim.monitors import ForbiddenStateMonitor, MonotonicityMonitor
from repro.sim.power import PowerAccountant, PowerReport
from repro.sim.simulator import GateLevelSimulator
from repro.sim.voltage import FIGURE3_VOLTAGES
from repro.synth.flow import SynthesisResult, synthesize
from repro.tm.inference import InferenceModel
from repro.tm.machine import TsetlinMachine
from repro.tm.datasets import noisy_xor

from .latency import LatencySummary, summarize_latencies
from .tables import Figure3Point, Table1Row
from .throughput import dual_rail_throughput, synchronous_throughput


@dataclass
class Workload:
    """A hardware workload: clause configuration plus a stream of operands."""

    config: DatapathConfig
    exclude: np.ndarray
    feature_vectors: np.ndarray
    model: InferenceModel
    description: str = ""

    @property
    def num_operands(self) -> int:
        """Number of feature vectors in the stream."""
        return int(self.feature_vectors.shape[0])


@dataclass
class DualRailMeasurement:
    """Everything measured from one dual-rail simulation run."""

    library: str
    synthesis: SynthesisResult
    latency: LatencySummary
    power: PowerReport
    grace: GracePeriod
    throughput_millions: float
    correctness: float
    monotonic: bool
    latencies_ps: List[float] = field(default_factory=list)
    verdicts: List[str] = field(default_factory=list)


@dataclass
class SingleRailMeasurement:
    """Everything measured from one single-rail (synchronous) simulation run."""

    library: str
    synthesis: SynthesisResult
    clock_period_ps: float
    power: PowerReport
    throughput_millions: float
    correctness: float


def default_workload(
    num_features: int = 4,
    clauses_per_polarity: int = 8,
    num_operands: int = 40,
    epochs: int = 25,
    seed: int = 2021,
    latch_inputs: bool = True,
) -> Workload:
    """Train a Tsetlin machine on noisy-XOR and package it as a hardware workload.

    The trained machine's exclude actions configure the clauses; the test
    split of the dataset provides the operand stream (re-sampled with
    replacement to reach *num_operands*).
    """
    config = DatapathConfig(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        latch_inputs=latch_inputs,
    )
    dataset = noisy_xor(num_samples=400, num_features=num_features, noise=0.05, seed=seed)
    machine = TsetlinMachine(
        num_features=num_features,
        num_clauses=config.num_clauses,
        threshold=clauses_per_polarity,
        s=3.0,
        seed=seed,
    )
    machine.fit(dataset.train_x, dataset.train_y, epochs=epochs)
    model = InferenceModel.from_machine(machine)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, dataset.test_x.shape[0], size=num_operands)
    feature_vectors = dataset.test_x[indices]
    return Workload(
        config=config,
        exclude=model.exclude,
        feature_vectors=feature_vectors,
        model=model,
        description=(
            f"noisy-XOR Tsetlin machine, {num_features} features, "
            f"{clauses_per_polarity} clauses per polarity, {num_operands} operands"
        ),
    )


def random_workload(
    num_features: int = 4,
    clauses_per_polarity: int = 8,
    num_operands: int = 40,
    include_probability: float = 0.25,
    seed: int = 7,
    latch_inputs: bool = True,
) -> Workload:
    """A workload with random clause composition (no training required)."""
    config = DatapathConfig(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        latch_inputs=latch_inputs,
    )
    model = InferenceModel.random(
        config.num_clauses, num_features, include_probability=include_probability, seed=seed
    )
    rng = np.random.default_rng(seed)
    feature_vectors = (rng.random((num_operands, num_features)) < 0.5).astype(np.int8)
    return Workload(
        config=config,
        exclude=model.exclude,
        feature_vectors=feature_vectors,
        model=model,
        description="random clause composition workload",
    )


def _mapped_circuit(circuit: DualRailCircuit, synthesis: SynthesisResult) -> DualRailCircuit:
    """Re-bind the dual-rail interface onto the technology-mapped netlist."""
    return DualRailCircuit(
        netlist=synthesis.netlist,
        inputs=circuit.inputs,
        outputs=circuit.outputs,
        one_of_n_outputs=circuit.one_of_n_outputs,
        done_net=circuit.done_net,
        metadata=dict(circuit.metadata),
    )


def measure_dual_rail(
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
    check_monotonic: bool = True,
) -> DualRailMeasurement:
    """Build, synthesise and simulate the dual-rail datapath on *workload*."""
    datapath = DualRailDatapath(workload.config, library=library)
    synthesis = synthesize(
        datapath.circuit.netlist, library, vdd=vdd, clocked=False, enforce_unate=True
    )
    circuit = _mapped_circuit(datapath.circuit, synthesis)
    grace = compute_grace_period(circuit, library, vdd=vdd)

    simulator = GateLevelSimulator(circuit.netlist, library, vdd=vdd)
    monitor = MonotonicityMonitor() if check_monotonic else None
    if monitor is not None:
        simulator.add_monitor(monitor)
    forbidden = ForbiddenStateMonitor(simulator, circuit.outputs)
    simulator.add_monitor(forbidden)
    environment = DualRailEnvironment(
        circuit, simulator, grace_period=grace.td, monotonicity_monitor=monitor
    )
    environment.reset()

    accountant = PowerAccountant(circuit.netlist, library, vdd=vdd)
    window_start = simulator.time
    results = []
    correct = 0
    verdicts: List[str] = []
    for features in workload.feature_vectors:
        assignments = datapath.operand_assignments(features, workload.exclude)
        result = environment.infer(assignments)
        results.append(result)
        verdict = DualRailDatapath.decode_verdict(result.one_of_n_outputs)
        verdicts.append(verdict)
        decision = DualRailDatapath.decision_from_verdict(verdict)
        if decision == workload.model.decision(features):
            correct += 1
    window_end = simulator.time

    latency = summarize_latencies(results)
    power = accountant.report(simulator, window_start, window_end, operations=len(results))
    throughput = dual_rail_throughput(results, grace_period=grace.td)
    return DualRailMeasurement(
        library=library.name,
        synthesis=synthesis,
        latency=latency,
        power=power,
        grace=grace,
        throughput_millions=throughput.millions_per_second,
        correctness=correct / len(results),
        monotonic=(monitor.ok if monitor is not None else True) and forbidden.ok,
        latencies_ps=[r.t_s_to_v for r in results],
        verdicts=verdicts,
    )


def measure_single_rail(
    workload: Workload,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> SingleRailMeasurement:
    """Build, synthesise and simulate the synchronous baseline on *workload*."""
    datapath = SingleRailDatapath(workload.config)
    synthesis = synthesize(datapath.netlist, library, vdd=vdd, clocked=True)
    clock_period = synthesis.clock_period

    simulator = GateLevelSimulator(synthesis.netlist, library, vdd=vdd)
    environment = SynchronousEnvironment(
        simulator,
        clock_net=datapath.interface.clock_net,
        input_nets=datapath.interface.input_nets,
        output_nets=datapath.interface.output_nets,
        clock_period=clock_period,
    )
    accountant = PowerAccountant(synthesis.netlist, library, vdd=vdd)

    window_start = simulator.time
    correct = 0
    total = 0
    for features in workload.feature_vectors:
        assignments = datapath.operand_assignments(features, workload.exclude)
        cycle = environment.run_operand(assignments)
        outputs = SingleRailDatapath.decode_outputs(cycle.outputs)
        total += 1
        if outputs.get("decision") == workload.model.decision(features):
            correct += 1
    window_end = simulator.time

    # One operand per clock cycle once the registers are primed; the
    # measurement loop above runs two cycles per operand for simplicity, so
    # power is normalised to the pipelined (one-cycle) operation period.
    operations = max(1, total)
    power = accountant.report(simulator, window_start, window_end, operations=operations)
    throughput = synchronous_throughput(clock_period)
    return SingleRailMeasurement(
        library=library.name,
        synthesis=synthesis,
        clock_period_ps=clock_period,
        power=power,
        throughput_millions=throughput.millions_per_second,
        correctness=correct / total if total else 0.0,
    )


def dual_rail_table_row(measurement: DualRailMeasurement) -> Table1Row:
    """Convert a dual-rail measurement into a Table-I row."""
    return Table1Row(
        technology=measurement.library,
        design="Proposed Dual-rail",
        cell_area=measurement.synthesis.area.total,
        sequential_area=measurement.synthesis.area.sequential,
        avg_power_uw=measurement.power.total_uw,
        leakage_power_nw=measurement.power.leakage_nw,
        avg_latency_ps=measurement.latency.average,
        max_latency_ps=measurement.latency.maximum,
        t_v_to_s_ps=measurement.latency.reset_time,
        avg_inferences_millions=measurement.throughput_millions,
        extra={
            "energy_per_inference_fj": measurement.power.energy_per_operation_fj,
            "grace_td_ps": measurement.grace.td,
            "correctness": measurement.correctness,
        },
    )


def single_rail_table_row(measurement: SingleRailMeasurement) -> Table1Row:
    """Convert a single-rail measurement into a Table-I row."""
    return Table1Row(
        technology=measurement.library,
        design="Single-rail",
        cell_area=measurement.synthesis.area.total,
        sequential_area=measurement.synthesis.area.sequential,
        avg_power_uw=measurement.power.total_uw,
        leakage_power_nw=measurement.power.leakage_nw,
        avg_latency_ps=measurement.clock_period_ps,
        max_latency_ps=measurement.clock_period_ps,
        t_v_to_s_ps=None,
        avg_inferences_millions=measurement.throughput_millions,
        extra={
            "energy_per_inference_fj": measurement.power.energy_per_operation_fj,
            "correctness": measurement.correctness,
        },
    )


def run_table1(
    workload: Optional[Workload] = None,
    libraries: Optional[Sequence[CellLibrary]] = None,
) -> Tuple[List[Table1Row], Dict[str, object]]:
    """Reproduce Table I: single-rail vs dual-rail on both libraries.

    Returns the table rows plus the raw measurement objects keyed by
    ``"<library>/<design>"`` for deeper inspection.
    """
    workload = workload if workload is not None else default_workload()
    libs = list(libraries) if libraries is not None else list(default_libraries().values())
    rows: List[Table1Row] = []
    raw: Dict[str, object] = {}
    for library in libs:
        single = measure_single_rail(workload, library)
        dual = measure_dual_rail(workload, library)
        rows.append(single_rail_table_row(single))
        rows.append(dual_rail_table_row(dual))
        raw[f"{library.name}/single-rail"] = single
        raw[f"{library.name}/dual-rail"] = dual
    return rows, raw


def run_figure3(
    workload: Optional[Workload] = None,
    voltages: Sequence[float] = FIGURE3_VOLTAGES,
    library: Optional[CellLibrary] = None,
    operands_per_point: Optional[int] = None,
) -> List[Figure3Point]:
    """Reproduce Figure 3: dual-rail latency versus supply voltage.

    The dual-rail datapath is simulated on the subthreshold-capable
    FULL DIFFUSION library at every supply point; functional correctness is
    checked at each voltage (the paper's headline robustness claim).
    """
    workload = workload if workload is not None else default_workload(num_operands=12)
    library = library if library is not None else full_diffusion_library()
    points: List[Figure3Point] = []
    for vdd in voltages:
        if not library.voltage_model.is_functional(vdd):
            points.append(Figure3Point(vdd=vdd, avg_latency_ps=float("nan"),
                                       max_latency_ps=float("nan"),
                                       functional=False, correct=False))
            continue
        sub_workload = workload
        if operands_per_point is not None and operands_per_point < workload.num_operands:
            sub_workload = Workload(
                config=workload.config,
                exclude=workload.exclude,
                feature_vectors=workload.feature_vectors[:operands_per_point],
                model=workload.model,
                description=workload.description,
            )
        measurement = measure_dual_rail(sub_workload, library, vdd=vdd, check_monotonic=False)
        points.append(
            Figure3Point(
                vdd=vdd,
                avg_latency_ps=measurement.latency.average,
                max_latency_ps=measurement.latency.maximum,
                functional=True,
                correct=measurement.correctness == 1.0,
            )
        )
    return points
