"""1-of-n (one-hot) delay-insensitive codes.

Dual-rail is the special case ``n = 2`` of the 1-of-n family: one wire per
possible symbol value, exactly one of which is asserted in a valid codeword,
all of which sit at the spacer level between codewords.  Provided a spacer
separates successive valids, switching of a 1-of-n code is monotonic
(Bainbridge et al.), which is why the paper can use a **1-of-3** code for the
mutually-exclusive *less / equal / greater* outputs of the magnitude
comparator instead of three full dual-rail pairs — saving both wires and the
logic that would drive them (Section IV-C).

This module provides encode/decode/validity helpers mirroring those in
:mod:`repro.core.dual_rail` but for arbitrary ``n``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.circuits.gates import LogicValue

from .dual_rail import SpacerPolarity


def encode_one_of_n(symbol: int, n: int,
                    polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> Tuple[int, ...]:
    """Encode *symbol* (``0 <= symbol < n``) as a valid 1-of-n codeword.

    With an all-zero spacer the selected rail is 1 and all others are 0;
    with an all-one spacer the selected rail is 0 and all others are 1
    (the codeword is the bitwise complement, as produced by negative gates).
    """
    if not 0 <= symbol < n:
        raise ValueError(f"symbol {symbol} out of range for 1-of-{n} code")
    active, idle = (1, 0) if polarity is SpacerPolarity.ALL_ZERO else (0, 1)
    return tuple(active if i == symbol else idle for i in range(n))


def spacer_one_of_n(n: int, polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> Tuple[int, ...]:
    """Return the spacer codeword (all rails at the spacer level)."""
    return tuple(polarity.spacer_rail_value for _ in range(n))


def decode_one_of_n(rails: Sequence[LogicValue],
                    polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> Optional[int]:
    """Decode a 1-of-n rail vector.

    Returns the index of the asserted rail for a valid codeword, ``None``
    for the spacer state, and raises :class:`ValueError` for invalid states
    (more than one rail asserted, or unknown values).
    """
    if any(r is None for r in rails):
        raise ValueError(f"1-of-n rails carry unknown values: {list(rails)}")
    idle = polarity.spacer_rail_value
    active_indices = [i for i, r in enumerate(rails) if r != idle]
    if not active_indices:
        return None
    if len(active_indices) > 1:
        raise ValueError(
            f"invalid 1-of-{len(rails)} codeword {list(rails)}: more than one rail asserted"
        )
    return active_indices[0]


def is_valid_one_of_n(rails: Sequence[LogicValue],
                      polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> bool:
    """``True`` when exactly one rail differs from the spacer level."""
    if any(r is None for r in rails):
        return False
    idle = polarity.spacer_rail_value
    return sum(1 for r in rails if r != idle) == 1


def is_spacer_one_of_n(rails: Sequence[LogicValue],
                       polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> bool:
    """``True`` when every rail sits at the spacer level."""
    idle = polarity.spacer_rail_value
    return all(r == idle for r in rails)
