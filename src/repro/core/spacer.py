"""Spacer-polarity analysis of dual-rail netlists.

Every inverting (negative) gate on a dual-rail signal path flips the spacer
polarity of the pair it drives.  For the circuit to work, both rails of a
pair must see the *same* number of inversions modulo two on every path from
the primary inputs — otherwise one rail interprets all-zero as spacer while
the other expects all-one, spacer propagation breaks, and valid codewords
can overtake each other (the data hazard the paper warns about in
Section III).

The paper handles this by construction: the clause logic has "a single
inversion on all signal paths", the half-adders have an even number, and two
explicit spacer inverters are inserted in the population counter where the
full-adders' carry chain would otherwise mismatch.
:class:`~repro.core.dual_rail.DualRailBuilder` automates the same discipline;
this module provides the *independent* check — a parity analysis over the
finished rail-level netlist — used by the validation tests to confirm that
the constructed datapaths are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.gates import is_inverting
from repro.circuits.netlist import Netlist

from .dual_rail import DualRailCircuit, SpacerPolarity


@dataclass
class SpacerAnalysis:
    """Result of the inversion-parity propagation.

    Attributes
    ----------
    parity:
        Inversion parity (0 or 1) of every analysed net, relative to the
        primary inputs.  ``None`` for nets that could not be reached
        (e.g. outputs of constant cells).
    inconsistencies:
        Messages for nets reachable through paths of differing parity —
        these are real spacer bugs.
    pair_polarity:
        For every dual-rail interface pair of the analysed circuit, the
        spacer polarity implied by the parity analysis.
    """

    parity: Dict[str, Optional[int]] = field(default_factory=dict)
    inconsistencies: List[str] = field(default_factory=list)
    pair_polarity: Dict[str, SpacerPolarity] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """``True`` when no parity inconsistencies were found."""
        return not self.inconsistencies


def analyse_inversion_parity(netlist: Netlist) -> SpacerAnalysis:
    """Propagate inversion parity from the primary inputs through *netlist*.

    Constant cells (TIE0/TIE1) and sequential feedback do not participate:
    constants are polarity-neutral by definition and C-elements are
    non-inverting.
    """
    analysis = SpacerAnalysis()
    parity: Dict[str, Optional[int]] = {pi: 0 for pi in netlist.primary_inputs}

    for cell in netlist.topological_order():
        if cell.attrs.get("role") == "completion-detect":
            # Completion detection is a control network, not a dual-rail data
            # path; it legitimately merges rails of differing parity.
            continue
        if cell.cell_type in ("TIE0", "TIE1"):
            for out in cell.outputs.values():
                parity.setdefault(out, None)
            continue
        input_parities = []
        for net in cell.inputs.values():
            p = parity.get(net)
            if p is not None:
                input_parities.append(p)
        if not input_parities:
            for out in cell.outputs.values():
                parity.setdefault(out, None)
            continue
        if len(set(input_parities)) > 1:
            analysis.inconsistencies.append(
                f"cell {cell.name!r} ({cell.cell_type}) mixes inputs of differing "
                f"inversion parity {sorted(set(input_parities))}"
            )
        base = input_parities[0]
        flip = 1 if is_inverting(cell.cell_type) else 0
        out_parity = (base + flip) % 2
        for out in cell.outputs.values():
            existing = parity.get(out)
            if existing is not None and existing != out_parity:
                analysis.inconsistencies.append(
                    f"net {out!r} is reached with both parities (existing {existing}, "
                    f"new {out_parity})"
                )
            parity[out] = out_parity

    analysis.parity = parity
    return analysis


def analyse_circuit_spacers(circuit: DualRailCircuit) -> SpacerAnalysis:
    """Run the parity analysis and translate it into per-pair spacer polarities.

    The input pairs' declared polarities anchor the analysis; an output pair
    whose rails have parity ``p`` relative to inputs of polarity ``P`` has
    polarity ``P`` when ``p`` is even and ``P.flipped()`` when odd.  The two
    rails of a pair must agree, otherwise an inconsistency is recorded.
    """
    analysis = analyse_inversion_parity(circuit.netlist)
    if not circuit.inputs:
        return analysis
    base_polarity = circuit.inputs[0].polarity
    for sig in circuit.inputs:
        if sig.polarity is not base_polarity:
            analysis.inconsistencies.append(
                f"input {sig.name!r} polarity {sig.polarity.value} differs from "
                f"{base_polarity.value}; mixed input polarities need explicit alignment"
            )

    for sig in circuit.outputs:
        p_pos = analysis.parity.get(sig.pos)
        p_neg = analysis.parity.get(sig.neg)
        if p_pos is None or p_neg is None:
            continue
        if p_pos != p_neg:
            analysis.inconsistencies.append(
                f"output pair {sig.name!r} rails have differing parity "
                f"({p_pos} vs {p_neg}); a spacer inverter is missing"
            )
            continue
        polarity = base_polarity if p_pos % 2 == 0 else base_polarity.flipped()
        analysis.pair_polarity[sig.name] = polarity
        if polarity is not sig.polarity:
            analysis.inconsistencies.append(
                f"output pair {sig.name!r} declares polarity {sig.polarity.value} but the "
                f"netlist implies {polarity.value}"
            )
    for sig in circuit.one_of_n_outputs:
        parities = {analysis.parity.get(r) for r in sig.rails}
        parities.discard(None)
        if len(parities) > 1:
            analysis.inconsistencies.append(
                f"1-of-n output {sig.name!r} rails have mixed inversion parity {sorted(parities)}"
            )
        elif parities:
            parity = parities.pop()
            polarity = base_polarity if parity % 2 == 0 else base_polarity.flipped()
            analysis.pair_polarity[sig.name] = polarity
            if polarity is not sig.polarity:
                analysis.inconsistencies.append(
                    f"1-of-n output {sig.name!r} declares polarity {sig.polarity.value} but "
                    f"the netlist implies {polarity.value}"
                )
    return analysis


def count_spacer_inverters(netlist: Netlist) -> int:
    """Count INV cells acting as spacer inverters (attribute ``role='spacer-inverter'``).

    The datapath generators tag the inverter pairs they insert; untagged
    inverters (e.g. inside logic) are not counted.
    """
    return sum(
        1
        for cell in netlist.iter_cells()
        if cell.cell_type == "INV" and cell.attrs.get("role") == "spacer-inverter"
    )
