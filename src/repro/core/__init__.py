"""The paper's primary contribution: the self-timed dual-rail design methodology.

* :mod:`repro.core.dual_rail` — dual-rail encoding, spacer polarities and the
  :class:`~repro.core.dual_rail.DualRailBuilder` used to construct the
  datapath circuits;
* :mod:`repro.core.one_of_n` — 1-of-n codes (the comparator's 1-of-3 output);
* :mod:`repro.core.expansion` — direct mapping of single-rail netlists into
  dual-rail with the negative-gate optimisation;
* :mod:`repro.core.spacer` — spacer-polarity (inversion-parity) analysis and
  spacer-inverter accounting;
* :mod:`repro.core.completion` — full and reduced completion detection, grace
  period (``td = t_int − t_io``) computation;
* :mod:`repro.core.requirements` — the six correctness requirements of
  Section III as inspectable data.
"""

from .completion import (
    CompletionInfo,
    GracePeriod,
    add_completion_detection,
    completion_overhead_area,
    compute_grace_period,
)
from .dual_rail import (
    DualRailBuilder,
    DualRailCircuit,
    DualRailSignal,
    OneOfNSignal,
    SpacerPolarity,
    decode_pair,
    encode_bit,
    is_spacer,
    is_valid_codeword,
    spacer_word,
)
from .expansion import ExpansionError, expand_to_dual_rail
from .one_of_n import (
    decode_one_of_n,
    encode_one_of_n,
    is_spacer_one_of_n,
    is_valid_one_of_n,
    spacer_one_of_n,
)
from .requirements import (
    REQUIREMENTS,
    Requirement,
    Responsibility,
    describe_requirements,
    requirement,
    requirements_by_responsibility,
)
from .spacer import (
    SpacerAnalysis,
    analyse_circuit_spacers,
    analyse_inversion_parity,
    count_spacer_inverters,
)

__all__ = [
    "CompletionInfo",
    "DualRailBuilder",
    "DualRailCircuit",
    "DualRailSignal",
    "ExpansionError",
    "GracePeriod",
    "OneOfNSignal",
    "REQUIREMENTS",
    "Requirement",
    "Responsibility",
    "SpacerAnalysis",
    "SpacerPolarity",
    "add_completion_detection",
    "analyse_circuit_spacers",
    "analyse_inversion_parity",
    "completion_overhead_area",
    "compute_grace_period",
    "count_spacer_inverters",
    "decode_one_of_n",
    "decode_pair",
    "describe_requirements",
    "encode_bit",
    "encode_one_of_n",
    "expand_to_dual_rail",
    "is_spacer",
    "is_spacer_one_of_n",
    "is_valid_codeword",
    "is_valid_one_of_n",
    "requirement",
    "requirements_by_responsibility",
    "spacer_one_of_n",
    "spacer_word",
]
