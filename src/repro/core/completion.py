"""Completion detection, full and reduced (the paper's core optimisation).

Full completion detection (CD) acknowledges both spacer→valid and
valid→spacer at the primary outputs, and requires internal CD to guarantee
that every internal net has also reset before new inputs are applied.  It is
expensive: one validity detector per output pair plus a tree of C-elements.

The paper's **reduced CD scheme** (Section III-A):

1. only spacer→valid is *indicated* at the primary outputs, so the
   aggregation tree can use plain AND gates instead of C-elements;
2. internal CD is omitted entirely; instead the environment (or a delay
   built into the falling edge of ``done``) guarantees a *grace period*
   between returning the inputs to spacer and applying the next valid
   codeword.  The grace period is derived from static timing analysis:

   ``td = t_int − t_io``   and   ``t_done(1→0) = t_io + td``

   where ``t_int`` is the maximum internal valid→spacer (reset) time —
   false paths included — and ``t_io`` the maximum input-to-output reset
   time.

This module builds both CD styles onto a :class:`~repro.core.dual_rail.DualRailCircuit`
and computes the grace-period numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuits.builder import LogicBuilder
from repro.circuits.library import CellLibrary

from .dual_rail import DualRailCircuit, DualRailSignal, OneOfNSignal, SpacerPolarity


@dataclass
class CompletionInfo:
    """Description of the completion-detection network added to a circuit.

    Attributes
    ----------
    done_net:
        Name of the completion (done) output net.
    scheme:
        ``"reduced"`` or ``"full"``.
    detector_cells:
        Number of cells added for per-output validity detection.
    aggregator_cells:
        Number of cells added to combine the validity signals.
    delay_cells:
        Number of cells added to implement the asymmetric done-fall delay
        (reduced scheme only).
    """

    done_net: str
    scheme: str
    detector_cells: int
    aggregator_cells: int
    delay_cells: int

    @property
    def total_cells(self) -> int:
        """Total cell overhead of the CD network."""
        return self.detector_cells + self.aggregator_cells + self.delay_cells


@dataclass
class GracePeriod:
    """Timing-assumption numbers of the reduced CD scheme (Section III-A)."""

    t_int: float
    t_io: float
    vdd: float

    @property
    def td(self) -> float:
        """Extra delay required on the falling edge of done: ``max(0, t_int − t_io)``."""
        return max(0.0, self.t_int - self.t_io)

    @property
    def t_done_fall(self) -> float:
        """Time of the 1→0 transition of done after inputs return to spacer."""
        return self.t_io + self.td


def _validity_nets(
    builder: LogicBuilder,
    outputs: Sequence[DualRailSignal],
    one_of_n_outputs: Sequence[OneOfNSignal],
) -> Tuple[List[str], int]:
    """Create one "this output is valid" net per output port.

    For an all-zero-spacer pair, validity is ``OR(p, n)``; for an
    all-one-spacer pair it is ``NAND(p, n)`` (one rail has dropped).  1-of-n
    ports are handled analogously over all of their rails.  Every detector
    output is active-high.
    """
    nets: List[str] = []
    cells = 0
    for sig in outputs:
        if sig.polarity is SpacerPolarity.ALL_ZERO:
            net = builder.or_(sig.pos, sig.neg)
        else:
            net = builder.nand(sig.pos, sig.neg)
        cells += 1
        nets.append(net)
    for sig in one_of_n_outputs:
        rails = list(sig.rails)
        if sig.polarity is SpacerPolarity.ALL_ZERO:
            net = builder.or_tree(rails) if len(rails) > 1 else rails[0]
        else:
            inverted = [builder.not_(r) for r in rails]
            cells += len(inverted)
            net = builder.or_tree(inverted) if len(inverted) > 1 else inverted[0]
        # or_tree adds ceil(n/arity)-ish cells; count them by diffing later.
        nets.append(net)
    return nets, cells


def add_completion_detection(
    circuit: DualRailCircuit,
    scheme: str = "reduced",
    done_name: str = "done",
    done_fall_delay: float = 0.0,
    library: Optional[CellLibrary] = None,
) -> CompletionInfo:
    """Add a completion-detection network to *circuit* (in place).

    Parameters
    ----------
    circuit:
        The dual-rail circuit to extend.  Its netlist gains a ``done``
        primary output and the CD cells; ``circuit.done_net`` is updated.
    scheme:
        ``"reduced"`` — validity detectors on the primary outputs + AND-tree
        aggregation (indicates spacer→valid only), the paper's proposal; or
        ``"full"`` — the conventional scheme: validity detectors on **every
        interface pair, primary inputs included**, combined through a
        C-element tree, indicating both spacer→valid and valid→spacer.
        Watching the inputs is what makes full CD pay cells proportional to
        the interface width — the overhead the reduced scheme eliminates.
    done_fall_delay:
        For the reduced scheme, the extra delay ``td`` (in ps) to build into
        the falling edge of done so the environment need not be adapted.
        The delay is realised as a buffer chain feeding an OR gate, which
        postpones only the 1→0 transition.  Requires *library* to size the
        chain.
    library:
        Needed only when ``done_fall_delay`` is non-zero.
    """
    if scheme not in ("reduced", "full"):
        raise ValueError(f"unknown completion scheme {scheme!r}")
    netlist = circuit.netlist
    builder = LogicBuilder(netlist.name, netlist=netlist, prefix="cd_")
    cells_before = netlist.cell_count()

    watched = list(circuit.outputs)
    if scheme == "full":
        # Conventional full CD acknowledges the whole interface: the input
        # pairs join the validity set, so done indicates that inputs *and*
        # outputs completed each phase.  (Input validity leads output
        # validity through the datapath, so done's edges are still
        # output-determined — the cost is structural: detectors and tree
        # stages proportional to the interface width.)
        watched = list(circuit.inputs) + watched
    validity, detector_cells = _validity_nets(builder, watched, circuit.one_of_n_outputs)
    detector_cells = netlist.cell_count() - cells_before

    cells_before_agg = netlist.cell_count()
    if len(validity) == 1:
        aggregated = validity[0]
    elif scheme == "reduced":
        aggregated = builder.and_tree(validity)
    else:
        aggregated = builder.c_tree(validity)
    aggregator_cells = netlist.cell_count() - cells_before_agg

    cells_before_delay = netlist.cell_count()
    done_driver = aggregated
    if scheme == "reduced" and done_fall_delay > 0.0:
        if library is None:
            raise ValueError("a cell library is required to size the done-fall delay chain")
        buf_delay = library.cell_delay("BUF", library.cell("BUF").input_cap)
        stages = max(1, math.ceil(done_fall_delay / buf_delay))
        delayed = aggregated
        for _ in range(stages):
            delayed = builder.buf(delayed)
        # OR keeps done high until the delayed copy has also fallen, delaying
        # only the falling edge; the rising edge still follows `aggregated`.
        done_driver = builder.or_(aggregated, delayed)
    delay_cells = netlist.cell_count() - cells_before_delay

    for cell_name in list(netlist.cells):
        cell = netlist.cells[cell_name]
        if cell_name.startswith("cd_") or cell.name.startswith("cd_"):
            cell.attrs.setdefault("role", "completion-detect")
    builder.output(done_name, done_driver)
    # Mark every cell added by this builder as CD overhead for area reports.
    for cell in netlist.iter_cells():
        out_nets = list(cell.outputs.values())
        if any(n.startswith("cd_") for n in out_nets) or any(
            n.startswith("cd_") for n in cell.inputs.values()
        ):
            cell.attrs.setdefault("role", "completion-detect")

    circuit.done_net = done_name
    info = CompletionInfo(
        done_net=done_name,
        scheme=scheme,
        detector_cells=detector_cells,
        aggregator_cells=aggregator_cells,
        delay_cells=delay_cells,
    )
    circuit.metadata["completion"] = info
    return info


def compute_grace_period(
    circuit: DualRailCircuit,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> GracePeriod:
    """Derive the reduced-CD timing assumption from static timing analysis.

    ``t_int`` is the worst-case arrival (false paths included) on any
    internal net; ``t_io`` the worst-case arrival on any primary-output rail.
    Both the forward (spacer→valid) and reset (valid→spacer) wavefronts
    traverse the same gates in a dual-rail circuit, so the same topological
    analysis bounds both.
    """
    from repro.sim.sta import static_timing_analysis

    report = static_timing_analysis(circuit.netlist, library, vdd=vdd)
    output_rails = set(circuit.all_output_rails())
    if circuit.done_net is not None:
        output_rails.add(circuit.done_net)
    t_io = max((report.arrival.get(n, 0.0) for n in output_rails), default=0.0)
    internal = [n for n in circuit.netlist.nets if n not in output_rails]
    t_int = max((report.arrival.get(n, 0.0) for n in internal), default=0.0)
    return GracePeriod(t_int=t_int, t_io=t_io, vdd=report.vdd)


def completion_overhead_area(circuit: DualRailCircuit, library: CellLibrary) -> float:
    """Total area (µm²) of the cells added for completion detection."""
    total = 0.0
    for cell in circuit.netlist.iter_cells():
        if cell.attrs.get("role") == "completion-detect" and library.has_cell(cell.cell_type):
            total += library.cell(cell.cell_type).area
    return total
