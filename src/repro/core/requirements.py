"""The six correctness requirements of the self-timed methodology.

Section III of the paper enumerates the conditions under which the
early-propagative dual-rail circuit with reduced completion detection is
guaranteed to operate correctly.  This module captures them as data — each
requirement knows *who* is responsible for it (the circuit structure, the
completion-detection network, or the environment) and *which part of this
reproduction* enforces or checks it — so that tests and documentation can
refer to them explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class Responsibility(enum.Enum):
    """Which agent guarantees a requirement."""

    ENVIRONMENT = "environment"
    CIRCUIT_STRUCTURE = "circuit structure"
    COMPLETION_DETECTION = "completion detection"
    TIMING_ASSUMPTION = "timing assumption"


@dataclass(frozen=True)
class Requirement:
    """One of the paper's six correctness requirements."""

    number: int
    text: str
    responsibility: Responsibility
    enforced_by: str


REQUIREMENTS: Tuple[Requirement, ...] = (
    Requirement(
        number=1,
        text="Monotonic switching at the primary inputs.",
        responsibility=Responsibility.ENVIRONMENT,
        enforced_by=(
            "repro.sim.handshake.DualRailEnvironment applies complete spacer or "
            "valid codewords atomically; repro.sim.monitors.MonotonicityMonitor "
            "checks the resulting transitions."
        ),
    ),
    Requirement(
        number=2,
        text="Monotonic switching within the circuit.",
        responsibility=Responsibility.CIRCUIT_STRUCTURE,
        enforced_by=(
            "repro.circuits.validate.check_unate_only rejects non-unate gates; "
            "repro.core.dual_rail.DualRailBuilder only emits unate mappings and "
            "refuses mixed spacer polarities at gate inputs."
        ),
    ),
    Requirement(
        number=3,
        text="Acknowledgment of spacer-to-valid transitions on the primary outputs.",
        responsibility=Responsibility.COMPLETION_DETECTION,
        enforced_by=(
            "repro.core.completion.add_completion_detection inserts per-output "
            "validity detectors aggregated into the done signal."
        ),
    ),
    Requirement(
        number=4,
        text=(
            "Valid-to-spacer on the primary outputs and on internal signals before "
            "new primary inputs are applied."
        ),
        responsibility=Responsibility.TIMING_ASSUMPTION,
        enforced_by=(
            "repro.core.completion.compute_grace_period derives td = t_int - t_io "
            "from static timing analysis; the environment waits the grace period "
            "(or the done-fall delay chain realises it in hardware)."
        ),
    ),
    Requirement(
        number=5,
        text="Primary inputs transition spacer-to-valid and valid-to-spacer for each operand.",
        responsibility=Responsibility.ENVIRONMENT,
        enforced_by=(
            "repro.sim.handshake.DualRailEnvironment.infer always performs the "
            "full valid/spacer cycle for every operand."
        ),
    ),
    Requirement(
        number=6,
        text="Primary inputs transition valid-to-spacer only after spacer-to-valid on the outputs.",
        responsibility=Responsibility.ENVIRONMENT,
        enforced_by=(
            "repro.sim.handshake.DualRailEnvironment.infer removes the operand "
            "only after every output port has produced a valid codeword (and the "
            "done signal, when present, has risen)."
        ),
    ),
)


def requirement(number: int) -> Requirement:
    """Return requirement *number* (1-6)."""
    for req in REQUIREMENTS:
        if req.number == number:
            return req
    raise KeyError(f"no requirement number {number}")


def requirements_by_responsibility() -> Dict[Responsibility, List[Requirement]]:
    """Group the requirements by the agent responsible for them."""
    grouped: Dict[Responsibility, List[Requirement]] = {}
    for req in REQUIREMENTS:
        grouped.setdefault(req.responsibility, []).append(req)
    return grouped


def describe_requirements() -> str:
    """Human-readable summary used by the documentation example."""
    lines = []
    for req in REQUIREMENTS:
        lines.append(f"Requirement {req.number} ({req.responsibility.value}): {req.text}")
        lines.append(f"    enforced by: {req.enforced_by}")
    return "\n".join(lines)
