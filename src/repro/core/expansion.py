"""Direct mapping of single-rail netlists into dual-rail netlists.

The paper derives its dual-rail circuits "by performing direct mapping of a
single-rail circuit, and along with negative gate optimization" (Section
IV-A, following Sokolov's direct-mapping methodology).  This module
implements that flow generically: given any single-rail combinational
netlist built from the supported cell types, :func:`expand_to_dual_rail`
produces the equivalent dual-rail netlist, tracking spacer polarity through
every gate and inserting spacer inverters automatically wherever
reconvergent paths would otherwise disagree.

The expansion rules (for inputs of matching polarity):

=============  =======================================================
single-rail    dual-rail implementation
=============  =======================================================
``INV``        rail swap (no cells)
``BUF``        pass-through (no cells)
``AND``/``OR`` negative-gate pair (NOR+NAND / NAND+NOR) or positive
               pair (AND+OR / OR+AND), per the *negative_gates* option
``NAND``       AND expansion followed by a rail swap
``NOR``        OR expansion followed by a rail swap
``AOI``/``OAI``  corresponding AND/OR network, then rail swap
``XOR``        two AO22/AOI22 complex gates (each rail is a unate cell)
``XNOR``       XOR expansion followed by a rail swap
=============  =======================================================

The headline datapaths in :mod:`repro.datapath` are built directly at the
dual-rail level (mirroring the paper's hand-crafted Figure 2); the expansion
is used for the generic-methodology experiments, for equivalence checking
against the hand-built circuits, and for the completion-detection ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuits.gates import gate_spec
from repro.circuits.netlist import Netlist

from .dual_rail import DualRailBuilder, DualRailCircuit, DualRailSignal, SpacerPolarity


class ExpansionError(Exception):
    """Raised when a single-rail construct has no dual-rail mapping."""


def _align(builder: DualRailBuilder, signals: Sequence[DualRailSignal]) -> List[DualRailSignal]:
    """Bring *signals* to a common spacer polarity (majority wins)."""
    zeros = sum(1 for s in signals if s.polarity is SpacerPolarity.ALL_ZERO)
    ones = len(signals) - zeros
    target = SpacerPolarity.ALL_ZERO if zeros >= ones else SpacerPolarity.ALL_ONE
    return [builder.align_polarity(s, target) for s in signals]


def _reduce(builder: DualRailBuilder, op, signals: Sequence[DualRailSignal]) -> DualRailSignal:
    """Left-to-right reduction with polarity alignment before each step."""
    result = signals[0]
    for nxt in signals[1:]:
        a, b = _align(builder, [result, nxt])
        result = op(a, b)
    return result


def expand_to_dual_rail(
    netlist: Netlist,
    negative_gates: bool = True,
    input_polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO,
    name: Optional[str] = None,
) -> DualRailCircuit:
    """Expand a single-rail combinational *netlist* into a dual-rail circuit.

    Parameters
    ----------
    netlist:
        Single-rail design.  Sequential cells (DFF) are rejected — the
        dual-rail datapath replaces registers with C-element latches, which
        is a architectural decision the caller makes explicitly.
    negative_gates:
        Use the area-saving negative-gate mapping (default, as in the paper).
    input_polarity:
        Spacer polarity presented at the expanded primary inputs.
    name:
        Name of the produced netlist (defaults to ``<original>_dual_rail``).
    """
    builder = DualRailBuilder(
        name or f"{netlist.name}_dual_rail", negative_gates=negative_gates
    )
    signals: Dict[str, DualRailSignal] = {}

    for pi in netlist.primary_inputs:
        signals[pi] = builder.input_bit(pi, polarity=input_polarity)

    for cell in netlist.topological_order():
        ctype = cell.cell_type
        spec = gate_spec(ctype)
        if spec.sequential:
            raise ExpansionError(
                f"cell {cell.name!r} ({ctype}) is sequential; direct mapping only "
                "expands combinational logic"
            )
        out_net = next(iter(cell.outputs.values()))
        ins = [signals[n] for n in cell.inputs.values() if n in signals]
        if len(ins) != len(cell.inputs):
            missing = [n for n in cell.inputs.values() if n not in signals]
            raise ExpansionError(
                f"cell {cell.name!r} reads nets with no dual-rail expansion: {missing}"
            )

        if ctype == "INV":
            signals[out_net] = builder.not_(ins[0], name=out_net)
        elif ctype == "BUF":
            signals[out_net] = DualRailSignal(
                name=out_net, pos=ins[0].pos, neg=ins[0].neg, polarity=ins[0].polarity
            )
        elif ctype in ("TIE0", "TIE1"):
            signals[out_net] = builder.constant(1 if ctype == "TIE1" else 0, input_polarity)
        elif ctype.startswith("AND"):
            signals[out_net] = _reduce(builder, builder.and_, ins)
        elif ctype.startswith("NAND"):
            signals[out_net] = builder.not_(_reduce(builder, builder.and_, ins), name=out_net)
        elif ctype.startswith("OR"):
            signals[out_net] = _reduce(builder, builder.or_, ins)
        elif ctype.startswith("NOR"):
            signals[out_net] = builder.not_(_reduce(builder, builder.or_, ins), name=out_net)
        elif ctype in ("XOR2", "XNOR2"):
            a, b = _align(builder, ins)
            result = builder.xor(a, b, name=out_net)
            if ctype == "XNOR2":
                result = builder.not_(result, name=out_net)
            signals[out_net] = result
        elif ctype.startswith("AOI") or ctype.startswith("AO"):
            groups = _complex_groups(ctype)
            value = _and_or_network(builder, ins, groups)
            if ctype.startswith("AOI"):
                value = builder.not_(value, name=out_net)
            signals[out_net] = value
        elif ctype.startswith("OAI") or ctype.startswith("OA"):
            groups = _complex_groups(ctype)
            value = _or_and_network(builder, ins, groups)
            if ctype.startswith("OAI"):
                value = builder.not_(value, name=out_net)
            signals[out_net] = value
        elif ctype == "MAJ3":
            a, b, c = ins
            ab = builder.and_(*_align(builder, [a, b]))
            ac = builder.and_(*_align(builder, [a, c]))
            bc = builder.and_(*_align(builder, [b, c]))
            signals[out_net] = _reduce(builder, builder.or_, [ab, ac, bc])
        else:
            raise ExpansionError(f"no dual-rail expansion rule for cell type {ctype!r}")

    circuit_outputs: List[str] = list(netlist.primary_outputs)
    for po in circuit_outputs:
        if po not in signals:
            if po in netlist.primary_inputs:
                signals[po] = signals[po]
            else:
                raise ExpansionError(f"primary output {po!r} was never driven during expansion")
        builder.output_bit(po, signals[po])

    circuit = builder.build(metadata={"expanded_from": netlist.name,
                                      "negative_gates": negative_gates})
    return circuit


def _complex_groups(ctype: str) -> List[int]:
    """Extract the leg widths from an AOI/OAI/AO/OA cell name (e.g. AOI22 -> [2, 2])."""
    digits = "".join(ch for ch in ctype if ch.isdigit())
    return [int(ch) for ch in digits]


def _and_or_network(builder: DualRailBuilder, ins: Sequence[DualRailSignal],
                    groups: Sequence[int]) -> DualRailSignal:
    """Dual-rail (AND legs) OR (AND legs) network used for AOI/AO expansion."""
    terms: List[DualRailSignal] = []
    idx = 0
    for width in groups:
        leg = list(ins[idx: idx + width])
        idx += width
        if len(leg) == 1:
            terms.append(leg[0])
        else:
            terms.append(_reduce(builder, builder.and_, leg))
    return _reduce(builder, builder.or_, terms)


def _or_and_network(builder: DualRailBuilder, ins: Sequence[DualRailSignal],
                    groups: Sequence[int]) -> DualRailSignal:
    """Dual-rail (OR legs) AND (OR legs) network used for OAI/OA expansion."""
    terms: List[DualRailSignal] = []
    idx = 0
    for width in groups:
        leg = list(ins[idx: idx + width])
        idx += width
        if len(leg) == 1:
            terms.append(leg[0])
        else:
            terms.append(_reduce(builder, builder.or_, leg))
    return _reduce(builder, builder.and_, terms)
