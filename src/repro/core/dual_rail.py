"""Dual-rail encoding and construction of dual-rail netlists.

Encoding convention
-------------------
A single bit ``x`` is carried by two wires ``{xp, xn}`` (positive and
negative rail).  A *valid* codeword always has ``xp = x`` and ``xn = NOT x``
regardless of spacer polarity; what changes with polarity is the *spacer*
(empty) state that separates successive codewords in time:

========================  ===========  ===========
state                     all-zero     all-one
                          spacer       spacer
========================  ===========  ===========
spacer                    ``(0, 0)``   ``(1, 1)``
valid ``x = 0``           ``(0, 1)``   ``(0, 1)``
valid ``x = 1``           ``(1, 0)``   ``(1, 0)``
forbidden                 ``(1, 1)``   ``(0, 0)``
========================  ===========  ===========

Gate mapping (Section III / IV of the paper)
--------------------------------------------
* a **positive** (non-inverting) dual-rail gate preserves spacer polarity:
  AND → ``zp = AND(ap, bp)``, ``zn = OR(an, bn)``;
* a **negative** (inverting) dual-rail gate — the *negative gate
  optimisation* of Sokolov used by the paper — flips spacer polarity and
  halves the inversion overhead: AND → ``zp = NOR(an, bn)``,
  ``zn = NAND(ap, bp)``;
* dual-rail **NOT** is free: it is just a rail swap;
* a **spacer inverter** (two INV cells, ``out_p = INV(in_n)``,
  ``out_n = INV(in_p)``) converts between spacer polarities while keeping the
  data value — the paper inserts two of them inside the population counter.

:class:`DualRailBuilder` constructs dual-rail netlists directly at this
level, tracking the spacer polarity of every signal and refusing to combine
signals of mismatched polarity (which would silently break spacer
propagation, one of the classic dual-rail design errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.builder import LogicBuilder
from repro.circuits.gates import LogicValue
from repro.circuits.netlist import Netlist, NetlistError


class SpacerPolarity(enum.Enum):
    """Polarity of the spacer state of a dual-rail signal."""

    ALL_ZERO = "all-zero"
    ALL_ONE = "all-one"

    def flipped(self) -> "SpacerPolarity":
        """Return the opposite polarity."""
        return SpacerPolarity.ALL_ONE if self is SpacerPolarity.ALL_ZERO else SpacerPolarity.ALL_ZERO

    @property
    def spacer_rail_value(self) -> int:
        """Value carried by *both* rails in the spacer state."""
        return 0 if self is SpacerPolarity.ALL_ZERO else 1


@dataclass(frozen=True)
class DualRailSignal:
    """A dual-rail encoded bit inside a netlist.

    Attributes
    ----------
    name:
        Logical (single-rail) name of the bit.
    pos / neg:
        Net names of the positive and negative rails.
    polarity:
        Spacer polarity of the signal at this point in the circuit.
    """

    name: str
    pos: str
    neg: str
    polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO

    def rails(self) -> Tuple[str, str]:
        """Return ``(pos, neg)`` net names."""
        return (self.pos, self.neg)

    def swapped(self, name: Optional[str] = None) -> "DualRailSignal":
        """Return the logical complement (rails swapped, same polarity)."""
        return DualRailSignal(
            name=name if name is not None else f"not_{self.name}",
            pos=self.neg,
            neg=self.pos,
            polarity=self.polarity,
        )


# --------------------------------------------------------------------------
# Encoding helpers (used by the simulation environment and the tests)
# --------------------------------------------------------------------------

def encode_bit(value: int, polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> Tuple[int, int]:
    """Encode a Boolean *value* as a valid dual-rail codeword ``(pos, neg)``."""
    value = int(bool(value))
    return (value, 1 - value)


def spacer_word(polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> Tuple[int, int]:
    """Return the spacer codeword for the given *polarity*."""
    v = polarity.spacer_rail_value
    return (v, v)


def decode_pair(pos: LogicValue, neg: LogicValue,
                polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> Optional[int]:
    """Decode a rail pair.

    Returns the Boolean value for a valid codeword, ``None`` for the spacer
    state, and raises :class:`ValueError` for the forbidden state or unknown
    (``X``) rails.
    """
    if pos is None or neg is None:
        raise ValueError(f"rails carry unknown values: ({pos}, {neg})")
    s = polarity.spacer_rail_value
    if (pos, neg) == (s, s):
        return None
    if (pos, neg) == (1 - s, 1 - s):
        raise ValueError(f"forbidden dual-rail state ({pos}, {neg}) for {polarity.value} spacer")
    return int(pos)


def is_valid_codeword(pos: LogicValue, neg: LogicValue) -> bool:
    """``True`` when the rail pair is a valid (non-spacer) codeword."""
    return pos is not None and neg is not None and pos != neg


def is_spacer(pos: LogicValue, neg: LogicValue,
              polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> bool:
    """``True`` when the rail pair is the spacer state for *polarity*."""
    s = polarity.spacer_rail_value
    return pos == s and neg == s


# --------------------------------------------------------------------------
# Dual-rail circuit container
# --------------------------------------------------------------------------

@dataclass
class OneOfNSignal:
    """A 1-of-n encoded signal (a superset of dual-rail, Section IV-C).

    Attributes
    ----------
    name:
        Logical signal name.
    rails:
        Net names; exactly one is high in a valid codeword, all are at the
        spacer value otherwise.
    labels:
        Meaning of each rail (e.g. ``("less", "equal", "greater")``).
    polarity:
        Spacer polarity (all rails at 0 or all at 1).
    """

    name: str
    rails: Tuple[str, ...]
    labels: Tuple[str, ...]
    polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO


@dataclass
class DualRailCircuit:
    """A dual-rail netlist plus its interface description.

    This is the object consumed by the dual-rail simulation environment
    (:mod:`repro.sim.handshake`), the completion-detection generator
    (:mod:`repro.core.completion`) and the reporting flow.
    """

    netlist: Netlist
    inputs: List[DualRailSignal] = field(default_factory=list)
    outputs: List[DualRailSignal] = field(default_factory=list)
    one_of_n_outputs: List[OneOfNSignal] = field(default_factory=list)
    done_net: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def input_by_name(self, name: str) -> DualRailSignal:
        """Look up an input signal by logical name."""
        for sig in self.inputs:
            if sig.name == name:
                return sig
        raise KeyError(f"no dual-rail input named {name!r}")

    def output_by_name(self, name: str) -> DualRailSignal:
        """Look up an output signal by logical name."""
        for sig in self.outputs:
            if sig.name == name:
                return sig
        raise KeyError(f"no dual-rail output named {name!r}")

    def all_output_rails(self) -> List[str]:
        """Every primary-output rail net (dual-rail and 1-of-n)."""
        rails: List[str] = []
        for sig in self.outputs:
            rails.extend(sig.rails())
        for sig in self.one_of_n_outputs:
            rails.extend(sig.rails)
        return rails

    def all_input_rails(self) -> List[str]:
        """Every primary-input rail net."""
        rails: List[str] = []
        for sig in self.inputs:
            rails.extend(sig.rails())
        return rails


# --------------------------------------------------------------------------
# Builder
# --------------------------------------------------------------------------

class DualRailBuilder:
    """Construct dual-rail netlists gate by gate with polarity tracking.

    Parameters
    ----------
    name:
        Name of the netlist being built.
    negative_gates:
        When ``True`` (the default, matching the paper's *negative gate
        optimisation*) two-input AND/OR functions are realised with
        NAND/NOR pairs, which flips the spacer polarity of their outputs.
        When ``False`` the positive AND/OR mapping is used and polarity is
        preserved.
    """

    def __init__(self, name: str, negative_gates: bool = True) -> None:
        self.logic = LogicBuilder(name)
        self.negative_gates = negative_gates
        self.inputs: List[DualRailSignal] = []
        self.outputs: List[DualRailSignal] = []
        self.one_of_n_outputs: List[OneOfNSignal] = []
        self._constants: Dict[Tuple[int, SpacerPolarity], DualRailSignal] = {}

    # ---------------------------------------------------------------- ports
    @property
    def netlist(self) -> Netlist:
        """The netlist under construction."""
        return self.logic.netlist

    def input_bit(self, name: str,
                  polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> DualRailSignal:
        """Declare a dual-rail primary input (two rail nets ``name_p``/``name_n``)."""
        pos, neg = f"{name}_p", f"{name}_n"
        self.logic.input(pos)
        self.logic.input(neg)
        sig = DualRailSignal(name=name, pos=pos, neg=neg, polarity=polarity)
        self.inputs.append(sig)
        return sig

    def input_bus(self, name: str, width: int,
                  polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> List[DualRailSignal]:
        """Declare *width* dual-rail inputs ``name[0] … name[width-1]``."""
        return [self.input_bit(f"{name}[{i}]", polarity) for i in range(width)]

    def output_bit(self, name: str, signal: DualRailSignal) -> DualRailSignal:
        """Expose *signal* as a dual-rail primary output called *name*."""
        pos, neg = f"{name}_p", f"{name}_n"
        if signal.pos != pos:
            self.logic.output(pos, signal.pos)
        else:
            self.logic.output(pos)
        if signal.neg != neg:
            self.logic.output(neg, signal.neg)
        else:
            self.logic.output(neg)
        out_sig = DualRailSignal(name=name, pos=pos, neg=neg, polarity=signal.polarity)
        self.outputs.append(out_sig)
        return out_sig

    def one_of_n_output(self, name: str, rail_nets: Sequence[str], labels: Sequence[str],
                        polarity: SpacerPolarity) -> OneOfNSignal:
        """Expose a 1-of-n encoded primary output (e.g. the comparator result)."""
        if len(rail_nets) != len(labels):
            raise NetlistError("one_of_n_output needs one label per rail")
        exported: List[str] = []
        for label, net in zip(labels, rail_nets):
            out_name = f"{name}_{label}"
            if net != out_name:
                self.logic.output(out_name, net)
            else:
                self.logic.output(out_name)
            exported.append(out_name)
        sig = OneOfNSignal(name=name, rails=tuple(exported), labels=tuple(labels),
                           polarity=polarity)
        self.one_of_n_outputs.append(sig)
        return sig

    # ------------------------------------------------------------ primitives
    def constant(self, value: int,
                 polarity: SpacerPolarity = SpacerPolarity.ALL_ZERO) -> DualRailSignal:
        """A constant dual-rail signal (always presents a valid codeword).

        Constants never return to spacer; they are only safe to use where the
        surrounding logic re-establishes spacer through its other inputs
        (e.g. padding unused population-count inputs with logic-0 votes).
        """
        key = (int(bool(value)), polarity)
        if key not in self._constants:
            pos = self.logic.tie(value)
            neg = self.logic.tie(1 - int(bool(value)))
            self._constants[key] = DualRailSignal(
                name=f"const{value}", pos=pos, neg=neg, polarity=polarity
            )
        return self._constants[key]

    def not_(self, a: DualRailSignal, name: Optional[str] = None) -> DualRailSignal:
        """Dual-rail inversion: a free rail swap (no cells, no delay)."""
        return a.swapped(name)

    def _check_polarity(self, *signals: DualRailSignal) -> SpacerPolarity:
        polarities = {s.polarity for s in signals}
        if len(polarities) != 1:
            detail = ", ".join(f"{s.name}:{s.polarity.value}" for s in signals)
            raise NetlistError(
                f"mixed spacer polarities at gate inputs ({detail}); insert a spacer inverter"
            )
        return signals[0].polarity

    def and_(self, a: DualRailSignal, b: DualRailSignal,
             name: Optional[str] = None) -> DualRailSignal:
        """Dual-rail two-input AND.

        Uses the negative-gate mapping (NOR/NAND pair, flips polarity) when
        the builder was constructed with ``negative_gates=True``; otherwise
        the positive AND/OR mapping (polarity preserved).
        """
        polarity = self._check_polarity(a, b)
        hint = name if name is not None else f"and_{a.name}_{b.name}"
        if self.negative_gates:
            pos = self.logic.nor(a.neg, b.neg)
            neg = self.logic.nand(a.pos, b.pos)
            out_pol = polarity.flipped()
        else:
            pos = self.logic.and_(a.pos, b.pos)
            neg = self.logic.or_(a.neg, b.neg)
            out_pol = polarity
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=out_pol)

    def or_(self, a: DualRailSignal, b: DualRailSignal,
            name: Optional[str] = None) -> DualRailSignal:
        """Dual-rail two-input OR (polarity behaviour as :meth:`and_`)."""
        polarity = self._check_polarity(a, b)
        hint = name if name is not None else f"or_{a.name}_{b.name}"
        if self.negative_gates:
            pos = self.logic.nand(a.neg, b.neg)
            neg = self.logic.nor(a.pos, b.pos)
            out_pol = polarity.flipped()
        else:
            pos = self.logic.or_(a.pos, b.pos)
            neg = self.logic.and_(a.neg, b.neg)
            out_pol = polarity
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=out_pol)

    def and_positive(self, a: DualRailSignal, b: DualRailSignal,
                     name: Optional[str] = None) -> DualRailSignal:
        """Dual-rail AND forced to the positive mapping (polarity preserved)."""
        polarity = self._check_polarity(a, b)
        hint = name if name is not None else f"and_{a.name}_{b.name}"
        pos = self.logic.and_(a.pos, b.pos)
        neg = self.logic.or_(a.neg, b.neg)
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=polarity)

    def or_positive(self, a: DualRailSignal, b: DualRailSignal,
                    name: Optional[str] = None) -> DualRailSignal:
        """Dual-rail OR forced to the positive mapping (polarity preserved).

        This is the "dual-rail OR gate ... internally constructed from one OR
        gate and one AND gate" used inside the population counter.
        """
        polarity = self._check_polarity(a, b)
        hint = name if name is not None else f"or_{a.name}_{b.name}"
        pos = self.logic.or_(a.pos, b.pos)
        neg = self.logic.and_(a.neg, b.neg)
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=polarity)

    def xor(self, a: DualRailSignal, b: DualRailSignal,
            name: Optional[str] = None) -> DualRailSignal:
        """Dual-rail XOR built from unate complex gates (half-adder sum).

        ``zp = (a & ~b) | (~a & b)`` and ``zn = (a & b) | (~a & ~b)``; with
        the negative-gate optimisation each rail is a single AOI22 cell
        driven by the appropriate rails, so the cell itself stays unate even
        though the *function* is not — monotonicity is guaranteed by the
        one-hot nature of the rail pairs.
        """
        polarity = self._check_polarity(a, b)
        hint = name if name is not None else f"xor_{a.name}_{b.name}"
        if self.negative_gates:
            # AOI22 on the opposite rails gives the inverted-spacer output.
            pos = self.logic.aoi22(a.pos, b.pos, a.neg, b.neg)
            neg = self.logic.aoi22(a.pos, b.neg, a.neg, b.pos)
            return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=polarity.flipped())
        pos_t1 = self.logic.and_(a.pos, b.neg)
        pos_t2 = self.logic.and_(a.neg, b.pos)
        pos = self.logic.or_(pos_t1, pos_t2)
        neg_t1 = self.logic.and_(a.pos, b.pos)
        neg_t2 = self.logic.and_(a.neg, b.neg)
        neg = self.logic.or_(neg_t1, neg_t2)
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=polarity)

    def spacer_inverter(self, a: DualRailSignal, name: Optional[str] = None) -> DualRailSignal:
        """Spacer inverter: two INV cells, flips polarity, preserves the value."""
        hint = name if name is not None else f"spinv_{a.name}"
        pos = self.logic.cell("INV", [a.neg], attrs={"role": "spacer-inverter"})
        neg = self.logic.cell("INV", [a.pos], attrs={"role": "spacer-inverter"})
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=a.polarity.flipped())

    def align_polarity(self, a: DualRailSignal, polarity: SpacerPolarity) -> DualRailSignal:
        """Return *a*, inserting a spacer inverter if its polarity differs."""
        if a.polarity is polarity:
            return a
        return self.spacer_inverter(a)

    def c_element_latch(self, a: DualRailSignal, name: Optional[str] = None,
                        enable: Optional[str] = None) -> DualRailSignal:
        """Latch a dual-rail input through per-rail C-elements.

        The paper's dual-rail design uses C-elements as input latches (their
        area is what the Table-I "sequential area" column counts for the
        dual-rail circuits).  Each rail gets its own C-element; when *enable*
        is given it is the second C-element input (a request/acknowledge
        signal), otherwise the rail is simply latched against itself through a
        2-input C-element with both inputs tied to the rail, modelling the
        storage overhead without altering the protocol.
        """
        hint = name if name is not None else f"lat_{a.name}"
        other_p = enable if enable is not None else a.pos
        other_n = enable if enable is not None else a.neg
        pos = self.logic.c_element(a.pos, other_p, name=f"{hint}_cp")
        neg = self.logic.c_element(a.neg, other_n, name=f"{hint}_cn")
        return DualRailSignal(name=hint, pos=pos, neg=neg, polarity=a.polarity)

    # ------------------------------------------------------------ reduction
    def and_tree(self, signals: Sequence[DualRailSignal],
                 name: Optional[str] = None) -> DualRailSignal:
        """Balanced dual-rail AND tree (clause aggregation)."""
        return self._tree(self.and_, signals, name or "and_tree")

    def or_tree(self, signals: Sequence[DualRailSignal],
                name: Optional[str] = None) -> DualRailSignal:
        """Balanced dual-rail OR tree."""
        return self._tree(self.or_, signals, name or "or_tree")

    def _tree(self, op, signals: Sequence[DualRailSignal], name: str) -> DualRailSignal:
        if not signals:
            raise NetlistError("cannot reduce an empty signal list")
        level = list(signals)
        if len(level) == 1:
            return level[0]
        round_idx = 0
        while len(level) > 1:
            # Alternating negative-gate levels flip polarity consistently for
            # every member of the level, so pairs always match.
            nxt: List[DualRailSignal] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                leftover = level[-1]
                if nxt and leftover.polarity is not nxt[0].polarity:
                    leftover = self.spacer_inverter(leftover)
                nxt.append(leftover)
            level = nxt
            round_idx += 1
        result = level[0]
        return DualRailSignal(name=name, pos=result.pos, neg=result.neg,
                              polarity=result.polarity)

    # --------------------------------------------------------------- export
    def build(self, name: Optional[str] = None, done_net: Optional[str] = None,
              metadata: Optional[Dict[str, object]] = None) -> DualRailCircuit:
        """Package the constructed netlist into a :class:`DualRailCircuit`."""
        if name is not None:
            self.netlist.name = name
        circuit = DualRailCircuit(
            netlist=self.netlist,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            one_of_n_outputs=list(self.one_of_n_outputs),
            done_net=done_net,
            metadata=dict(metadata or {}),
        )
        return circuit
