"""End-to-end "synthesis" flow: map, check, report.

This is the stand-in for the paper's Synopsys Design Compiler runs: the
input is a structural netlist (hand-architected, exactly as in the paper),
the output is a mapped netlist plus the area/leakage/timing reports that
feed Table I.  No logic restructuring is attempted — the paper's circuits
are already architected at cell granularity, so "synthesis" is technology
mapping plus reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.circuits.validate import ValidationReport, check_structure, check_unate_only
from repro.sim.sta import TimingReport, register_to_register_period

from .mapping import map_to_library
from .reports import AreaReport, LeakageReport, area_report, leakage_report, timing_report


@dataclass
class SynthesisResult:
    """Everything the reporting layer needs about one mapped design."""

    design_name: str
    library_name: str
    netlist: Netlist
    area: AreaReport
    leakage: LeakageReport
    timing: TimingReport
    clock_period: Optional[float]
    validation: ValidationReport

    @property
    def is_sequentially_clocked(self) -> bool:
        """``True`` for the synchronous baseline (a clock period was computed)."""
        return self.clock_period is not None


def synthesize(
    netlist: Netlist,
    library: CellLibrary,
    vdd: Optional[float] = None,
    clocked: bool = False,
    enforce_unate: bool = False,
) -> SynthesisResult:
    """Map *netlist* onto *library* and produce its reports.

    Parameters
    ----------
    clocked:
        ``True`` for the synchronous baseline: the timing report breaks
        paths at flip-flops and a minimum clock period is computed.
    enforce_unate:
        ``True`` for dual-rail designs: the mapped netlist is checked to
        contain unate cells only (Requirement 2), and a violation is
        recorded in the validation report.
    """
    mapped = map_to_library(netlist, library)
    validation = check_structure(mapped)
    if enforce_unate:
        validation.extend(check_unate_only(mapped))
    area = area_report(mapped, library)
    leak = leakage_report(mapped, library, vdd=vdd)
    timing = timing_report(mapped, library, vdd=vdd, break_at_sequential=clocked)
    clock_period = (
        register_to_register_period(mapped, library, vdd=vdd) if clocked else None
    )
    return SynthesisResult(
        design_name=netlist.name,
        library_name=library.name,
        netlist=mapped,
        area=area,
        leakage=leak,
        timing=timing,
        clock_period=clock_period,
        validation=validation,
    )
