"""End-to-end "synthesis" flow: map, check, report.

This is the stand-in for the paper's Synopsys Design Compiler runs: the
input is a structural netlist (hand-architected, exactly as in the paper),
the output is a mapped netlist plus the area/leakage/timing reports that
feed Table I.  No logic restructuring is attempted — the paper's circuits
are already architected at cell granularity, so "synthesis" is technology
mapping plus reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.circuits.validate import (
    ValidationReport,
    check_connectivity,
    check_structure,
    check_unate_only,
)
from repro.sim.sta import TimingReport, register_to_register_period

from .mapping import map_to_library
from .reports import AreaReport, LeakageReport, area_report, leakage_report, timing_report


@dataclass
class HdlExportOptions:
    """Configuration of the post-mapping HDL export hook of :func:`synthesize`.

    Attributes
    ----------
    directory:
        Where to write ``<design>.v`` / ``primitives.v`` / ``tb_<design>.v``;
        ``None`` keeps the export in memory only.
    testbench:
        Generate the self-checking testbench (skipped automatically for
        clocked netlists).
    testbench_vectors / roundtrip_vectors / seed:
        Passed through to :func:`repro.hdl.export.export_netlist`.
    verify:
        Run the emit → parse → equivalence round trip on the mapped netlist.
    """

    directory: Optional[str] = None
    testbench: bool = True
    testbench_vectors: int = 32
    verify: bool = True
    roundtrip_vectors: int = 256
    seed: int = 2021


@dataclass
class SynthesisResult:
    """Everything the reporting layer needs about one mapped design."""

    design_name: str
    library_name: str
    netlist: Netlist
    area: AreaReport
    leakage: LeakageReport
    timing: TimingReport
    clock_period: Optional[float]
    validation: ValidationReport
    hdl: Optional[object] = field(default=None, repr=False)

    @property
    def is_sequentially_clocked(self) -> bool:
        """``True`` for the synchronous baseline (a clock period was computed)."""
        return self.clock_period is not None

    def metrics(self) -> dict:
        """Flat scalar summary of the mapped design — the DSE area hook.

        The design-space exploration records these alongside the simulated
        quantities; keeping the extraction here means any future report
        column (e.g. routed wirelength) becomes sweepable by adding it once.
        """
        return {
            "area_um2": self.area.total,
            "sequential_area_um2": self.area.sequential,
            "combinational_area_um2": self.area.combinational,
            "completion_detection_area_um2": self.area.completion_detection,
            "cell_count": self.area.cell_count,
            "sequential_cell_count": self.area.sequential_cell_count,
            "leakage_nw": self.leakage.total_nw,
            "critical_path_ps": self.timing.max_over_outputs,
            "clock_period_ps": self.clock_period,
        }


def synthesize(
    netlist: Netlist,
    library: CellLibrary,
    vdd: Optional[float] = None,
    clocked: bool = False,
    enforce_unate: bool = False,
    export: Optional[Union[str, HdlExportOptions]] = None,
) -> SynthesisResult:
    """Map *netlist* onto *library* and produce its reports.

    Parameters
    ----------
    clocked:
        ``True`` for the synchronous baseline: the timing report breaks
        paths at flip-flops and a minimum clock period is computed.
    enforce_unate:
        ``True`` for dual-rail designs: the mapped netlist is checked to
        contain unate cells only (Requirement 2), and a violation is
        recorded in the validation report.
    export:
        Post-mapping HDL export hook.  Pass a directory path (shorthand) or
        an :class:`HdlExportOptions` to emit the mapped netlist as
        structural Verilog plus behavioral primitives and a self-checking
        testbench, round-trip verified in-process.  The resulting
        :class:`repro.hdl.export.HdlExport` lands on ``result.hdl``.
        Export refuses netlists whose validation found errors.
    """
    mapped = map_to_library(netlist, library)
    validation = check_structure(mapped)
    validation.extend(check_connectivity(mapped))
    if enforce_unate:
        validation.extend(check_unate_only(mapped))
    area = area_report(mapped, library)
    leak = leakage_report(mapped, library, vdd=vdd)
    timing = timing_report(mapped, library, vdd=vdd, break_at_sequential=clocked)
    clock_period = (
        register_to_register_period(mapped, library, vdd=vdd) if clocked else None
    )
    hdl = None
    if export is not None:
        if validation.errors:
            raise ValueError(
                f"refusing HDL export of {netlist.name!r}: validation found "
                f"{len(validation.errors)} error(s), e.g. {validation.errors[0]}"
            )
        options = (
            export if isinstance(export, HdlExportOptions)
            else HdlExportOptions(directory=export)
        )
        # Imported here so repro.synth stays importable without repro.hdl
        # (and to keep the dependency direction hdl -> circuits one-way).
        from repro.hdl.export import export_netlist

        hdl = export_netlist(
            mapped,
            directory=options.directory,
            testbench=options.testbench,
            testbench_vectors=options.testbench_vectors,
            verify=options.verify,
            roundtrip_vectors=options.roundtrip_vectors,
            seed=options.seed,
        )
    return SynthesisResult(
        design_name=netlist.name,
        library_name=library.name,
        netlist=mapped,
        area=area,
        leakage=leak,
        timing=timing,
        clock_period=clock_period,
        validation=validation,
        hdl=hdl,
    )
