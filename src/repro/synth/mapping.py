"""Technology mapping: adapt a generic netlist to a target cell library.

The generators in :mod:`repro.datapath` emit generic cell types.  Most map
one-to-one onto both libraries, but the FULL DIFFUSION library lacks the
AOI32/OAI32 complex cells (the paper notes this — it is why its C-element
latch costs four simple gates instead of one complex gate).  This module
decomposes any cell type the target library does not characterise into an
equivalent sub-netlist of available cells, leaving everything else
untouched — the same job logic synthesis performs after technology mapping.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict

from repro.circuits.builder import LogicBuilder
from repro.circuits.gates import gate_spec
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Cell, Netlist


class MappingError(Exception):
    """Raised when a cell type cannot be realised in the target library."""


def _decompose_aoi32(builder: LogicBuilder, cell: Cell) -> None:
    """AOI32 → AND3 + AND2 + NOR2 (Y = NOT((A1&A2&A3) | (B1&B2)))."""
    a = builder.and_(cell.inputs["A1"], cell.inputs["A2"], cell.inputs["A3"])
    b = builder.and_(cell.inputs["B1"], cell.inputs["B2"])
    builder.nor(a, b, output=cell.outputs["Y"])


def _decompose_oai32(builder: LogicBuilder, cell: Cell) -> None:
    """OAI32 → OR3 + OR2 + NAND2 (Y = NOT((A1|A2|A3) & (B1|B2)))."""
    a = builder.or_(cell.inputs["A1"], cell.inputs["A2"], cell.inputs["A3"])
    b = builder.or_(cell.inputs["B1"], cell.inputs["B2"])
    builder.nand(a, b, output=cell.outputs["Y"])


def _decompose_ao22(builder: LogicBuilder, cell: Cell) -> None:
    """AO22 → AND2 + AND2 + OR2."""
    a = builder.and_(cell.inputs["A1"], cell.inputs["A2"])
    b = builder.and_(cell.inputs["B1"], cell.inputs["B2"])
    builder.or_(a, b, output=cell.outputs["Y"])


def _decompose_oa22(builder: LogicBuilder, cell: Cell) -> None:
    """OA22 → OR2 + OR2 + AND2."""
    a = builder.or_(cell.inputs["A1"], cell.inputs["A2"])
    b = builder.or_(cell.inputs["B1"], cell.inputs["B2"])
    builder.and_(a, b, output=cell.outputs["Y"])


def _decompose_maj3(builder: LogicBuilder, cell: Cell) -> None:
    """MAJ3 → three AND2 plus an OR3."""
    a, b, c = cell.inputs["A"], cell.inputs["B"], cell.inputs["C"]
    ab = builder.and_(a, b)
    ac = builder.and_(a, c)
    bc = builder.and_(b, c)
    builder.or_(ab, ac, bc, output=cell.outputs["Y"])


def _decompose_wide(base: str) -> Callable[[LogicBuilder, Cell], None]:
    """Decompose AND8/OR8 style wide gates into a two-level tree of 4-input gates."""

    def decompose(builder: LogicBuilder, cell: Cell) -> None:
        ins = [cell.inputs[p] for p in gate_spec(cell.cell_type).input_pins]
        first = builder.cell(f"{base}4", ins[:4])
        second = builder.cell(f"{base}4", ins[4:])
        builder.cell(f"{base}2", [first, second], output=cell.outputs["Y"])

    return decompose


#: Decomposition rules, keyed by the cell type being replaced.
DECOMPOSITIONS: Dict[str, Callable[[LogicBuilder, Cell], None]] = {
    "AOI32": _decompose_aoi32,
    "OAI32": _decompose_oai32,
    "AO22": _decompose_ao22,
    "OA22": _decompose_oa22,
    "MAJ3": _decompose_maj3,
    "AND8": _decompose_wide("AND"),
    "OR8": _decompose_wide("OR"),
}


def map_to_library(netlist: Netlist, library: CellLibrary) -> Netlist:
    """Return a copy of *netlist* containing only cells the library characterises.

    Cells already present in the library are copied verbatim; the rest are
    decomposed via :data:`DECOMPOSITIONS`.  Decomposition is applied
    recursively until every cell maps, so a rule may itself produce cells
    that need further decomposition in a poorer library.
    """
    current = netlist
    for _round in range(4):
        missing = sorted(
            {cell.cell_type for cell in current.iter_cells() if not library.has_cell(cell.cell_type)}
        )
        if not missing:
            return current
        unmapped = [m for m in missing if m not in DECOMPOSITIONS]
        if unmapped:
            raise MappingError(
                f"no decomposition rule for cell types {unmapped} missing from "
                f"library {library.name!r}"
            )
        mapped = Netlist(f"{current.name}")
        for pi in current.primary_inputs:
            mapped.add_input(pi)
        for po in current.primary_outputs:
            mapped.add_output(po)
        builder = LogicBuilder(mapped.name, netlist=mapped, prefix="map_")
        for cell in current.iter_cells():
            if library.has_cell(cell.cell_type):
                mapped.add_cell(
                    cell.cell_type,
                    inputs=dict(cell.inputs),
                    outputs=dict(cell.outputs),
                    name=cell.name,
                    attrs=dict(cell.attrs),
                )
            else:
                before = len(mapped.cells)
                DECOMPOSITIONS[cell.cell_type](builder, cell)
                if cell.attrs:
                    # Replacement cells inherit the original cell's
                    # attributes (block/role tags survive decomposition, so
                    # hierarchical HDL export and CD/area accounting keep
                    # working on mapped netlists).
                    for new_name in islice(mapped.cells, before, None):
                        for key, value in cell.attrs.items():
                            mapped.cells[new_name].attrs.setdefault(key, value)
        current = mapped
    raise MappingError("technology mapping did not converge after four rounds")
