"""Technology mapping and synthesis-style reporting (the Design Compiler stand-in)."""

from .flow import HdlExportOptions, SynthesisResult, synthesize
from .mapping import DECOMPOSITIONS, MappingError, map_to_library
from .reports import (
    AreaReport,
    LeakageReport,
    area_report,
    leakage_report,
    timing_report,
)

__all__ = [
    "AreaReport",
    "DECOMPOSITIONS",
    "HdlExportOptions",
    "LeakageReport",
    "MappingError",
    "SynthesisResult",
    "area_report",
    "leakage_report",
    "map_to_library",
    "synthesize",
    "timing_report",
]
