"""Area, timing and power reporting — the Table-I report columns.

These reports mirror what a synthesis tool prints after compile: total cell
area, the area of the sequential cells (flip-flops for the single-rail
design, C-elements for the dual-rail design — exactly how the paper counts
its "sequential area" column), leakage, and the worst combinational path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuits.gates import is_sequential
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.sim.sta import TimingReport, static_timing_analysis


@dataclass
class AreaReport:
    """Cell-area breakdown of a mapped netlist."""

    total: float
    sequential: float
    combinational: float
    completion_detection: float
    cell_count: int
    sequential_cell_count: int
    by_type: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"area total={self.total:.1f} um^2 (sequential={self.sequential:.1f}, "
            f"combinational={self.combinational:.1f}, CD={self.completion_detection:.1f}), "
            f"{self.cell_count} cells"
        )


def area_report(netlist: Netlist, library: CellLibrary) -> AreaReport:
    """Compute the cell-area breakdown of *netlist* on *library*."""
    total = 0.0
    sequential = 0.0
    completion = 0.0
    seq_count = 0
    by_type: Dict[str, float] = {}
    for cell in netlist.iter_cells():
        model = library.cell(cell.cell_type)
        total += model.area
        by_type[cell.cell_type] = by_type.get(cell.cell_type, 0.0) + model.area
        if is_sequential(cell.cell_type):
            sequential += model.area
            seq_count += 1
        if cell.attrs.get("role") == "completion-detect":
            completion += model.area
    return AreaReport(
        total=total,
        sequential=sequential,
        combinational=total - sequential,
        completion_detection=completion,
        cell_count=netlist.cell_count(),
        sequential_cell_count=seq_count,
        by_type=dict(sorted(by_type.items())),
    )


@dataclass
class LeakageReport:
    """Static leakage of a mapped netlist at a given supply."""

    total_nw: float
    vdd: float
    by_type: Dict[str, float] = field(default_factory=dict)


def leakage_report(netlist: Netlist, library: CellLibrary,
                   vdd: Optional[float] = None) -> LeakageReport:
    """Sum per-instance leakage at *vdd* (library nominal when omitted)."""
    vdd = library.voltage_model.nominal_vdd if vdd is None else float(vdd)
    total = 0.0
    by_type: Dict[str, float] = {}
    for cell in netlist.iter_cells():
        value = library.cell_leakage(cell.cell_type, vdd=vdd)
        total += value
        by_type[cell.cell_type] = by_type.get(cell.cell_type, 0.0) + value
    return LeakageReport(total_nw=total, vdd=vdd, by_type=dict(sorted(by_type.items())))


def timing_report(netlist: Netlist, library: CellLibrary, vdd: Optional[float] = None,
                  break_at_sequential: bool = False) -> TimingReport:
    """Convenience pass-through to :func:`repro.sim.sta.static_timing_analysis`."""
    return static_timing_analysis(netlist, library, vdd=vdd,
                                  break_at_sequential=break_at_sequential)
