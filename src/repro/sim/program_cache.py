"""Content-hash keyed on-disk cache of :class:`~repro.sim.program.CompiledProgram`.

A compiled program is a pure function of *what was compiled* (the netlist
structure), *against what* (the library characterisation and the supply
point) and *by which compiler* (:data:`~repro.sim.program.PROGRAM_COMPILER_VERSION`).
:func:`program_cache_key` hashes exactly those four ingredients, so a
cached artifact is served again **only** while every one of them is
unchanged — edit a cell delay and the library fingerprint moves, change the
supply and the vdd ingredient moves, change the op layout and the version
stamp moves.

The store follows the :mod:`repro.explore.store` idiom: one JSON file per
key, corrupt or tampered entries (unparsable JSON, wrong schema, a record
whose own key does not match its filename) are deleted and treated as
misses, so a damaged cache heals itself on the next compile.  Writes go
through a same-directory temporary file and :func:`os.replace`, so
concurrent workers racing on a cold key can never expose a torn entry —
last writer wins with byte-identical content.

Worker-process protocol
-----------------------
Parents that fan work out (``run_parallel`` chunk workers, the serving
pool) compile once, :meth:`ProgramCache.put` the artifact, and ship only
``(cache directory, program hash)`` to the workers; each worker's
:meth:`ProgramCache.get` is then a warm load with no netlist walk — the
`program_cache_hits` / `program_cache_misses` counters and the
``program.cache.load`` / ``program.cache.store`` spans make the behaviour
observable through the standard Prometheus ``metrics`` command.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.circuits.library import CellLibrary, library_fingerprint
from repro.circuits.netlist import Netlist
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

from .program import (
    PROGRAM_COMPILER_VERSION,
    CompiledProgram,
    compile_program,
    netlist_fingerprint,
    resolve_vdd,
)

_CACHE_SUFFIX = ".json"


def program_cache_key(
    netlist_hash: str,
    library_digest: Optional[str],
    vdd: Optional[float],
    compiler_version: int = PROGRAM_COMPILER_VERSION,
) -> str:
    """The content hash a compiled program is cached under.

    *vdd* must be the **resolved** supply point
    (:func:`~repro.sim.program.resolve_vdd`), so a caller defaulting to the
    library nominal and one naming it explicitly address the same entry.
    """
    payload = {
        "netlist": netlist_hash,
        "library": library_digest,
        "vdd": vdd,
        "compiler_version": compiler_version,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ProgramCache:
    """One-file-per-program JSON store with atomic writes and self-healing.

    Parameters
    ----------
    directory:
        Cache root; created on first store.  Safe to delete wholesale — it
        is a cache, never the source of truth.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        registry = _metrics.default_registry()
        self._hits_metric = registry.counter(
            "program_cache_hits", "CompiledProgram loads served from disk."
        )
        self._misses_metric = registry.counter(
            "program_cache_misses", "CompiledProgram loads that forced a compile."
        )

    # ------------------------------------------------------------- internals
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_CACHE_SUFFIX}"

    # ------------------------------------------------------------------- keys
    def key_for(
        self,
        netlist: Optional[Netlist] = None,
        library: Optional[CellLibrary] = None,
        vdd: Optional[float] = None,
        netlist_hash: Optional[str] = None,
        library_digest: Optional[str] = None,
    ) -> str:
        """Cache key for a prospective compile.

        Accepts either the objects themselves or their precomputed digests
        (workers that received only hashes never need the netlist/library).
        """
        if netlist_hash is None:
            if netlist is None:
                raise ValueError("key_for needs a netlist or its netlist_hash")
            netlist_hash = netlist_fingerprint(netlist)
        if library_digest is None and library is not None:
            library_digest = library_fingerprint(library)
        return program_cache_key(
            netlist_hash, library_digest, resolve_vdd(library, vdd)
        )

    # -------------------------------------------------------------------- API
    def get(self, key: str) -> Optional[CompiledProgram]:
        """The cached program under *key*, or ``None``.

        Any malformed entry (bad JSON, wrong schema, key mismatch) counts
        as a miss, is deleted, and will simply be recompiled by the caller.
        """
        with _trace.span("program.cache.load") as span:
            path = self._path(key)
            if not path.exists():
                self.misses += 1
                self._misses_metric.inc()
                span.add(hit=False)
                return None
            try:
                record = json.loads(path.read_text())
                if not isinstance(record, dict):
                    raise ValueError("cached entry is not a JSON object")
                if record.get("key") != key:
                    raise ValueError("cached key does not match filename")
                program = CompiledProgram.from_dict(record["program"])
            except (ValueError, KeyError, TypeError, IndexError,
                    json.JSONDecodeError):
                self.corrupt += 1
                self.misses += 1
                self._misses_metric.inc()
                span.add(hit=False, corrupt=True)
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            self.hits += 1
            self._hits_metric.inc()
            span.add(hit=True, cells=len(program.ops))
        return program

    def put(self, program: CompiledProgram, key: Optional[str] = None) -> Path:
        """Persist *program* (atomically) and return the entry path.

        *key* defaults to the program's own cache key.  The write lands via
        a same-directory temporary file and :func:`os.replace`, so readers
        racing with writers see either nothing or a complete entry.
        """
        if key is None:
            key = program_cache_key(
                program.netlist_hash, program.library_digest, program.vdd,
                program.compiler_version,
            )
        with _trace.span("program.cache.store", cells=len(program.ops)):
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            record = {
                "key": key,
                "compiler_version": program.compiler_version,
                "program_hash": program.program_hash,
                "program": program.to_dict(),
            }
            payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp", prefix=f".{key[:16]}-"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return path

    def load_or_compile(
        self,
        netlist: Netlist,
        library: Optional[CellLibrary] = None,
        vdd: Optional[float] = None,
    ) -> CompiledProgram:
        """Serve the program for ``(netlist, library, vdd)``, compiling on miss.

        The warm path never walks the netlist beyond fingerprinting it; the
        cold path compiles through
        :func:`~repro.sim.program.compile_program` and stores the artifact
        for every later process.
        """
        key = self.key_for(netlist=netlist, library=library, vdd=vdd)
        program = self.get(key)
        if program is None:
            program = compile_program(netlist, library, vdd=vdd)
            self.put(program, key=key)
        return program

    # ------------------------------------------------- generated kernels
    def kernel_source_path(self, program_hash: str, backend_name: str,
                           version: Optional[int] = None) -> Path:
        """Path of the generated-kernel source for ``(program, backend)``.

        Kernel sources live next to the program entries but under a ``.py``
        suffix, keyed by the *program hash* (not the cache key: the kernel
        depends only on the op layout, which the program hash covers) plus
        the backend name and the codegen version stamp — bumping
        :data:`~repro.sim.kernels.KERNEL_CODEGEN_VERSION` orphans stale
        sources instead of executing them.
        """
        if version is None:
            from .kernels import KERNEL_CODEGEN_VERSION as version
        return self.directory / f"{program_hash}.{backend_name}.kernel-v{version}.py"

    def load_kernel_source(self, program_hash: str, backend_name: str,
                           version: Optional[int] = None) -> Optional[str]:
        """The stored generated-kernel source, or ``None`` on a miss.

        Unreadable or mislabeled files (the header line must name the same
        program hash) are deleted and treated as misses, mirroring the
        self-healing program entries.
        """
        path = self.kernel_source_path(program_hash, backend_name, version)
        try:
            source = path.read_text()
        except OSError:
            return None
        header = source.splitlines()[0] if source else ""
        if program_hash not in header:
            self.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return source

    def store_kernel_source(self, program_hash: str, backend_name: str,
                            source: str, version: Optional[int] = None) -> Path:
        """Persist generated-kernel *source* (atomically) and return its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.kernel_source_path(program_hash, backend_name, version)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.directory), suffix=".tmp",
            prefix=f".{program_hash[:16]}-",
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(source)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        """Number of program entries currently on disk (kernel sources excluded)."""
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob(f"*{_CACHE_SUFFIX}"))

    def stats(self) -> dict:
        """Hit/miss/corrupt counters for reports and benchmark records."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
        }
