"""Static timing analysis (STA) over mapped netlists.

The reduced completion-detection scheme of the paper rests on a timing
assumption derived from STA (Section III-A):

* ``t_int`` — the maximum possible valid→spacer (reset) time on **any**
  internal node, *including false paths*;
* ``t_io`` — the maximum valid→spacer time from the primary inputs to the
  primary outputs;
* the grace period that must elapse before new primary inputs may be applied
  is ``td = t_int − t_io``, and the done signal's falling edge happens at
  ``t_done(1→0) = t_io + td``.

Classic topological STA is exactly the right tool because it is oblivious to
logical sensitisation — every structural path is counted, which is the
"must include false paths" requirement.  The same machinery also provides
the clock period of the synchronous single-rail baseline (its critical
path plus sequencing overhead) and the maximum spacer→valid latency used to
bound the dual-rail worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist

from .simulator import WIRE_CAP_PER_FANOUT_FF


@dataclass
class TimingReport:
    """Result of a topological STA pass.

    Attributes
    ----------
    arrival:
        Worst-case arrival time (ps) of every net, measured from the instant
        the primary inputs change.
    max_over_outputs:
        Maximum arrival over the primary outputs (``t_io`` in the paper's
        notation; also the combinational critical path of the baseline).
    max_over_internal:
        Maximum arrival over internal (non-PO) nets, false paths included
        (``t_int``).
    critical_path:
        Net names along the longest register-free path, input first.
    vdd:
        Supply voltage the delays were computed at.
    """

    arrival: Dict[str, float]
    max_over_outputs: float
    max_over_internal: float
    critical_path: List[str]
    vdd: float

    @property
    def critical_delay(self) -> float:
        """Longest path delay to any net (ps)."""
        return max(self.max_over_outputs, self.max_over_internal)


def output_load(netlist: Netlist, library: CellLibrary, net_name: str) -> float:
    """Estimated capacitive load on *net_name* in fF.

    Fanout input-pin capacitances plus the per-fanout wire estimate — the
    *same* load model :class:`~repro.sim.simulator.GateLevelSimulator` uses,
    so STA worst-case arrivals, event-driven switching times and the
    vectorized timing engine (:mod:`repro.sim.backends.timed`) all price a
    net's load identically.  This shared formula is what makes the
    "per-sample latency ≤ STA critical delay" property hold exactly.
    """
    net = netlist.nets[net_name]
    load = WIRE_CAP_PER_FANOUT_FF * max(1, net.fanout)
    for sink_name, _pin in net.sinks:
        sink = netlist.cells[sink_name]
        if library.has_cell(sink.cell_type):
            load += library.cell(sink.cell_type).input_cap
    return load


def cell_output_delay(
    netlist: Netlist,
    library: CellLibrary,
    cell_type: str,
    cell_name: str,
    out_net: str,
    vdd: float,
    delay_variation: Optional[Dict[str, float]] = None,
) -> float:
    """Switching delay (ps) of one cell instance driving *out_net* at *vdd*.

    The single source of per-instance delays shared by STA, the event-driven
    simulator's cache and the vectorized timing engine: library pin-to-output
    delay at the net's actual load, scaled by the voltage model and the
    optional per-instance variation factor.
    """
    load = output_load(netlist, library, out_net)
    delay = library.cell_delay(cell_type, load, vdd=vdd)
    if delay_variation:
        delay *= delay_variation.get(cell_name, 1.0)
    return delay


def static_timing_analysis(
    netlist: Netlist,
    library: CellLibrary,
    vdd: Optional[float] = None,
    delay_variation: Optional[Dict[str, float]] = None,
    break_at_sequential: bool = False,
) -> TimingReport:
    """Run topological worst-case STA on *netlist*.

    Parameters
    ----------
    netlist:
        The mapped design.
    library:
        Cell library supplying pin-to-pin delays.
    vdd:
        Supply voltage (defaults to the library nominal).
    delay_variation:
        Optional per-instance delay multipliers, as accepted by the
        simulator, so that STA and simulation stay consistent in
        variation experiments.
    break_at_sequential:
        When ``True``, sequential cells (flip-flops) are treated as path
        start/end points: their outputs restart at their clock-to-output
        delay.  Used for the synchronous baseline, where the clock period is
        set by the longest register-to-register / input-to-register path.
        C-elements in the dual-rail datapath are *not* broken — they are
        transparent during a S→V wavefront.
    """
    vdd = library.voltage_model.nominal_vdd if vdd is None else float(vdd)
    variation = dict(delay_variation or {})
    arrival: Dict[str, float] = {}
    predecessor: Dict[str, Optional[str]] = {}

    for pi in netlist.primary_inputs:
        arrival[pi] = 0.0
        predecessor[pi] = None

    for cell in netlist.topological_order():
        is_ff = cell.cell_type == "DFF"
        for pin, out_net in cell.outputs.items():
            delay = cell_output_delay(
                netlist, library, cell.cell_type, cell.name, out_net, vdd,
                delay_variation=variation,
            )
            if is_ff and break_at_sequential:
                # Clock-to-output delay with the real output load: the path
                # restarts here, but the launch delay must match what the
                # event-driven simulator will actually apply.
                candidate = delay
                best_input = None
            else:
                best_input = None
                best_arrival = 0.0
                for in_pin, in_net in cell.inputs.items():
                    if is_ff and in_pin == "CK":
                        continue
                    t = arrival.get(in_net, 0.0)
                    if best_input is None or t > best_arrival:
                        best_input, best_arrival = in_net, t
                candidate = best_arrival + delay
            if candidate > arrival.get(out_net, float("-inf")):
                arrival[out_net] = candidate
                predecessor[out_net] = best_input

    for net in netlist.nets:
        arrival.setdefault(net, 0.0)
        predecessor.setdefault(net, None)

    outputs = [n for n in netlist.primary_outputs]
    internal = netlist.internal_nets()
    max_out = max((arrival[n] for n in outputs), default=0.0)
    max_int = max((arrival[n] for n in internal), default=0.0)

    # Trace the critical path back from the latest net anywhere in the design.
    all_nets = list(arrival)
    end_net = max(all_nets, key=lambda n: arrival[n]) if all_nets else None
    path: List[str] = []
    cursor = end_net
    seen = set()
    while cursor is not None and cursor not in seen:
        seen.add(cursor)
        path.append(cursor)
        cursor = predecessor.get(cursor)
    path.reverse()

    return TimingReport(
        arrival=arrival,
        max_over_outputs=max_out,
        max_over_internal=max_int,
        critical_path=path,
        vdd=vdd,
    )


def register_to_register_period(
    netlist: Netlist,
    library: CellLibrary,
    vdd: Optional[float] = None,
    setup_margin: float = 0.10,
    clock_uncertainty: float = 60.0,
) -> float:
    """Minimum clock period (ps) of a synchronous netlist.

    The period is the worst launch-to-capture path (input or register output
    through combinational logic to a register input or primary output) plus
    the flip-flop setup time approximation and a fixed clock-uncertainty
    margin.  ``setup_margin`` is expressed as a fraction of the critical path
    (a simple but adequate stand-in for per-cell setup data).
    """
    report = static_timing_analysis(
        netlist, library, vdd=vdd, break_at_sequential=True
    )
    critical = report.critical_delay
    return critical * (1.0 + setup_margin) + clock_uncertainty


def arrival_of_nets(report: TimingReport, nets: Iterable[str]) -> float:
    """Maximum arrival time over *nets* (0.0 for unknown nets)."""
    return max((report.arrival.get(n, 0.0) for n in nets), default=0.0)
