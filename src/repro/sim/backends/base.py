"""The pluggable simulation-backend contract.

A *backend* answers the question "what do the nets of this netlist settle to
for these primary-input assignments?" — possibly for a whole batch of input
vectors at once, and possibly with per-gate switching-activity counts on the
side.  Three implementations ship with the repo:

``"event"``
    :class:`~repro.sim.backends.event.EventBackend` — wraps the timing-
    accurate event-driven :class:`~repro.sim.simulator.GateLevelSimulator`.
    Use it whenever *when* something switches matters (latency, grace
    periods, monotonicity checking, glitch-accurate power).

``"batch"``
    :class:`~repro.sim.backends.batch.BatchBackend` — levelizes the netlist
    once and evaluates each cell as a vectorized NumPy operation over the
    whole sample batch.  Use it whenever only the *functional* outputs and
    cycle-level transition counts are needed (correctness sweeps, energy
    estimation, workload statistics); it is orders of magnitude faster.

``"bitpack"``
    :class:`~repro.sim.backends.bitpack.BitpackBackend` — the same levelized
    evaluation, but with 64 samples packed into each ``uint64`` word (two
    bit-planes per net for three-valued logic), so every gate costs a
    handful of bitwise word operations for the whole batch.  The fastest
    functional backend; same equivalence guarantees as ``"batch"``.

Backends are looked up by name through :func:`get_backend`, so experiment
harnesses can take a ``backend="event"|"batch"|"bitpack"`` argument without
importing concrete classes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

try:  # Protocol is 3.8+; keep an import guard for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - typing_extensions fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        """Identity decorator standing in for :func:`typing.runtime_checkable`."""
        return cls


from repro.circuits.gates import LogicValue
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist


class BackendError(Exception):
    """Raised when a backend cannot simulate the given netlist or stimulus."""


@dataclass
class BatchResult:
    """Outcome of pushing a batch of input vectors through a backend.

    Attributes
    ----------
    samples:
        Number of input vectors evaluated.
    outputs:
        Per-sample settled values of the primary outputs:
        ``outputs[k][net] -> LogicValue`` for sample ``k``.
    activity_by_cell:
        Committed output-transition count per cell instance, summed over the
        batch (the quantity energy estimation needs).
    activity_by_cell_type:
        The same activity aggregated by cell type (the granularity
        :class:`~repro.sim.power.PowerAccountant` prices energy at).
    net_values:
        Optional per-net settled values for the whole batch (backends that
        keep them expose the full matrix for gate-for-gate cross-checking):
        ``net_values[net][k] -> LogicValue`` for sample ``k``.
    """

    samples: int
    outputs: List[Dict[str, LogicValue]]
    activity_by_cell: Dict[str, int] = field(default_factory=dict)
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)
    net_values: Optional[Dict[str, List[LogicValue]]] = None

    @property
    def transitions(self) -> int:
        """Total committed transitions across the batch."""
        return sum(self.activity_by_cell_type.values())


@runtime_checkable
class SimulationBackend(Protocol):
    """Structural protocol every simulation backend implements.

    Construction is ``Backend(netlist, library, vdd=None)``; afterwards the
    backend is reusable across any number of evaluations of that netlist.
    """

    #: Registry name ("event", "batch", ...).
    name: str

    def evaluate(self, assignments: Mapping[str, int]) -> Dict[str, LogicValue]:
        """Settled value of every net for one full primary-input assignment."""
        ...

    def run_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        baseline: Optional[Mapping[str, int]] = None,
    ) -> BatchResult:
        """Evaluate a batch of assignments; see :class:`BatchResult`.

        ``baseline`` is the rest-state assignment transitions are counted
        against (for spacer-separated dual-rail cycles, the spacer input
        word); backends that measure transitions directly may ignore it.
        """
        ...


def classify_cell_type(cell_type: str) -> Optional[Tuple[str, Optional[Tuple[int, ...]]]]:
    """Classify *cell_type* into the levelized backends' dispatch vocabulary.

    The single definition of which cell types the vectorized engines can
    execute: ``compile_program`` validates against it at compile time and
    :func:`make_cell_type_compiler` binds evaluators from it, so a cell
    type accepted by the compiler is guaranteed bindable by every
    vectorized backend.  Returns ``(tag, groups)`` where *tag* is one of
    ``"inv" | "buf" | "maj3" | "xor" | "xnor" | "and" | "nand" | "or" |
    "nor" | "c" | "aoi" | "oai" | "ao" | "oa"`` and *groups* is the
    per-digit pin grouping for the four complex-gate tags (``None``
    otherwise), or ``None`` for cell types outside the vocabulary.
    """
    simple = {
        "INV": "inv", "BUF": "buf", "MAJ3": "maj3", "XOR2": "xor", "XNOR2": "xnor",
    }
    if cell_type in simple:
        return simple[cell_type], None
    for prefix, tag in (("NAND", "nand"), ("AND", "and"), ("NOR", "nor"), ("OR", "or")):
        if cell_type.startswith(prefix):
            return tag, None
    if cell_type.startswith("C") and cell_type[1:].isdigit():
        return "c", None
    for prefix in ("AOI", "OAI", "AO", "OA"):
        if cell_type.startswith(prefix) and cell_type[len(prefix):].isdigit():
            return prefix.lower(), tuple(int(d) for d in cell_type[len(prefix):])
    return None


def make_cell_type_compiler(
    backend_name: str,
    and_fn: Callable,
    or_fn: Callable,
    xor_fn: Callable,
    maj3_fn: Callable,
    c_fn: Callable,
    invert: Callable,
) -> Callable[[str], Callable]:
    """Build a ``cell type -> evaluator`` compiler from primitive evaluators.

    The levelized backends share one cell-type dispatch
    (:func:`classify_cell_type`: INV/BUF, AND/NAND, OR/NOR, XOR2/XNOR2,
    MAJ3, C-elements, and the AOI/OAI/AO/OA complex gates with per-digit
    pin groups); only the primitives differ — the batch backend's operate
    on ``uint8`` sample arrays, the bitpack backend's on ``(ones, zeros)``
    bit-plane pairs, the timed engine's on ``(start, final, arrival)``
    triples.  Each ``*_fn`` takes the cell's input values in pin order and
    returns the output value; *invert* maps an output value to its logical
    complement.

    The returned compiler raises :class:`BackendError` for cell types it
    cannot vectorize (the caller's registration name is quoted in the
    message).
    """

    def grouped(groups: Tuple[int, ...], inner: Callable, outer: Callable,
                inverting: bool) -> Callable:
        """Complex-gate evaluator: *inner* per pin group, *outer* across groups."""

        def fn(values: List) -> object:
            """Evaluate one complex gate over grouped pin values."""
            terms: List = []
            idx = 0
            for width in groups:
                terms.append(values[idx] if width == 1 else inner(values[idx: idx + width]))
                idx += width
            out = outer(terms)
            return invert(out) if inverting else out

        return fn

    def compile_cell_type(cell_type: str) -> Callable:
        """Return the evaluator for *cell_type* (input order = pin order)."""
        kind = classify_cell_type(cell_type)
        if kind is None:
            raise BackendError(
                f"{backend_name} backend cannot vectorize cell type {cell_type!r}"
            )
        tag, groups = kind
        if tag == "inv":
            return lambda values: invert(values[0])
        if tag == "buf":
            return lambda values: values[0]
        if tag == "maj3":
            return maj3_fn
        if tag == "xor":
            return xor_fn
        if tag == "xnor":
            return lambda values: invert(xor_fn(values))
        if tag == "and":
            return and_fn
        if tag == "nand":
            return lambda values: invert(and_fn(values))
        if tag == "or":
            return or_fn
        if tag == "nor":
            return lambda values: invert(or_fn(values))
        if tag == "c":
            return c_fn
        inner, outer, inverting = {
            "aoi": (and_fn, or_fn, True),
            "oai": (or_fn, and_fn, True),
            "ao": (and_fn, or_fn, False),
            "oa": (or_fn, and_fn, False),
        }[tag]
        return grouped(groups, inner, outer, inverting)

    return compile_cell_type


@dataclass
class CellOp:
    """One compiled cell of a levelized backend program.

    Evaluation pulls the planes of ``in_nets`` (in the cell type's pin
    order), applies ``fn`` — whose plane representation is backend-specific
    (``uint8`` sample arrays for ``"batch"``, ``uint64`` bit-plane pairs for
    ``"bitpack"``) — and stores the result as ``out_net``.
    """

    cell_name: str
    cell_type: str
    in_nets: Tuple[str, ...]
    out_net: str
    fn: Callable


def bind_cell_ops(program, compile_cell_type: Callable[[str], Callable]) -> List[CellOp]:
    """Bind a backend-neutral :class:`~repro.sim.program.CompiledProgram` to
    executable :class:`CellOp`\\ s.

    Evaluator functions are memoised per cell type through
    *compile_cell_type* (one of the :func:`make_cell_type_compiler`
    instantiations), so the same serialized program serves every vectorized
    backend — only this binding step is backend-specific.
    """
    fn_cache: Dict[str, Callable] = {}
    ops: List[CellOp] = []
    for op in program.ops:
        fn = fn_cache.get(op.cell_type)
        if fn is None:
            fn = compile_cell_type(op.cell_type)
            fn_cache[op.cell_type] = fn
        ops.append(
            CellOp(
                cell_name=op.cell_name,
                cell_type=op.cell_type,
                in_nets=op.in_nets,
                out_net=op.out_net,
                fn=fn,
            )
        )
    return ops


def compile_levelized_ops(
    netlist: Netlist,
    compile_cell_type: Callable[[str], Callable],
    backend_name: str,
) -> Tuple[List[Tuple[str, int]], List[CellOp]]:
    """Deprecated shim over :func:`repro.sim.program.compile_program`.

    Historically the shared front half of the levelized backends; the
    compile step now lives in :mod:`repro.sim.program`, which produces a
    serializable backend-neutral :class:`~repro.sim.program.CompiledProgram`
    instead of pre-bound ops.  This wrapper compiles a program and binds it
    through *compile_cell_type*, returning exactly the ``(constants, ops)``
    pair the old API produced.

    .. deprecated:: 0.6
        Use ``compile_program(netlist)`` + :func:`bind_cell_ops` (or simply
        construct a backend, which does both) instead.
    """
    warnings.warn(
        "compile_levelized_ops is deprecated; use repro.sim.compile_program "
        "and repro.sim.backends.base.bind_cell_ops to bind the resulting "
        "CompiledProgram per backend (or construct the backend directly, "
        "which does both)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sim.program import compile_program

    program = compile_program(netlist)
    return list(program.constants), bind_cell_ops(program, compile_cell_type)


#: name -> factory(netlist, library, vdd) for the built-in backends.
_REGISTRY: Dict[str, Callable[..., SimulationBackend]] = {}


def register_backend(name: str, factory: Callable[..., SimulationBackend]) -> None:
    """Register a backend factory under *name* (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def get_backend(
    name: str,
    netlist: Optional[Netlist] = None,
    library: Optional[CellLibrary] = None,
    vdd: Optional[float] = None,
    program=None,
    cache=None,
    fused=None,
) -> SimulationBackend:
    """Instantiate the backend registered as *name*.

    The documented construction API takes **exactly one** of:

    ``netlist=``
        Compile the netlist for this backend (the seed behaviour).  With
        ``cache=`` (a directory path or a
        :class:`~repro.sim.program_cache.ProgramCache`) the compile goes
        through the on-disk program cache: a warm entry skips the netlist
        walk entirely, a cold one compiles and stores.  The event backend
        executes the netlist directly and ignores *cache*.

    ``program=``
        Execute a precompiled
        :class:`~repro.sim.program.CompiledProgram` (e.g. loaded from a
        :class:`~repro.sim.program_cache.ProgramCache` in a worker
        process).  Only the vectorized backends accept programs; the event
        backend raises :class:`BackendError`.

    ``fused=`` selects the fused-kernel tier of the vectorized backends
    (``"off"``/``"grouped"``/``"codegen"`` or a boolean; ``None`` defers to
    the ``REPRO_FUSED_KERNELS`` environment variable — see
    :mod:`repro.sim.kernels`).  The event backend has no kernel engine and
    ignores it.  When both *cache* and the codegen tier are active the
    cache doubles as the generated-kernel source store.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown simulation backend {name!r}; available: {available_backends()}"
        ) from None
    if (netlist is None) == (program is None):
        raise BackendError(
            "get_backend takes exactly one of netlist= and program= "
            f"(got netlist={'set' if netlist is not None else 'None'}, "
            f"program={'set' if program is not None else 'None'})"
        )
    if name == "event":
        if program is not None:
            raise BackendError(
                "the event backend executes the netlist directly and cannot "
                "run a CompiledProgram; construct it with netlist="
            )
        return factory(netlist, library, vdd=vdd)
    kwargs: Dict[str, object] = {}
    if fused is not None:
        kwargs["fused"] = fused
    if cache is not None:
        from repro.sim.program_cache import ProgramCache

        store = cache if isinstance(cache, ProgramCache) else ProgramCache(cache)
        kwargs["kernel_store"] = store
        if program is None:
            program = store.load_or_compile(netlist, library, vdd=vdd)
    if program is not None:
        return factory(netlist, library, vdd=vdd, program=program, **kwargs)
    return factory(netlist, library, vdd=vdd, **kwargs)
