"""The pluggable simulation-backend contract.

A *backend* answers the question "what do the nets of this netlist settle to
for these primary-input assignments?" — possibly for a whole batch of input
vectors at once, and possibly with per-gate switching-activity counts on the
side.  Three implementations ship with the repo:

``"event"``
    :class:`~repro.sim.backends.event.EventBackend` — wraps the timing-
    accurate event-driven :class:`~repro.sim.simulator.GateLevelSimulator`.
    Use it whenever *when* something switches matters (latency, grace
    periods, monotonicity checking, glitch-accurate power).

``"batch"``
    :class:`~repro.sim.backends.batch.BatchBackend` — levelizes the netlist
    once and evaluates each cell as a vectorized NumPy operation over the
    whole sample batch.  Use it whenever only the *functional* outputs and
    cycle-level transition counts are needed (correctness sweeps, energy
    estimation, workload statistics); it is orders of magnitude faster.

``"bitpack"``
    :class:`~repro.sim.backends.bitpack.BitpackBackend` — the same levelized
    evaluation, but with 64 samples packed into each ``uint64`` word (two
    bit-planes per net for three-valued logic), so every gate costs a
    handful of bitwise word operations for the whole batch.  The fastest
    functional backend; same equivalence guarantees as ``"batch"``.

Backends are looked up by name through :func:`get_backend`, so experiment
harnesses can take a ``backend="event"|"batch"|"bitpack"`` argument without
importing concrete classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Protocol is 3.8+; keep an import guard for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - typing_extensions fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        """Identity decorator standing in for :func:`typing.runtime_checkable`."""
        return cls


from repro.circuits.gates import gate_spec, LogicValue
from repro.circuits.levelize import levelize
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist, NetlistError
from repro.obs import trace as _trace


class BackendError(Exception):
    """Raised when a backend cannot simulate the given netlist or stimulus."""


@dataclass
class BatchResult:
    """Outcome of pushing a batch of input vectors through a backend.

    Attributes
    ----------
    samples:
        Number of input vectors evaluated.
    outputs:
        Per-sample settled values of the primary outputs:
        ``outputs[k][net] -> LogicValue`` for sample ``k``.
    activity_by_cell:
        Committed output-transition count per cell instance, summed over the
        batch (the quantity energy estimation needs).
    activity_by_cell_type:
        The same activity aggregated by cell type (the granularity
        :class:`~repro.sim.power.PowerAccountant` prices energy at).
    net_values:
        Optional per-net settled values for the whole batch (backends that
        keep them expose the full matrix for gate-for-gate cross-checking):
        ``net_values[net][k] -> LogicValue`` for sample ``k``.
    """

    samples: int
    outputs: List[Dict[str, LogicValue]]
    activity_by_cell: Dict[str, int] = field(default_factory=dict)
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)
    net_values: Optional[Dict[str, List[LogicValue]]] = None

    @property
    def transitions(self) -> int:
        """Total committed transitions across the batch."""
        return sum(self.activity_by_cell_type.values())


@runtime_checkable
class SimulationBackend(Protocol):
    """Structural protocol every simulation backend implements.

    Construction is ``Backend(netlist, library, vdd=None)``; afterwards the
    backend is reusable across any number of evaluations of that netlist.
    """

    #: Registry name ("event", "batch", ...).
    name: str

    def evaluate(self, assignments: Mapping[str, int]) -> Dict[str, LogicValue]:
        """Settled value of every net for one full primary-input assignment."""
        ...

    def run_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        baseline: Optional[Mapping[str, int]] = None,
    ) -> BatchResult:
        """Evaluate a batch of assignments; see :class:`BatchResult`.

        ``baseline`` is the rest-state assignment transitions are counted
        against (for spacer-separated dual-rail cycles, the spacer input
        word); backends that measure transitions directly may ignore it.
        """
        ...


def make_cell_type_compiler(
    backend_name: str,
    and_fn: Callable,
    or_fn: Callable,
    xor_fn: Callable,
    maj3_fn: Callable,
    c_fn: Callable,
    invert: Callable,
) -> Callable[[str], Callable]:
    """Build a ``cell type -> evaluator`` compiler from primitive evaluators.

    The levelized backends share one cell-type dispatch (INV/BUF, AND/NAND,
    OR/NOR, XOR2/XNOR2, MAJ3, C-elements, and the AOI/OAI/AO/OA complex
    gates with per-digit pin groups); only the primitives differ — the
    batch backend's operate on ``uint8`` sample arrays, the bitpack
    backend's on ``(ones, zeros)`` bit-plane pairs.  Each ``*_fn`` takes
    the cell's input values in pin order and returns the output value;
    *invert* maps an output value to its logical complement.

    The returned compiler raises :class:`BackendError` for cell types it
    cannot vectorize (the caller's registration name is quoted in the
    message).
    """

    def grouped(groups: Tuple[int, ...], inner: Callable, outer: Callable,
                inverting: bool) -> Callable:
        """Complex-gate evaluator: *inner* per pin group, *outer* across groups."""

        def fn(values: List) -> object:
            """Evaluate one complex gate over grouped pin values."""
            terms: List = []
            idx = 0
            for width in groups:
                terms.append(values[idx] if width == 1 else inner(values[idx: idx + width]))
                idx += width
            out = outer(terms)
            return invert(out) if inverting else out

        return fn

    def compile_cell_type(cell_type: str) -> Callable:
        """Return the evaluator for *cell_type* (input order = pin order)."""
        if cell_type == "INV":
            return lambda values: invert(values[0])
        if cell_type == "BUF":
            return lambda values: values[0]
        if cell_type == "MAJ3":
            return maj3_fn
        if cell_type == "XOR2":
            return xor_fn
        if cell_type == "XNOR2":
            return lambda values: invert(xor_fn(values))
        if cell_type.startswith("AND"):
            return and_fn
        if cell_type.startswith("NAND"):
            return lambda values: invert(and_fn(values))
        if cell_type.startswith("OR"):
            return or_fn
        if cell_type.startswith("NOR"):
            return lambda values: invert(or_fn(values))
        if cell_type.startswith("C") and cell_type[1:].isdigit():
            return c_fn
        for prefix, inner, outer, inverting in (
            ("AOI", and_fn, or_fn, True),
            ("OAI", or_fn, and_fn, True),
            ("AO", and_fn, or_fn, False),
            ("OA", or_fn, and_fn, False),
        ):
            if cell_type.startswith(prefix) and cell_type[len(prefix):].isdigit():
                groups = tuple(int(d) for d in cell_type[len(prefix):])
                return grouped(groups, inner, outer, inverting)
        raise BackendError(
            f"{backend_name} backend cannot vectorize cell type {cell_type!r}"
        )

    return compile_cell_type


@dataclass
class CellOp:
    """One compiled cell of a levelized backend program.

    Evaluation pulls the planes of ``in_nets`` (in the cell type's pin
    order), applies ``fn`` — whose plane representation is backend-specific
    (``uint8`` sample arrays for ``"batch"``, ``uint64`` bit-plane pairs for
    ``"bitpack"``) — and stores the result as ``out_net``.
    """

    cell_name: str
    cell_type: str
    in_nets: Tuple[str, ...]
    out_net: str
    fn: Callable


def compile_levelized_ops(
    netlist: Netlist,
    compile_cell_type: Callable[[str], Callable],
    backend_name: str,
) -> Tuple[List[Tuple[str, int]], List[CellOp]]:
    """Compile *netlist* into the straight-line program levelized backends run.

    The shared front half of the ``"batch"`` and ``"bitpack"`` backends:
    reject clocked netlists (flip-flops have no single-pass functional
    meaning), topologically levelize, peel ``TIE0``/``TIE1`` cells off into
    ``(net, constant)`` pairs, and compile every remaining cell — which must
    be single-output — through *compile_cell_type* (memoised per cell type).

    Returns ``(constants, ops)`` where *ops* is in level order, so executing
    them sequentially evaluates every cell after all of its fanins.

    Raises
    ------
    BackendError
        For clocked or non-levelizable (cyclic) netlists, multi-output
        cells, or cell types *compile_cell_type* cannot handle.
    """
    with _trace.span("backend.compile", backend=backend_name) as compile_span:
        for cell in netlist.iter_cells():
            if cell.cell_type == "DFF":
                raise BackendError(
                    f"{backend_name} backend does not support clocked netlists "
                    "(DFF found); use the event backend for the synchronous baseline"
                )
        fn_cache: Dict[str, Callable] = {}
        try:
            levels = levelize(netlist)
        except NetlistError as err:
            raise BackendError(
                f"{backend_name} backend requires a levelizable netlist: {err}; "
                "use the event backend for cyclic designs"
            ) from err
        constants: List[Tuple[str, int]] = []
        ops: List[CellOp] = []
        for level in levels:
            for cell in level:
                if cell.cell_type in ("TIE0", "TIE1"):
                    value = 1 if cell.cell_type == "TIE1" else 0
                    for net in cell.outputs.values():
                        constants.append((net, value))
                    continue
                spec = gate_spec(cell.cell_type)
                if len(spec.output_pins) != 1:
                    raise BackendError(
                        f"{backend_name} backend expects single-output cells, "
                        f"got {cell.cell_type!r}"
                    )
                fn = fn_cache.get(cell.cell_type)
                if fn is None:
                    fn = compile_cell_type(cell.cell_type)
                    fn_cache[cell.cell_type] = fn
                ops.append(
                    CellOp(
                        cell_name=cell.name,
                        cell_type=cell.cell_type,
                        in_nets=tuple(cell.inputs[pin] for pin in spec.input_pins),
                        out_net=cell.outputs[spec.output_pins[0]],
                        fn=fn,
                    )
                )
        compile_span.add(levels=len(levels), cells=len(ops))
    return constants, ops


#: name -> factory(netlist, library, vdd) for the built-in backends.
_REGISTRY: Dict[str, Callable[..., SimulationBackend]] = {}


def register_backend(name: str, factory: Callable[..., SimulationBackend]) -> None:
    """Register a backend factory under *name* (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def get_backend(
    name: str,
    netlist: Netlist,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> SimulationBackend:
    """Instantiate the backend registered as *name* for *netlist*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown simulation backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(netlist, library, vdd=vdd)
