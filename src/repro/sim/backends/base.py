"""The pluggable simulation-backend contract.

A *backend* answers the question "what do the nets of this netlist settle to
for these primary-input assignments?" — possibly for a whole batch of input
vectors at once, and possibly with per-gate switching-activity counts on the
side.  Two implementations ship with the repo:

``"event"``
    :class:`~repro.sim.backends.event.EventBackend` — wraps the timing-
    accurate event-driven :class:`~repro.sim.simulator.GateLevelSimulator`.
    Use it whenever *when* something switches matters (latency, grace
    periods, monotonicity checking, glitch-accurate power).

``"batch"``
    :class:`~repro.sim.backends.batch.BatchBackend` — levelizes the netlist
    once and evaluates each cell as a vectorized NumPy operation over the
    whole sample batch.  Use it whenever only the *functional* outputs and
    cycle-level transition counts are needed (correctness sweeps, energy
    estimation, workload statistics); it is orders of magnitude faster.

Backends are looked up by name through :func:`get_backend`, so experiment
harnesses can take a ``backend="event"|"batch"`` argument without importing
concrete classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

try:  # Protocol is 3.8+; keep an import guard for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - typing_extensions fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.circuits.gates import LogicValue
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist


class BackendError(Exception):
    """Raised when a backend cannot simulate the given netlist or stimulus."""


@dataclass
class BatchResult:
    """Outcome of pushing a batch of input vectors through a backend.

    Attributes
    ----------
    samples:
        Number of input vectors evaluated.
    outputs:
        Per-sample settled values of the primary outputs:
        ``outputs[k][net] -> LogicValue`` for sample ``k``.
    activity_by_cell:
        Committed output-transition count per cell instance, summed over the
        batch (the quantity energy estimation needs).
    activity_by_cell_type:
        The same activity aggregated by cell type (the granularity
        :class:`~repro.sim.power.PowerAccountant` prices energy at).
    net_values:
        Optional per-net settled values for the whole batch (backends that
        keep them expose the full matrix for gate-for-gate cross-checking):
        ``net_values[net][k] -> LogicValue`` for sample ``k``.
    """

    samples: int
    outputs: List[Dict[str, LogicValue]]
    activity_by_cell: Dict[str, int] = field(default_factory=dict)
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)
    net_values: Optional[Dict[str, List[LogicValue]]] = None

    @property
    def transitions(self) -> int:
        """Total committed transitions across the batch."""
        return sum(self.activity_by_cell_type.values())


@runtime_checkable
class SimulationBackend(Protocol):
    """Structural protocol every simulation backend implements.

    Construction is ``Backend(netlist, library, vdd=None)``; afterwards the
    backend is reusable across any number of evaluations of that netlist.
    """

    #: Registry name ("event", "batch", ...).
    name: str

    def evaluate(self, assignments: Mapping[str, int]) -> Dict[str, LogicValue]:
        """Settled value of every net for one full primary-input assignment."""
        ...

    def run_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        baseline: Optional[Mapping[str, int]] = None,
    ) -> BatchResult:
        """Evaluate a batch of assignments; see :class:`BatchResult`.

        ``baseline`` is the rest-state assignment transitions are counted
        against (for spacer-separated dual-rail cycles, the spacer input
        word); backends that measure transitions directly may ignore it.
        """
        ...


#: name -> factory(netlist, library, vdd) for the built-in backends.
_REGISTRY: Dict[str, Callable[..., SimulationBackend]] = {}


def register_backend(name: str, factory: Callable[..., SimulationBackend]) -> None:
    """Register a backend factory under *name* (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def get_backend(
    name: str,
    netlist: Netlist,
    library: CellLibrary,
    vdd: Optional[float] = None,
) -> SimulationBackend:
    """Instantiate the backend registered as *name* for *netlist*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown simulation backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(netlist, library, vdd=vdd)
