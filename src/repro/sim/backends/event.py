"""The timing-accurate event-driven backend (the seed simulator, wrapped).

:class:`EventBackend` adapts :class:`~repro.sim.simulator.GateLevelSimulator`
to the :class:`~repro.sim.backends.base.SimulationBackend` protocol.  Each
:meth:`EventBackend.evaluate` call settles a *fresh* simulator from the
all-unknown state, which is exactly the reference semantics the vectorized
batch backend is cross-checked against: three-valued controlling-value
evaluation, C-elements holding unknown until their inputs agree.

For protocol-level work (handshake environments, monitors, waveforms) use
:class:`GateLevelSimulator` directly — the backend interface deliberately
exposes only the functional view shared with the batch engine.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.circuits.gates import LogicValue
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist

from ..simulator import GateLevelSimulator
from .base import BatchResult, register_backend


class EventBackend:
    """Functional adapter over the event-driven gate-level simulator."""

    name = "event"

    def __init__(
        self,
        netlist: Netlist,
        library: CellLibrary,
        vdd: Optional[float] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.vdd = vdd

    def _settled_simulator(self, assignments: Mapping[str, int]) -> GateLevelSimulator:
        sim = GateLevelSimulator(
            self.netlist, self.library, vdd=self.vdd, record_waveform=False
        )
        sim.set_inputs({net: int(value) for net, value in assignments.items()})
        sim.settle()
        return sim

    # ----------------------------------------------------------- protocol
    def evaluate(self, assignments: Mapping[str, int]) -> Dict[str, LogicValue]:
        """Settle a fresh simulator under *assignments*; return all net values."""
        sim = self._settled_simulator(assignments)
        return dict(sim.values)

    def run_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        baseline: Optional[Mapping[str, int]] = None,
    ) -> BatchResult:
        """Evaluate each assignment in sequence (one fresh settle per sample).

        Activity is the simulator's committed transition count per cell —
        including any glitches, which is why the batch backend's cycle-level
        counts are only cross-checked against settled *values*, not against
        these totals.
        """
        outputs = []
        activity_by_cell: Dict[str, int] = {}
        activity_by_type: Dict[str, int] = {}
        net_values: Dict[str, list] = {name: [] for name in self.netlist.nets}
        for assignments in batch:
            sim = self._settled_simulator(assignments)
            outputs.append({net: sim.values[net] for net in self.netlist.primary_outputs})
            for record in sim.transition_log:
                activity_by_cell[record.cell] = activity_by_cell.get(record.cell, 0) + 1
                activity_by_type[record.cell_type] = (
                    activity_by_type.get(record.cell_type, 0) + 1
                )
            for name, value in sim.values.items():
                net_values[name].append(value)
        return BatchResult(
            samples=len(outputs),
            outputs=outputs,
            activity_by_cell=activity_by_cell,
            activity_by_cell_type=activity_by_type,
            net_values=net_values,
        )


register_backend("event", EventBackend)
