"""Reusable compiled-state sessions for repeated small batches.

The vectorized backends are already *compile-once, run-many*: constructing
:class:`~repro.sim.backends.batch.BatchBackend` or
:class:`~repro.sim.backends.bitpack.BitpackBackend` levelizes the netlist a
single time and every subsequent ``run_arrays`` call reuses that program.
What they do **not** amortize is the stimulus: a serving workload evaluates
the same design thousands of times per second with only a handful of input
nets changing per call (the feature rails), while hundreds of configuration
nets (the clause exclude rails) carry the same values on every call.
Re-broadcasting those constants into per-sample planes on every micro-batch
costs more than the gate evaluation itself once batches shrink to the
64-lane words the serving gateway dispatches.

:class:`BackendSession` closes that gap.  It binds a backend instance to a
fixed scalar assignment for the constant nets, caches the broadcast
``uint8`` planes per batch size (a micro-batching server sees only a few
distinct sizes — the full word and the ragged deadline flushes), and
exposes the same ``run_arrays`` / ``run_timed`` entry points taking only
the *varying* planes.  Results are bit-identical to passing the merged
stimulus to the backend directly (the session tests pin this), so sessions
never change what is measured — only how much per-call work it costs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.circuits.netlist import Netlist
from repro.obs import metrics as _metrics

from .base import BackendError


class BackendSession:
    """A vectorized backend bound to constant input nets, for repeated calls.

    Parameters
    ----------
    backend:
        A constructed vectorized backend (``"batch"`` or ``"bitpack"`` —
        any object exposing ``run_arrays``; the event backend does not) —
        or a backend *name*, in which case *program* must carry the
        precompiled :class:`~repro.sim.program.CompiledProgram` to execute
        (the serving worker's cache-served construction path).
    constants:
        ``net → scalar value`` assignment applied on every call.  Every net
        must exist in the backend's net table.  Varying planes passed to
        :meth:`run_arrays` / :meth:`run_timed` may not overlap these nets —
        an overlap almost always means the caller bound the wrong set, so
        it raises instead of silently picking a winner.
    program:
        Only with a backend name: the compiled program to instantiate it
        from (``get_backend(name, program=...)``).
    """

    def __init__(
        self,
        backend,
        constants: Optional[Mapping[str, int]] = None,
        program=None,
    ) -> None:
        if isinstance(backend, str):
            from .base import get_backend

            if program is None:
                raise BackendError(
                    "constructing a session from a backend name requires "
                    "program= (a precompiled CompiledProgram)"
                )
            backend = get_backend(backend, program=program)
        elif program is not None:
            raise BackendError(
                "program= is only meaningful with a backend name; the "
                "constructed backend already carries its program"
            )
        if not hasattr(backend, "run_arrays"):
            raise BackendError(
                f"backend {getattr(backend, 'name', backend)!r} has no vectorized "
                "run_arrays entry point; sessions require a batch or bitpack backend"
            )
        self.backend = backend
        table = getattr(backend, "program", None)
        nets = table.nets if table is not None else backend.netlist.nets
        self.constants: Dict[str, int] = dict(constants or {})
        for net, value in self.constants.items():
            if net not in nets:
                raise KeyError(f"constant net {net!r} does not exist in the netlist")
            if int(value) not in (0, 1):
                raise BackendError(
                    f"constant net {net!r} must be Boolean, got {value!r}"
                )
        #: Broadcast plane cache: batch size -> {net: uint8 plane}.
        self._plane_cache: Dict[int, Dict[str, np.ndarray]] = {}
        registry = _metrics.default_registry()
        self._cache_hits = registry.counter(
            "session_plane_cache_hits",
            "BackendSession constant-plane cache hits (per batch size).",
        )
        self._cache_misses = registry.counter(
            "session_plane_cache_misses",
            "BackendSession constant-plane cache misses (plane broadcasts).",
        )

    @property
    def netlist(self) -> Optional[Netlist]:
        """The bound backend's netlist (``None`` for program-built backends)."""
        return self.backend.netlist

    def _merged(
        self,
        varying: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    ) -> Dict[str, Union[int, np.ndarray]]:
        """Merge cached constant planes with the per-call varying planes."""
        overlap = sorted(set(varying) & set(self.constants))
        if overlap:
            raise BackendError(
                f"varying planes overlap bound constants (e.g. {overlap[:3]}); "
                "rebind the session without these nets instead"
            )
        samples = 1
        for value in varying.values():
            if np.ndim(value) > 0:
                samples = int(np.shape(value)[0])
                break
        cached = self._plane_cache.get(samples)
        if cached is None:
            self._cache_misses.inc()
            cached = {
                net: np.full(samples, int(value), dtype=np.uint8)
                for net, value in self.constants.items()
            }
            self._plane_cache[samples] = cached
        else:
            self._cache_hits.inc()
        merged: Dict[str, Union[int, np.ndarray]] = dict(cached)
        merged.update(varying)
        return merged

    def run_arrays(
        self,
        varying: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        baseline: Optional[Mapping[str, int]] = None,
        transitions_per_toggle: int = 2,
    ):
        """Functional pass: the backend's ``run_arrays`` over the merged stimulus.

        *varying* carries only the nets that change call to call; the bound
        constants are filled in from the per-batch-size plane cache.  All
        other semantics (baseline activity counting, result type) are the
        bound backend's.
        """
        return self.backend.run_arrays(
            self._merged(varying),
            baseline=baseline,
            transitions_per_toggle=transitions_per_toggle,
        )

    def run_timed(
        self,
        varying: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        spacer: Mapping[str, int],
        delay_variation: Optional[Dict[str, float]] = None,
    ):
        """Timed pass: the backend's ``run_timed`` over the merged stimulus.

        Returns the backend's
        :class:`~repro.sim.backends.timed.TimedBatchResult` — per-sample
        arrival times and switching energy for full handshake cycles, e.g.
        for per-request latency/energy attribution in the serving gateway.
        """
        return self.backend.run_timed(
            self._merged(varying), spacer, delay_variation=delay_variation
        )
