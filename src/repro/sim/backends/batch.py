"""Levelized vectorized simulation backend.

:class:`BatchBackend` trades the event simulator's timing fidelity for
throughput: the netlist is topologically levelized **once** (see
:mod:`repro.circuits.levelize`), each cell is compiled to a vectorized
three-valued NumPy operation, and an entire batch of input vectors is pushed
through every cell exactly once.  Evaluating *B* samples therefore costs one
NumPy op sequence over ``(B,)`` arrays instead of ``B`` full event-driven
settles — two to three orders of magnitude faster in practice.

Value encoding
--------------
Nets are ``uint8`` arrays over the batch with ``0``, ``1`` and ``2`` (the
``X``/unknown sentinel).  Every gate uses the same controlling-value
three-valued semantics as :mod:`repro.circuits.gates`, so the settled values
match the event backend **gate for gate** (the equivalence tests assert
this).

Sequential cells
----------------
C-elements are evaluated with their *final* input values: all-1 → 1,
all-0 → 0, otherwise ``X`` (the state a from-scratch event settle would also
hold).  This is exact for monotonically-settling netlists — which dual-rail
circuits are by construction (paper Requirement 2) — and for the input-latch
idiom where both C inputs share one rail.  Clocked flip-flops have no
single-pass functional meaning, so netlists containing ``DFF`` cells are
rejected: use the event backend for the synchronous baseline.

Switching activity
------------------
For spacer-separated protocols each handshake cycle toggles a cell output
away from its rest value and back, i.e. **two** committed transitions per
cell whose valid-phase value differs from its spacer-phase value.  Passing
the spacer input word as ``baseline`` makes :meth:`BatchBackend.run_arrays`
count exactly that, giving the per-gate activity that energy estimation
needs without simulating the return-to-spacer phase.  (Glitches, which the
event simulator does capture, are not modelled — dual-rail switching is
glitch-free by monotonicity.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.gates import LogicValue
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.obs import trace as _trace

from ..kernels import (
    PlaneMatrixView,
    baseline_memo_key,
    bulk_stimulus_matrix,
    fused_kernel,
    grouped_batch_activity,
)
from ..program import CompiledProgram, compile_program
from .base import (
    BackendError,
    BatchResult,
    bind_cell_ops,
    make_cell_type_compiler,
    register_backend,
)

#: Batch-plane encoding of the unknown (``X``) logic value.
X = np.uint8(2)
_ZERO = np.uint8(0)
_ONE = np.uint8(1)
#: Three-valued NOT as a lookup table over {0, 1, X}.
_NOT_LUT = np.array([1, 0, 2], dtype=np.uint8)

_ArrayFn = Callable[[List[np.ndarray]], np.ndarray]


def _and_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorized three-valued AND: 0 dominates, all-1 gives 1, else X."""
    any0 = arrays[0] == 0
    all1 = arrays[0] == 1
    for a in arrays[1:]:
        any0 = any0 | (a == 0)
        all1 = all1 & (a == 1)
    return np.where(any0, _ZERO, np.where(all1, _ONE, X)).astype(np.uint8)


def _or_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorized three-valued OR: 1 dominates, all-0 gives 0, else X."""
    any1 = arrays[0] == 1
    all0 = arrays[0] == 0
    for a in arrays[1:]:
        any1 = any1 | (a == 1)
        all0 = all0 & (a == 0)
    return np.where(any1, _ONE, np.where(all0, _ZERO, X)).astype(np.uint8)


def _xor_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorized three-valued XOR: any X poisons the result."""
    unknown = arrays[0] == X
    acc = arrays[0].copy()
    for a in arrays[1:]:
        unknown = unknown | (a == X)
        acc = acc ^ a
    return np.where(unknown, X, acc & 1).astype(np.uint8)


def _maj3_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorized three-valued 3-input majority (controlling 2-of-3)."""
    ones = (arrays[0] == 1).astype(np.uint8)
    zeros = (arrays[0] == 0).astype(np.uint8)
    for a in arrays[1:]:
        ones = ones + (a == 1)
        zeros = zeros + (a == 0)
    return np.where(ones >= 2, _ONE, np.where(zeros >= 2, _ZERO, X)).astype(np.uint8)


def _c_element_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """C-element with final input values: all-1 → 1, all-0 → 0, else X (hold)."""
    all1 = arrays[0] == 1
    all0 = arrays[0] == 0
    for a in arrays[1:]:
        all1 = all1 & (a == 1)
        all0 = all0 & (a == 0)
    return np.where(all1, _ONE, np.where(all0, _ZERO, X)).astype(np.uint8)


#: Cell-type dispatch over the uint8-array primitives (shared shape with
#: the bitpack backend — see :func:`make_cell_type_compiler`).
_compile_cell_type = make_cell_type_compiler(
    "batch",
    and_fn=_and_arrays,
    or_fn=_or_arrays,
    xor_fn=_xor_arrays,
    maj3_fn=_maj3_arrays,
    c_fn=_c_element_arrays,
    invert=lambda array: _NOT_LUT[array],
)


def normalize_input_planes(
    netlist: Union[Netlist, CompiledProgram],
    inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
) -> Tuple[Dict[str, np.ndarray], int]:
    """Normalize a stimulus mapping into ``uint8`` planes, inferring batch size.

    Shared by every vectorized backend: scalars broadcast over the batch,
    array lengths must agree, values must be Boolean, and every net must
    exist in *netlist* — either a real :class:`~repro.circuits.netlist.Netlist`
    or a :class:`~repro.sim.program.CompiledProgram` net table (anything
    whose ``.nets`` supports membership).  Returns ``(planes, samples)``.
    """
    samples: Optional[int] = None
    for value in inputs.values():
        if np.ndim(value) > 0:
            n = int(np.shape(value)[0])
            if samples is not None and samples != n:
                raise BackendError(
                    f"inconsistent batch sizes in input arrays ({samples} vs {n})"
                )
            samples = n
    if samples is None:
        samples = 1
    planes: Dict[str, np.ndarray] = {}
    for net, value in inputs.items():
        if net not in netlist.nets:
            raise KeyError(f"unknown net {net!r}")
        plane = np.asarray(value, dtype=np.uint8)
        if plane.ndim == 0:
            plane = np.full(samples, int(plane), dtype=np.uint8)
        if np.any(plane > 1):
            raise BackendError(f"input plane for {net!r} contains non-Boolean values")
        planes[net] = plane
    return planes, samples


def stacked_batch_inputs(
    batch: Sequence[Mapping[str, int]],
) -> Dict[str, np.ndarray]:
    """Stack per-sample assignment mappings into per-net input arrays.

    The :meth:`SimulationBackend.run_batch` front end shared by the
    vectorized backends; raises :class:`BackendError` when the batch is
    ragged (a net assigned in some samples but not all).
    """
    nets = sorted({net for assignments in batch for net in assignments})
    inputs = {
        net: np.array([int(assignments[net]) for assignments in batch], dtype=np.uint8)
        for net in nets
        if all(net in assignments for assignments in batch)
    }
    missing = [net for net in nets if net not in inputs]
    if missing:
        raise BackendError(
            f"ragged batch: nets {missing[:4]} are not assigned in every sample"
        )
    return inputs


def boxed_batch_result(result, netlist: Union[Netlist, CompiledProgram]) -> BatchResult:
    """Box a vectorized array result into the protocol-level :class:`BatchResult`.

    *result* is duck-typed over the plane-result interface the vectorized
    backends share (``samples``, ``values`` and the activity dicts) —
    :class:`ArrayBatchResult` or the bitpack backend's
    ``PackedBatchResult``; *netlist* is a
    :class:`~repro.circuits.netlist.Netlist` or a compiled program's net
    table (``.nets`` + ``.primary_outputs``).  Decoding goes through whole
    ``uint8`` planes (one vectorized unpack per net for packed results),
    never per-sample scalar extraction.
    """
    planes = result.values
    net_values = {}
    for net in netlist.nets:
        net_values[net] = [None if v == 2 else v for v in planes[net].tolist()]
    outputs = [
        {net: net_values[net][k] for net in netlist.primary_outputs}
        for k in range(result.samples)
    ]
    return BatchResult(
        samples=result.samples,
        outputs=outputs,
        activity_by_cell=result.activity_by_cell,
        activity_by_cell_type=result.activity_by_cell_type,
        net_values=net_values,
    )


@dataclass
class ArrayBatchResult:
    """Raw array-plane result of a :meth:`BatchBackend.run_arrays` call.

    ``values[net]`` is the ``(samples,)`` ``uint8`` plane of every net
    (``2`` encodes X).  This is the zero-copy interface the experiment
    harnesses decode verdicts from; :class:`~repro.sim.backends.base.BatchResult`
    is the boxed per-sample view used for protocol-level interop.  Under
    the fused kernel engine ``values`` is a
    :class:`~repro.sim.kernels.PlaneMatrixView` (row views into one value
    matrix) rather than a dict — same mapping interface, no per-net copies.
    """

    samples: int
    values: Mapping[str, np.ndarray]
    activity_by_cell: Dict[str, int] = field(default_factory=dict)
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)

    def value_of(self, net: str, sample: int) -> LogicValue:
        """Decode one net value back into the scalar LogicValue domain."""
        v = int(self.values[net][sample])
        return None if v == int(X) else v

    def sample_values(self, sample: int, nets: Sequence[str]) -> Dict[str, LogicValue]:
        """Scalar values of *nets* for one sample."""
        return {net: self.value_of(net, sample) for net in nets}


class BatchBackend:
    """Vectorized levelized functional backend (``name="batch"``).

    Parameters
    ----------
    netlist:
        Combinational (levelizable) netlist; may contain C-elements but not
        flip-flops.
    library:
        Accepted for interface parity with the event backend; the batch
        engine is purely functional, so only :class:`~repro.circuits.library.VoltageModel.is_functional`
        gating by callers applies.
    vdd:
        Recorded for reporting; does not change functional results.
    fused:
        Fused-kernel tier selector (``"off"``/``"grouped"``/``"codegen"``
        or a boolean); ``None`` defers to the ``REPRO_FUSED_KERNELS``
        environment variable, defaulting to the grouped engine.  See
        :mod:`repro.sim.kernels`.
    kernel_store:
        Optional :class:`~repro.sim.program_cache.ProgramCache` used to
        persist generated kernel source in codegen mode.
    """

    name = "batch"

    def __init__(
        self,
        netlist: Optional[Netlist] = None,
        library: Optional[CellLibrary] = None,
        vdd: Optional[float] = None,
        program: Optional[CompiledProgram] = None,
        fused=None,
        kernel_store=None,
    ) -> None:
        if netlist is None and program is None:
            raise BackendError(
                f"{self.name} backend needs a netlist= or a precompiled program="
            )
        if program is None:
            program = compile_program(netlist, library, vdd=vdd)
        self.netlist = netlist
        self.library = library
        self.vdd = vdd if vdd is not None else program.vdd
        #: The backend-neutral compile artifact this instance executes.
        self.program = program
        self._constants = list(program.constants)
        #: Grouped/codegen kernel, or ``None`` when running the per-cell loop.
        self._kernel = fused_kernel(program, self.name, fused=fused,
                                    store=kernel_store)
        self._ops = (
            None if self._kernel is not None
            else bind_cell_ops(program, _compile_cell_type)
        )
        #: Single-slot (key, settled planes) memo of the activity baseline.
        self._rest_memo = None

    # ------------------------------------------------------------ planes
    def _input_planes(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    ) -> Tuple[Dict[str, np.ndarray], int]:
        """Normalize the stimulus into uint8 planes and infer the batch size."""
        return normalize_input_planes(self.program, inputs)

    def run_arrays(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        baseline: Optional[Mapping[str, int]] = None,
        transitions_per_toggle: int = 2,
    ) -> ArrayBatchResult:
        """Push a batch through the netlist; the workhorse entry point.

        Parameters
        ----------
        inputs:
            Primary-input net → per-sample value array (or a scalar,
            broadcast over the batch).  Unassigned primary inputs evaluate
            as X, exactly like an undriven input in the event simulator.
        baseline:
            Optional rest-state assignment.  When given, it is evaluated
            once and every cell whose batch value differs from its baseline
            value contributes ``transitions_per_toggle`` transitions per
            differing sample (2 models one spacer→valid→spacer handshake).
        """
        if self._kernel is not None:
            return self._run_fused(inputs, baseline, transitions_per_toggle)
        with _trace.span("batch.pack") as pack_span:
            planes, samples = self._input_planes(inputs)
            pack_span.add(samples=samples)
            x_plane = np.full(samples, X, dtype=np.uint8)
            values: Dict[str, np.ndarray] = {}
            for name in self.program.primary_inputs:
                values[name] = planes.pop(name, x_plane)
            # Stimulus may also force internal nets that are actually inputs
            # of sub-blocks under test; remaining planes are applied verbatim.
            values.update(planes)
            for net, constant in self._constants:
                values[net] = np.full(samples, constant, dtype=np.uint8)
        with _trace.span("batch.levels", cells=len(self._ops)):
            for op in self._ops:
                arrays = [values.get(net, x_plane) for net in op.in_nets]
                values[op.out_net] = op.fn(arrays)
            for net in self.program.nets:
                if net not in values:
                    values[net] = x_plane

        activity_by_cell: Dict[str, int] = {}
        activity_by_type: Dict[str, int] = {}
        if baseline is not None:
            with _trace.span("batch.activity"):
                rest = self.run_arrays(baseline, baseline=None)
                for op in self._ops:
                    plane = values[op.out_net]
                    rest_value = rest.values[op.out_net][0]
                    toggles = int(np.count_nonzero(
                        (plane != rest_value) & (plane != X) & (rest_value != X)
                    ))
                    if toggles:
                        transitions = toggles * transitions_per_toggle
                        activity_by_cell[op.cell_name] = transitions
                        activity_by_type[op.cell_type] = (
                            activity_by_type.get(op.cell_type, 0) + transitions
                        )
        return ArrayBatchResult(
            samples=samples,
            values=values,
            activity_by_cell=activity_by_cell,
            activity_by_cell_type=activity_by_type,
        )

    # ------------------------------------------------------- fused kernels
    def _fused_values(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    ) -> Tuple[np.ndarray, int]:
        """Pack the stimulus into the value matrix and run the level sweeps."""
        plan = self._kernel.plan
        with _trace.span("batch.pack") as pack_span:
            rows, stacked, samples = bulk_stimulus_matrix(inputs, plan.net_index)
            pack_span.add(samples=samples)
            # X-initialised rows cover unassigned primary inputs and
            # undriven nets, exactly like the looped engine's x_plane.  The
            # level sweeps overwrite every driven row, so only undriven
            # rows not in the stimulus actually need the X fill.
            values = np.empty((plan.num_nets, samples), dtype=np.uint8)
            values[np.setdiff1d(plan.nonoutput_rows, rows)] = X
            values[rows] = stacked
            for net, constant in self._constants:
                values[plan.net_index[net]] = np.uint8(constant)
        with _trace.span("batch.levels", cells=len(self.program.ops)):
            self._kernel.execute(values)
        return values, samples

    def _fused_rest_values(
        self, baseline: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    ) -> np.ndarray:
        """The settled rest-state value matrix for *baseline*, memoized.

        Activity accounting needs the baseline evaluated on every call, but
        callers overwhelmingly pass the same scalar spacer word each time —
        a single-slot memo keyed on the mapping's contents
        (:func:`~repro.sim.kernels.baseline_memo_key`) skips the repeated
        level sweep.  Array-valued baselines bypass the memo.
        """
        key = baseline_memo_key(baseline)
        if key is not None and self._rest_memo is not None:
            cached_key, cached_values = self._rest_memo
            if cached_key == key:
                return cached_values
        rest_values, _ = self._fused_values(baseline)
        if key is not None:
            self._rest_memo = (key, rest_values)
        return rest_values

    def _run_fused(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        baseline: Optional[Mapping[str, int]],
        transitions_per_toggle: int,
    ) -> ArrayBatchResult:
        """Grouped-kernel twin of :meth:`run_arrays` (bit-identical results)."""
        plan = self._kernel.plan
        values, samples = self._fused_values(inputs)
        activity_by_cell: Dict[str, int] = {}
        activity_by_type: Dict[str, int] = {}
        if baseline is not None:
            with _trace.span("batch.activity"):
                rest_values = self._fused_rest_values(baseline)
                activity_by_cell, activity_by_type = grouped_batch_activity(
                    plan, values, rest_values, transitions_per_toggle
                )
        return ArrayBatchResult(
            samples=samples,
            values=PlaneMatrixView(values, plan.net_index),
            activity_by_cell=activity_by_cell,
            activity_by_cell_type=activity_by_type,
        )

    # -------------------------------------------------------------- timing
    def run_timed(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        spacer: Mapping[str, int],
        delay_variation: Optional[Dict[str, float]] = None,
    ):
        """Per-sample arrival times and energy for a batch of handshake cycles.

        The vectorized data-dependent timing engine
        (:class:`~repro.sim.backends.timed.TimedProgram`): every cycle is a
        spacer→valid→spacer handshake starting from the *spacer* rest word,
        and the result carries per-sample per-net arrival times for both
        phases plus per-sample switching energy — equivalent to the
        event-driven environment on monotonic (dual-rail) netlists within
        float re-association accuracy (see :mod:`repro.sim.backends.timed`
        for the tolerance contract), at batch-backend throughput.  Requires
        the backend to have been built with a characterised library; the
        compiled program is cached, so repeated calls only pay the array
        sweeps.

        Returns a :class:`~repro.sim.backends.timed.TimedBatchResult`.
        """
        from .timed import backend_run_timed

        return backend_run_timed(self, inputs, spacer, delay_variation)

    # ----------------------------------------------------------- protocol
    def evaluate(self, assignments: Mapping[str, int]) -> Dict[str, LogicValue]:
        """Settled value of every net for one primary-input assignment."""
        result = self.run_arrays(assignments)
        return {net: result.value_of(net, 0) for net in self.program.nets}

    def run_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        baseline: Optional[Mapping[str, int]] = None,
    ) -> BatchResult:
        """Protocol-compliant batched evaluation over per-sample mappings."""
        if not batch:
            return BatchResult(samples=0, outputs=[])
        result = self.run_arrays(stacked_batch_inputs(batch), baseline=baseline)
        return boxed_batch_result(result, self.program)


register_backend("batch", BatchBackend)
