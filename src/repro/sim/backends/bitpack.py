"""Bit-packed 64-lane simulation backend.

:class:`BitpackBackend` is the third functional backend and the fastest: it
packs the *sample axis* into ``uint64`` bit-planes — 64 samples per machine
word — so that evaluating a gate over the whole batch costs a handful of
bitwise word operations instead of one byte-per-sample NumPy pass (the
``"batch"`` backend) or one full event-driven settle per sample (the
``"event"`` backend).  This is the same trick production logic simulators
use for functional regression runs.

Value encoding
--------------
Every net carries **two** bit-planes, mirroring the dual-rail encoding the
paper's circuits themselves use:

``ones``
    bit *k* set ⇔ sample *k* settled to logic 1;
``zeros``
    bit *k* set ⇔ sample *k* settled to logic 0.

A sample with neither bit set is unknown (``X``); both bits set never
occurs (the evaluators preserve this invariant).  The payoff is that the
three-valued controlling-value semantics of :mod:`repro.circuits.gates`
become closed-form word ops — for AND, ``ones = AND`` of the ones-planes
(all inputs known-1) and ``zeros = OR`` of the zeros-planes (any input
known-0); OR is the exact dual; an inverter merely *swaps* the planes.
Settled values therefore match the event and batch backends gate for gate
(the equivalence tests assert this).

Ragged tails
------------
Sample counts not divisible by 64 leave unused lanes in the final word.
Those tail lanes simply carry no plane bits — i.e. they are ``X`` — so they
can never contribute to decoded values or to activity popcounts; no masking
is needed anywhere on the hot path.

Switching activity
------------------
As in the batch backend, passing the spacer input word as ``baseline``
counts one spacer→valid→spacer handshake as two committed transitions per
cell whose valid-phase value differs from its (known) rest value.  Here the
count is a single popcount per cell: against a rest value of 0 the toggling
samples are exactly the ``ones`` plane, against 1 exactly the ``zeros``
plane — unknown lanes (including the masked tail) are excluded by
construction.  Energy estimates are therefore bit-identical to the batch
backend's.

Sequential cells follow the batch backend's contract: C-elements evaluate
with their final input values (exact for monotonically-settling dual-rail
netlists), and clocked netlists (``DFF``) are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.gates import LogicValue
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.obs import trace as _trace

from ..kernels import (
    PlanePairMatrixView,
    baseline_memo_key,
    bulk_stimulus_matrix,
    fused_kernel,
    grouped_bitpack_activity,
)
from ..program import CompiledProgram, compile_program
from .base import (
    BackendError,
    BatchResult,
    bind_cell_ops,
    make_cell_type_compiler,
    register_backend,
)
from .batch import X, boxed_batch_result, normalize_input_planes, stacked_batch_inputs

#: Samples per packed word (the lane width of the engine).
WORD_BITS = 64

#: A net's packed value: ``(ones, zeros)`` bit-plane word arrays.
PlanePair = Tuple[np.ndarray, np.ndarray]


def words_for(samples: int) -> int:
    """Number of ``uint64`` words needed to hold *samples* one-bit lanes."""
    return (samples + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray, samples: int) -> np.ndarray:
    """Pack a ``(samples,)`` 0/1 array into ``uint64`` words, LSB-first.

    Lanes past *samples* in the final word are left clear, which encodes
    them as unknown (``X``) under the two-plane representation — the masked
    ragged tail.
    """
    padded = np.zeros(words_for(samples) * WORD_BITS, dtype=np.uint8)
    padded[:samples] = bits
    return np.packbits(padded, bitorder="little").view(np.uint64)


def unpack_bits(words: np.ndarray, samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first *samples* lanes as a 0/1 array."""
    return np.unpackbits(words.view(np.uint8), bitorder="little")[:samples]


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across *words*."""
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - exercised only on NumPy 1.x

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across *words* (NumPy 1.x fallback)."""
        return int(np.unpackbits(words.view(np.uint8)).sum())


# ---------------------------------------------------------------------------
# Word-level three-valued gate evaluators.  Each takes the (ones, zeros)
# plane pairs of the cell's inputs in pin order and returns the output pair;
# all preserve the "never both planes set" invariant.
# ---------------------------------------------------------------------------


def _and_planes(planes: Sequence[PlanePair]) -> PlanePair:
    """Bitwise three-valued AND: all known-1 → 1, any known-0 → 0, else X."""
    ones, zeros = planes[0]
    for o, z in planes[1:]:
        ones = ones & o
        zeros = zeros | z
    return ones, zeros


def _or_planes(planes: Sequence[PlanePair]) -> PlanePair:
    """Bitwise three-valued OR: any known-1 → 1, all known-0 → 0, else X."""
    ones, zeros = planes[0]
    for o, z in planes[1:]:
        ones = ones | o
        zeros = zeros & z
    return ones, zeros


def _not_plane(pair: PlanePair) -> PlanePair:
    """Bitwise three-valued NOT — a zero-cost plane swap."""
    ones, zeros = pair
    return zeros, ones


def _xor_planes(planes: Sequence[PlanePair]) -> PlanePair:
    """Bitwise three-valued XOR: any unknown input poisons the sample."""
    ones, zeros = planes[0]
    known = ones | zeros
    acc = ones
    for o, z in planes[1:]:
        known = known & (o | z)
        acc = acc ^ o
    out_ones = acc & known
    return out_ones, known ^ out_ones


def _maj3_planes(planes: Sequence[PlanePair]) -> PlanePair:
    """Bitwise three-valued 3-input majority (controlling 2-of-3)."""
    (oa, za), (ob, zb), (oc, zc) = planes
    ones = (oa & ob) | (oa & oc) | (ob & oc)
    zeros = (za & zb) | (za & zc) | (zb & zc)
    return ones, zeros


def _c_element_planes(planes: Sequence[PlanePair]) -> PlanePair:
    """C-element with final input values: all-1 → 1, all-0 → 0, else X."""
    ones, zeros = planes[0]
    for o, z in planes[1:]:
        ones = ones & o
        zeros = zeros & z
    return ones, zeros


#: Cell-type dispatch over the bit-plane primitives (shared shape with the
#: batch backend — see :func:`make_cell_type_compiler`).
_compile_cell_type = make_cell_type_compiler(
    "bitpack",
    and_fn=_and_planes,
    or_fn=_or_planes,
    xor_fn=_xor_planes,
    maj3_fn=_maj3_planes,
    c_fn=_c_element_planes,
    invert=_not_plane,
)


class _LazyPlaneView(Mapping):
    """Read-only ``net → uint8 sample plane`` view over a packed result.

    Unpacking every net eagerly would cost the same memory traffic the
    packing saved, so planes are decoded (and cached) only on access — the
    verdict decoders touch three rails of a thousand-net design.
    """

    def __init__(self, result: "PackedBatchResult") -> None:
        self._result = result

    def __getitem__(self, net: str) -> np.ndarray:
        """The unpacked ``uint8`` plane of *net* (``2`` encodes X)."""
        return self._result.plane(net)

    def __iter__(self) -> Iterator[str]:
        """Iterate over the packed net names."""
        return iter(self._result.packed)

    def __len__(self) -> int:
        """Number of packed nets."""
        return len(self._result.packed)


@dataclass
class PackedBatchResult:
    """Raw bit-plane result of a :meth:`BitpackBackend.run_arrays` call.

    ``packed[net]`` is the ``(ones, zeros)`` pair of ``uint64`` word arrays;
    :attr:`values` presents the same data through the lazily-unpacked
    ``uint8`` plane interface of
    :class:`~repro.sim.backends.batch.ArrayBatchResult` (``2`` encodes X),
    so every consumer of the batch backend's array results — the verdict
    decoders in :mod:`repro.analysis.measure`, the equivalence tests —
    works on either without change.  Under the fused kernel engine
    ``packed`` is a :class:`~repro.sim.kernels.PlanePairMatrixView` (row
    views into the two plane matrices) rather than a dict — same mapping
    interface, no per-net copies.
    """

    samples: int
    packed: Mapping[str, PlanePair]
    activity_by_cell: Dict[str, int] = field(default_factory=dict)
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Set up the per-net unpack cache."""
        self._planes: Dict[str, np.ndarray] = {}

    def plane(self, net: str) -> np.ndarray:
        """Unpack (and cache) the ``uint8`` sample plane of *net* (X = ``2``)."""
        cached = self._planes.get(net)
        if cached is not None:
            return cached
        ones, zeros = self.packed[net]
        one_bits = unpack_bits(ones, self.samples)
        zero_bits = unpack_bits(zeros, self.samples)
        plane = np.where(one_bits == 1, np.uint8(1),
                         np.where(zero_bits == 1, np.uint8(0), X)).astype(np.uint8)
        self._planes[net] = plane
        return plane

    @property
    def values(self) -> Mapping:
        """Lazy ``net → uint8 plane`` mapping (decoded on access)."""
        return _LazyPlaneView(self)

    def value_of(self, net: str, sample: int) -> LogicValue:
        """Decode one net value back into the scalar LogicValue domain."""
        # Index through the byte view, not word-level shifts: pack_bits
        # defines lane order via packbits(bitorder="little") on bytes, so
        # this decode is correct regardless of host word endianness.
        byte, bit = divmod(sample, 8)
        ones, zeros = self.packed[net]
        if (int(ones.view(np.uint8)[byte]) >> bit) & 1:
            return 1
        if (int(zeros.view(np.uint8)[byte]) >> bit) & 1:
            return 0
        return None

    def sample_values(self, sample: int, nets: Sequence[str]) -> Dict[str, LogicValue]:
        """Scalar values of *nets* for one sample."""
        return {net: self.value_of(net, sample) for net in nets}


class BitpackBackend:
    """Bit-packed 64-lane levelized functional backend (``name="bitpack"``).

    Parameters
    ----------
    netlist:
        Combinational (levelizable) netlist; may contain C-elements but not
        flip-flops.
    library:
        Accepted for interface parity with the other backends; the engine
        is purely functional.
    vdd:
        Recorded for reporting; does not change functional results.
    fused:
        Fused-kernel tier selector (``"off"``/``"grouped"``/``"codegen"``
        or a boolean); ``None`` defers to the ``REPRO_FUSED_KERNELS``
        environment variable, defaulting to the grouped engine.  See
        :mod:`repro.sim.kernels`.
    kernel_store:
        Optional :class:`~repro.sim.program_cache.ProgramCache` used to
        persist generated kernel source in codegen mode.
    """

    name = "bitpack"

    def __init__(
        self,
        netlist: Optional[Netlist] = None,
        library: Optional[CellLibrary] = None,
        vdd: Optional[float] = None,
        program: Optional[CompiledProgram] = None,
        fused=None,
        kernel_store=None,
    ) -> None:
        if netlist is None and program is None:
            raise BackendError(
                f"{self.name} backend needs a netlist= or a precompiled program="
            )
        if program is None:
            program = compile_program(netlist, library, vdd=vdd)
        self.netlist = netlist
        self.library = library
        self.vdd = vdd if vdd is not None else program.vdd
        #: The backend-neutral compile artifact this instance executes.
        self.program = program
        self._constants = list(program.constants)
        #: Grouped/codegen kernel, or ``None`` when running the per-cell loop.
        self._kernel = fused_kernel(program, self.name, fused=fused,
                                    store=kernel_store)
        self._ops = (
            None if self._kernel is not None
            else bind_cell_ops(program, _compile_cell_type)
        )
        #: Single-slot (key, settled planes) memo of the activity baseline.
        self._rest_memo = None

    def run_arrays(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        baseline: Optional[Mapping[str, int]] = None,
        transitions_per_toggle: int = 2,
    ) -> PackedBatchResult:
        """Push a batch through the netlist; the workhorse entry point.

        Parameters
        ----------
        inputs:
            Primary-input net → per-sample value array (or a scalar,
            broadcast over the batch).  Unassigned primary inputs evaluate
            as X, exactly like an undriven input in the event simulator.
        baseline:
            Optional rest-state assignment.  When given, it is evaluated
            once and every cell whose batch value differs from its (known)
            baseline value contributes ``transitions_per_toggle``
            transitions per differing sample (2 models one
            spacer→valid→spacer handshake).
        """
        if self._kernel is not None:
            return self._run_fused(inputs, baseline, transitions_per_toggle)
        with _trace.span("bitpack.pack") as pack_span:
            bit_planes, samples = normalize_input_planes(self.program, inputs)
            pack_span.add(samples=samples)
            words = words_for(samples)
            zero_words = np.zeros(words, dtype=np.uint64)
            valid_mask = pack_bits(np.ones(samples, dtype=np.uint8), samples)
            x_pair: PlanePair = (zero_words, zero_words)

            def encode(bits: np.ndarray) -> PlanePair:
                """Pack a known 0/1 plane: zeros = complement within valid lanes."""
                ones = pack_bits(bits, samples)
                return ones, ones ^ valid_mask

            values: Dict[str, PlanePair] = {}
            for name in self.program.primary_inputs:
                bits = bit_planes.pop(name, None)
                values[name] = x_pair if bits is None else encode(bits)
            # Stimulus may also force internal nets that are actually inputs
            # of sub-blocks under test; remaining planes are applied verbatim.
            for name, bits in bit_planes.items():
                values[name] = encode(bits)
            for net, constant in self._constants:
                values[net] = (
                    (valid_mask, zero_words) if constant else (zero_words, valid_mask)
                )
        with _trace.span("bitpack.levels", cells=len(self._ops)):
            for op in self._ops:
                planes = [values.get(net, x_pair) for net in op.in_nets]
                values[op.out_net] = op.fn(planes)
            for net in self.program.nets:
                if net not in values:
                    values[net] = x_pair

        activity_by_cell: Dict[str, int] = {}
        activity_by_type: Dict[str, int] = {}
        if baseline is not None:
            with _trace.span("bitpack.activity"):
                rest = self.run_arrays(baseline, baseline=None)
                for op in self._ops:
                    rest_value = rest.value_of(op.out_net, 0)
                    if rest_value is None:
                        continue
                    # Lanes that differ from a known rest value are exactly
                    # the opposite plane's set bits; unknown lanes (tail
                    # included) have neither bit set and drop out for free.
                    ones, zeros = values[op.out_net]
                    toggles = popcount(zeros if rest_value == 1 else ones)
                    if toggles:
                        transitions = toggles * transitions_per_toggle
                        activity_by_cell[op.cell_name] = transitions
                        activity_by_type[op.cell_type] = (
                            activity_by_type.get(op.cell_type, 0) + transitions
                        )
        return PackedBatchResult(
            samples=samples,
            packed=values,
            activity_by_cell=activity_by_cell,
            activity_by_cell_type=activity_by_type,
        )

    # ------------------------------------------------------- fused kernels
    def _fused_planes(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Pack the stimulus into the plane matrices and run the level sweeps."""
        plan = self._kernel.plan
        with _trace.span("bitpack.pack") as pack_span:
            # Normalize straight into a word-aligned stacked matrix (padding
            # lanes stay zero), so the whole stimulus packs in one
            # np.packbits call: rows are (words * 8)-byte lanes, viewable as
            # uint64 words.
            rows, stacked, samples = bulk_stimulus_matrix(
                inputs, plan.net_index, lane_align=WORD_BITS
            )
            pack_span.add(samples=samples)
            words = words_for(samples)
            # All-zero rows encode X, covering unassigned primary inputs
            # and undriven nets (same as the looped engine's x_pair).  The
            # level sweeps overwrite every driven row, so only undriven
            # rows not in the stimulus actually need the zero fill.
            ones = np.empty((plan.num_nets, words), dtype=np.uint64)
            zeros = np.empty((plan.num_nets, words), dtype=np.uint64)
            idle = np.setdiff1d(plan.nonoutput_rows, rows)
            ones[idle] = 0
            zeros[idle] = 0
            # All-lanes-valid mask, built word-wise (equivalent to packing
            # an all-ones plane, without materializing it).
            valid_mask = np.full(words, ~np.uint64(0), dtype=np.uint64)
            tail = samples % WORD_BITS
            if tail:
                valid_mask[-1] = np.uint64((1 << tail) - 1)
            if len(rows):
                packed = np.packbits(stacked, axis=1, bitorder="little").view(
                    np.uint64
                )
                ones[rows] = packed
                zeros[rows] = packed ^ valid_mask
            for net, constant in self._constants:
                row = plan.net_index[net]
                if constant:
                    ones[row] = valid_mask
                    zeros[row] = 0
                else:
                    ones[row] = 0
                    zeros[row] = valid_mask
        with _trace.span("bitpack.levels", cells=len(self.program.ops)):
            self._kernel.execute(ones, zeros)
        return ones, zeros, samples

    def _fused_rest_planes(
        self, baseline: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The settled rest-state plane matrices for *baseline*, memoized.

        Activity accounting needs the baseline evaluated on every call, but
        callers overwhelmingly pass the same scalar spacer word each time —
        a single-slot memo keyed on the mapping's contents
        (:func:`~repro.sim.kernels.baseline_memo_key`) skips the repeated
        level sweep.  Array-valued baselines bypass the memo.
        """
        key = baseline_memo_key(baseline)
        if key is not None and self._rest_memo is not None:
            cached_key, cached_planes = self._rest_memo
            if cached_key == key:
                return cached_planes
        rest_ones, rest_zeros, _ = self._fused_planes(baseline)
        if key is not None:
            self._rest_memo = (key, (rest_ones, rest_zeros))
        return rest_ones, rest_zeros

    def _run_fused(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        baseline: Optional[Mapping[str, int]],
        transitions_per_toggle: int,
    ) -> PackedBatchResult:
        """Grouped-kernel twin of :meth:`run_arrays` (bit-identical results)."""
        plan = self._kernel.plan
        ones, zeros, samples = self._fused_planes(inputs)
        activity_by_cell: Dict[str, int] = {}
        activity_by_type: Dict[str, int] = {}
        if baseline is not None:
            with _trace.span("bitpack.activity"):
                rest_ones, rest_zeros = self._fused_rest_planes(baseline)
                activity_by_cell, activity_by_type = grouped_bitpack_activity(
                    plan, ones, zeros, rest_ones, rest_zeros,
                    transitions_per_toggle,
                )
        return PackedBatchResult(
            samples=samples,
            packed=PlanePairMatrixView(ones, zeros, plan.net_index),
            activity_by_cell=activity_by_cell,
            activity_by_cell_type=activity_by_type,
        )

    # -------------------------------------------------------------- timing
    def run_timed(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        spacer: Mapping[str, int],
        delay_variation: Optional[Dict[str, float]] = None,
    ):
        """Per-sample arrival times and energy — the masked-lane timed variant.

        Arrival times are per-sample ``float64`` quantities, so unlike
        values they cannot be packed 64-to-a-word; the timed pass therefore
        runs on dense ``(samples,)`` lanes shared with
        :meth:`~repro.sim.backends.batch.BatchBackend.run_timed`.  The
        dense sweep is sized to exactly ``samples`` lanes, which is what
        masks the ragged tail: lanes past the stream length simply do not
        exist in the timing arrays, so they can never leak into latency
        percentiles or energy sums the way unmasked packed tail lanes
        could.  Results are bit-identical to the batch backend's for every
        sample count, 64-aligned or not (the equivalence tests pin 1, 63,
        64, 65 and 1000).

        Returns a :class:`~repro.sim.backends.timed.TimedBatchResult`.
        """
        from .timed import backend_run_timed

        return backend_run_timed(self, inputs, spacer, delay_variation)

    # ----------------------------------------------------------- protocol
    def evaluate(self, assignments: Mapping[str, int]) -> Dict[str, LogicValue]:
        """Settled value of every net for one primary-input assignment."""
        result = self.run_arrays(assignments)
        return {net: result.value_of(net, 0) for net in self.program.nets}

    def run_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        baseline: Optional[Mapping[str, int]] = None,
    ) -> BatchResult:
        """Protocol-compliant batched evaluation over per-sample mappings."""
        if not batch:
            return BatchResult(samples=0, outputs=[])
        result = self.run_arrays(stacked_batch_inputs(batch), baseline=baseline)
        return boxed_batch_result(result, self.program)


register_backend("bitpack", BitpackBackend)
