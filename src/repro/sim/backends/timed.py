"""Vectorized data-dependent timing engine on the levelized compile path.

The batch/bitpack backends answer *what* every net settles to, orders of
magnitude faster than the event simulator — but every timing number in the
paper's artefacts (Table I latency columns, the Figure-3 curve, the latency
distributions, the DSE latency/energy axes) is about *when*.  This module
closes that gap: it computes **per-sample arrival times** for every net of a
levelized netlist with NumPy array sweeps, so a 10k-operand latency/energy
measurement costs a handful of vectorized passes instead of 10k event-driven
handshake cycles.

Measurement model
-----------------
One dual-rail handshake cycle has two monotonic phases, each computed as one
levelized sweep over ``(samples,)`` arrays:

* **spacer→valid** — inputs leave the spacer word at ``t = 0``; every net
  that changes does so exactly once (paper Requirement 2: the mapped
  netlist is unate, so settling is monotonic and glitch-free);
* **valid→spacer** — inputs return to spacer at ``t = 0`` of the reset
  phase; again every toggled net resets exactly once.

Within a phase, a net's arrival is the time of that single committed
transition, and ``0.0`` for nets that do not change.  A cell's output
arrival is its **determining input's** arrival plus the cell's delay
(:func:`repro.sim.sta.cell_output_delay` — the same load/voltage model STA
and the event simulator use):

========================  ====================================================
final output value        determining input (early propagation)
========================  ====================================================
controlling (e.g. AND→0)  the **first** input to reach the controlling value
                          (``min`` over arrivals) — the mechanism the paper's
                          comparator exploits
non-controlling           the **last** input to reach its final value
                          (``max`` over arrivals) — the worst case
MAJ3 → v                  the **second** input to reach ``v``
C-element → v             the **last** input to reach ``v`` (C waits for all)
XOR → v                   the last transitioning input (settle time; exact
                          when at most one input toggles — always true in
                          unate-mapped dual-rail netlists, which carry no
                          XOR cells at all)
========================  ====================================================

These rules reproduce the event-driven scheduler's semantics for monotonic
netlists: the event simulator commits a cell's output one delay after the
input event that flipped its evaluation, and under single-transition
settling that input is precisely the determining input above.  Arrivals are
built from the same pairwise delay additions the event queue performs, but
the event simulator accumulates *absolute* timestamps and subtracts the
phase origin afterwards, so relative measurements differ by float
re-association noise (~1e-14 relative in practice; the equivalence tests
assert ``rtol=1e-9``, and exact equality on a single gate where both
origins are zero).

Energy
------
A cell whose valid-phase value differs from its spacer rest value toggles
twice per handshake (out and back).  Per-sample switching energy is
therefore ``2 × cell_energy(type, vdd)`` summed over the toggling cells of
that sample — exactly the activity the batch backend counts and
:class:`~repro.sim.power.PowerAccountant` prices, and (because dual-rail
settling is glitch-free) exactly the event simulator's committed transition
count as well.

Entry points
------------
Construct through the vectorized backends —
:meth:`~repro.sim.backends.batch.BatchBackend.run_timed` or
:meth:`~repro.sim.backends.bitpack.BitpackBackend.run_timed` — or directly
via :class:`TimedProgram` when reusing one compiled program across stimulus
sets.  Results come back as a :class:`TimedBatchResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.gates import LogicValue
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist
from repro.obs import trace as _trace

from ..program import CompiledProgram, compile_program
from .base import BackendError, bind_cell_ops, make_cell_type_compiler
from .batch import (
    X,
    _NOT_LUT,
    _and_arrays,
    _c_element_arrays,
    _maj3_arrays,
    _or_arrays,
    _xor_arrays,
    normalize_input_planes,
)

#: Sentinel for "cannot determine the output" in controlling-value minima;
#: always masked out before it can reach a result (the corresponding sample
#: has no output transition).
_NEVER = np.float64(np.inf)

#: A net's timed state: ``(start values, final values, arrival times)``.
#: ``start``/``final`` are ``uint8`` planes (2 = X), ``arrival`` is a
#: ``float64`` plane holding the transition time of each sample — ``0.0``
#: for samples whose value does not change this phase.  Planes may be
#: shape ``(1,)`` when constant across the batch; NumPy broadcasting keeps
#: the math uniform.
TimedPlanes = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _changed(start: np.ndarray, final: np.ndarray) -> np.ndarray:
    """Samples whose value actually transitions this phase (both values known)."""
    return (start != final) & (start != X) & (final != X)


def _mask(start: np.ndarray, final: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Zero the arrival of samples that do not transition (or are unknown)."""
    return np.where(_changed(start, final), t, 0.0)


def _last_arrival(arrivals: Sequence[np.ndarray]) -> np.ndarray:
    """Latest input arrival — the non-controlling (worst-case) rule."""
    last = arrivals[0]
    for arr in arrivals[1:]:
        last = np.maximum(last, arr)
    return last


def _first_arrival_at(
    finals: Sequence[np.ndarray], arrivals: Sequence[np.ndarray], value: int
) -> np.ndarray:
    """Earliest arrival among inputs whose final value is *value*.

    The controlling-value early-propagation rule: inputs not settling to
    *value* can never determine a controlling output and are excluded
    (:data:`_NEVER`).
    """
    first = np.where(finals[0] == value, arrivals[0], _NEVER)
    for fin, arr in zip(finals[1:], arrivals[1:]):
        first = np.minimum(first, np.where(fin == value, arr, _NEVER))
    return first


def _second_arrival_at(
    finals: Sequence[np.ndarray], arrivals: Sequence[np.ndarray], values: np.ndarray
) -> np.ndarray:
    """Second-earliest arrival among three inputs settling to *values*.

    The MAJ3 rule: the output flips to ``v`` when the second input reaches
    ``v``.  Inputs not settling to ``v`` are excluded; inputs already at
    ``v`` at phase start carry arrival ``0.0`` and count immediately.
    """
    a, b, c = (
        np.where(fin == values, arr, _NEVER) for fin, arr in zip(finals, arrivals)
    )
    return np.minimum(
        np.minimum(np.maximum(a, b), np.maximum(a, c)), np.maximum(b, c)
    )


def _timed_and(planes: Sequence[TimedPlanes]) -> TimedPlanes:
    """Timed three-valued AND: a 0 propagates early, a 1 waits for all."""
    starts = [p[0] for p in planes]
    finals = [p[1] for p in planes]
    arrivals = [p[2] for p in planes]
    start = _and_arrays(starts)
    final = _and_arrays(finals)
    t = np.where(
        final == 0,
        _first_arrival_at(finals, arrivals, 0),
        _last_arrival(arrivals),
    )
    return start, final, _mask(start, final, t)


def _timed_or(planes: Sequence[TimedPlanes]) -> TimedPlanes:
    """Timed three-valued OR: a 1 propagates early, a 0 waits for all."""
    starts = [p[0] for p in planes]
    finals = [p[1] for p in planes]
    arrivals = [p[2] for p in planes]
    start = _or_arrays(starts)
    final = _or_arrays(finals)
    t = np.where(
        final == 1,
        _first_arrival_at(finals, arrivals, 1),
        _last_arrival(arrivals),
    )
    return start, final, _mask(start, final, t)


def _timed_xor(planes: Sequence[TimedPlanes]) -> TimedPlanes:
    """Timed three-valued XOR: settles with its last transitioning input.

    Exact whenever at most one input toggles per phase (XOR has no
    controlling value, so two staggered input toggles would glitch the
    output — impossible in unate-mapped dual-rail netlists, which contain
    no XOR cells; the rule is the settle time for any other caller).
    """
    starts = [p[0] for p in planes]
    finals = [p[1] for p in planes]
    arrivals = [p[2] for p in planes]
    start = _xor_arrays(starts)
    final = _xor_arrays(finals)
    return start, final, _mask(start, final, _last_arrival(arrivals))


def _timed_maj3(planes: Sequence[TimedPlanes]) -> TimedPlanes:
    """Timed 3-input majority: decided by the second input to agree."""
    starts = [p[0] for p in planes]
    finals = [p[1] for p in planes]
    arrivals = [p[2] for p in planes]
    start = _maj3_arrays(starts)
    final = _maj3_arrays(finals)
    t = _second_arrival_at(finals, arrivals, final)
    return start, final, _mask(start, final, t)


def _timed_c(planes: Sequence[TimedPlanes]) -> TimedPlanes:
    """Timed C-element: switches only when the *last* input agrees."""
    starts = [p[0] for p in planes]
    finals = [p[1] for p in planes]
    arrivals = [p[2] for p in planes]
    start = _c_element_arrays(starts)
    final = _c_element_arrays(finals)
    return start, final, _mask(start, final, _last_arrival(arrivals))


def _timed_not(plane: TimedPlanes) -> TimedPlanes:
    """Timed inversion: values complement, the arrival is untouched."""
    start, final, arrival = plane
    return _NOT_LUT[start], _NOT_LUT[final], arrival


#: Cell-type dispatch over the timed (start, final, arrival) primitives —
#: the same compiler shape the batch and bitpack backends use, so complex
#: AOI/OAI/AO/OA gates compose group-wise with zero per-group delay (one
#: cell, one delay).
_compile_cell_type = make_cell_type_compiler(
    "timed",
    and_fn=_timed_and,
    or_fn=_timed_or,
    xor_fn=_timed_xor,
    maj3_fn=_timed_maj3,
    c_fn=_timed_c,
    invert=_timed_not,
)


@dataclass
class TimedBatchResult:
    """Per-sample timing, values and energy of a batch of handshake cycles.

    All per-net planes may be shape ``(1,)`` when constant across the batch
    (NumPy broadcasting); use :meth:`arrival_of` / :meth:`max_arrival` for a
    uniform ``(samples,)`` view.

    Attributes
    ----------
    samples:
        Number of operands (handshake cycles) evaluated.
    values:
        Valid-phase settled value plane per net (``uint8``; 2 encodes X) —
        identical net-for-net to the batch backend's
        :class:`~repro.sim.backends.batch.ArrayBatchResult.values`.
    spacer_values:
        Spacer-phase settled value per net (scalar — the rest state is
        sample-independent).
    arrival_valid:
        Per-sample spacer→valid arrival time (ps) of every net; ``0.0``
        for samples where the net holds its spacer value.
    arrival_reset:
        Per-sample valid→spacer arrival time (ps), measured from the
        instant the inputs return to spacer.
    energy_per_sample_fj:
        Per-sample dynamic switching energy of one full handshake cycle
        (two transitions per toggling cell, priced at the engine's supply).
    activity_by_cell / activity_by_cell_type:
        Batch-total committed transition counts — bit-identical to the
        batch backend's spacer-baseline activity accounting.
    vdd:
        Supply voltage the delays and energies were computed at.
    """

    samples: int
    values: Dict[str, np.ndarray]
    spacer_values: Dict[str, LogicValue]
    arrival_valid: Dict[str, np.ndarray]
    arrival_reset: Dict[str, np.ndarray]
    energy_per_sample_fj: np.ndarray
    activity_by_cell: Dict[str, int] = field(default_factory=dict)
    activity_by_cell_type: Dict[str, int] = field(default_factory=dict)
    vdd: float = 0.0

    def _phase(self, phase: str) -> Dict[str, np.ndarray]:
        if phase == "valid":
            return self.arrival_valid
        if phase == "reset":
            return self.arrival_reset
        raise ValueError(f"unknown phase {phase!r}; expected 'valid' or 'reset'")

    def arrival_of(self, net: str, phase: str = "valid") -> np.ndarray:
        """Arrival plane of *net*, broadcast to a full ``(samples,)`` array."""
        plane = self._phase(phase)[net]
        return np.broadcast_to(plane, (self.samples,))

    def max_arrival(self, nets: Sequence[str], phase: str = "valid") -> np.ndarray:
        """Per-sample latest arrival over *nets* — e.g. the output rails.

        With ``phase="valid"`` and the circuit's output rails this is the
        paper's per-operand spacer→valid latency ``t(S→V)``; with
        ``phase="reset"`` it is the output reset time ``t(V→S)``.
        """
        arrivals = self._phase(phase)
        worst = np.zeros(1, dtype=np.float64)
        for net in nets:
            worst = np.maximum(worst, arrivals[net])
        return np.broadcast_to(worst, (self.samples,))

    def settle_time(self, phase: str = "valid") -> np.ndarray:
        """Per-sample time of the last transition anywhere in the netlist.

        The valid-phase settle time is when the event-driven environment
        would apply the spacer (it settles fully before moving on); the
        reset-phase settle time is the paper's internal reset time that the
        grace period ``td`` must cover.
        """
        return self.max_arrival(list(self._phase(phase)), phase)

    @property
    def transitions(self) -> int:
        """Total committed transitions across the batch (both phases)."""
        return sum(self.activity_by_cell_type.values())


def backend_run_timed(
    backend,
    inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
    spacer: Mapping[str, int],
    delay_variation: Optional[Dict[str, float]] = None,
) -> "TimedBatchResult":
    """Shared ``run_timed`` implementation for the vectorized backends.

    Lazily compiles (and caches on *backend*, keyed by the delay-variation
    assignment) one :class:`TimedProgram` per configuration, so both the
    batch and bitpack entry points share a single compile/cache policy.
    """
    key = tuple(sorted((delay_variation or {}).items()))
    cache = getattr(backend, "_timed_programs", None)
    if cache is None:
        cache = backend._timed_programs = {}
    program = cache.get(key)
    if program is None:
        compiled = getattr(backend, "program", None)
        if compiled is not None and compiled.characterized:
            # The backend's CompiledProgram already carries the resolved
            # delay/energy model — no netlist re-walk, works even for
            # backends constructed from a cached program with no netlist.
            program = TimedProgram.from_program(
                compiled, delay_variation=delay_variation
            )
        elif backend.netlist is not None:
            program = TimedProgram(
                backend.netlist, backend.library, vdd=backend.vdd,
                delay_variation=delay_variation,
            )
        else:
            raise BackendError("the timed engine requires a characterised library")
        cache[key] = program
    return program.run(inputs, spacer)


class TimedProgram:
    """A netlist compiled for vectorized per-sample timing evaluation.

    Compiles once (levelization + per-cell delay resolution) and then runs
    any number of stimulus batches through :meth:`run`.  The vdd handling
    mirrors :class:`~repro.sim.simulator.GateLevelSimulator`: the supply
    defaults to the library nominal and non-functional supplies are
    rejected, because delays below the functional floor are meaningless.

    Parameters
    ----------
    netlist:
        Combinational (levelizable) netlist; C-elements allowed, flip-flops
        rejected — the synchronous baseline's latency is its STA clock
        period, not a data-dependent quantity.
    library:
        Characterised cell library supplying delays and energies (required,
        unlike the purely functional backends).
    vdd:
        Supply voltage; defaults to the library nominal.
    delay_variation:
        Optional per-instance delay multipliers, matching the event
        simulator's and STA's parameter of the same name.
    program:
        Alternative construction from a characterised
        :class:`~repro.sim.program.CompiledProgram` (see
        :meth:`from_program`): the artifact already carries the base
        delay/energy model, so no netlist or library is needed.
    """

    def __init__(
        self,
        netlist: Optional[Netlist] = None,
        library: Optional[CellLibrary] = None,
        vdd: Optional[float] = None,
        delay_variation: Optional[Dict[str, float]] = None,
        program: Optional[CompiledProgram] = None,
    ) -> None:
        if program is None:
            if library is None:
                raise BackendError("the timed engine requires a characterised library")
            if netlist is None:
                raise BackendError("the timed engine needs a netlist= or program=")
            supply = (
                float(vdd) if vdd is not None else library.voltage_model.nominal_vdd
            )
            if not library.voltage_model.is_functional(supply):
                raise BackendError(
                    f"library {library.name!r} is not functional at {supply:.2f} V; "
                    "timed results would be meaningless"
                )
            program = compile_program(netlist, library, vdd=supply)
        elif not program.characterized:
            raise BackendError(
                "the timed engine requires a characterised CompiledProgram "
                "(compiled with a library functional at the program's supply)"
            )
        self.netlist = netlist
        self.library = library
        self.vdd = program.vdd
        #: The backend-neutral compile artifact this engine executes.
        self.program = program
        self._constants = list(program.constants)
        self._ops = bind_cell_ops(program, _compile_cell_type)
        variation = dict(delay_variation or {})
        self._delays: List[float] = [
            op.delay_ps * variation.get(op.cell_name, 1.0) if variation
            else op.delay_ps
            for op in program.ops
        ]
        self._energies: List[float] = [2.0 * op.energy_fj for op in program.ops]

    @classmethod
    def from_program(
        cls,
        program: CompiledProgram,
        delay_variation: Optional[Dict[str, float]] = None,
    ) -> "TimedProgram":
        """Timed engine over a precompiled characterised program.

        Per-instance *delay_variation* multipliers are applied on top of the
        artifact's base delays — exactly the factorisation the netlist
        construction path performs, so both paths produce bit-identical
        engines for the same inputs.
        """
        return cls(program=program, delay_variation=delay_variation)

    def _phase_sweep(
        self,
        start_inputs: Dict[str, np.ndarray],
        final_inputs: Dict[str, np.ndarray],
        samples: int,
    ) -> Dict[str, TimedPlanes]:
        """One levelized sweep: (start, final, arrival) planes for every net."""
        x1 = np.full(1, X, dtype=np.uint8)
        zero1 = np.zeros(1, dtype=np.float64)
        x_triple: TimedPlanes = (x1, x1, zero1)
        planes: Dict[str, TimedPlanes] = {}
        driven = set(start_inputs) | set(final_inputs)
        for name in self.program.primary_inputs:
            driven.add(name)
        for name in driven:
            planes[name] = (
                start_inputs.get(name, x1),
                final_inputs.get(name, x1),
                zero1,
            )
        for net, constant in self._constants:
            value = np.full(1, constant, dtype=np.uint8)
            planes[net] = (value, value, zero1)
        for op, delay in zip(self._ops, self._delays):
            start, final, t = op.fn([planes.get(net, x_triple) for net in op.in_nets])
            arrival = np.where(_changed(start, final), t + delay, 0.0)
            planes[op.out_net] = (start, final, arrival)
        for net in self.program.nets:
            if net not in planes:
                planes[net] = x_triple
        return planes

    def run(
        self,
        inputs: Mapping[str, Union[int, np.ndarray, Sequence[int]]],
        spacer: Mapping[str, int],
    ) -> TimedBatchResult:
        """Time a batch of full handshake cycles.

        Parameters
        ----------
        inputs:
            Valid-phase primary-input planes (per-sample arrays, or scalars
            broadcast over the batch) — the same stimulus shape the batch
            backend's ``run_arrays`` takes.
        spacer:
            The rest-state input word every cycle starts from and returns
            to (for dual-rail circuits,
            :func:`repro.analysis.measure.spacer_assignments`).
        """
        with _trace.span("timed.run") as run_span:
            valid_planes, samples = normalize_input_planes(self.program, inputs)
            run_span.add(samples=samples)
            spacer_planes, _ = normalize_input_planes(
                self.program, {net: np.asarray([int(v)], dtype=np.uint8)
                               for net, v in spacer.items()}
            )
            with _trace.span("timed.forward"):
                forward = self._phase_sweep(spacer_planes, valid_planes, samples)
            with _trace.span("timed.backward"):
                backward = self._phase_sweep(valid_planes, spacer_planes, samples)

            values: Dict[str, np.ndarray] = {}
            spacer_values: Dict[str, LogicValue] = {}
            arrival_valid: Dict[str, np.ndarray] = {}
            arrival_reset: Dict[str, np.ndarray] = {}
            for net in self.program.nets:
                start, final, arrival = forward[net]
                values[net] = np.ascontiguousarray(
                    np.broadcast_to(final, (samples,))
                )
                rest = int(start[0])  # spacer-side planes are always shape (1,)
                spacer_values[net] = None if rest == int(X) else rest
                arrival_valid[net] = arrival
                arrival_reset[net] = backward[net][2]

            energy = np.zeros(samples, dtype=np.float64)
            activity_by_cell: Dict[str, int] = {}
            activity_by_type: Dict[str, int] = {}
            for op, per_toggle in zip(self._ops, self._energies):
                start, final, _arrival = forward[op.out_net]
                toggled = _changed(start, final)
                toggles = int(np.count_nonzero(np.broadcast_to(toggled, (samples,))))
                if toggles:
                    transitions = 2 * toggles
                    activity_by_cell[op.cell_name] = transitions
                    activity_by_type[op.cell_type] = (
                        activity_by_type.get(op.cell_type, 0) + transitions
                    )
                    if per_toggle:
                        energy += np.where(toggled, per_toggle, 0.0)
        return TimedBatchResult(
            samples=samples,
            values=values,
            spacer_values=spacer_values,
            arrival_valid=arrival_valid,
            arrival_reset=arrival_reset,
            energy_per_sample_fj=energy,
            activity_by_cell=activity_by_cell,
            activity_by_cell_type=activity_by_type,
            vdd=self.vdd,
        )
