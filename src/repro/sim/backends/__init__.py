"""Pluggable simulation backends (event-driven vs vectorized vs bit-packed).

See :mod:`repro.sim.backends.base` for the protocol and the guidance on when
to use which backend.  Summary:

* ``get_backend("event", netlist, library)`` — timing-accurate event-driven
  reference (latency, grace periods, waveforms, glitch-accurate power);
* ``get_backend("batch", netlist, library)`` — levelized NumPy engine for
  whole batches of input vectors (functional sweeps, correctness checks,
  cycle-level switching activity) at orders-of-magnitude higher throughput;
* ``get_backend("bitpack", netlist, library)`` — the bit-packed 64-lane
  engine: 64 samples per ``uint64`` word, two bit-planes per net, every
  gate a handful of bitwise word ops.  The fastest functional backend.

The vectorized backends additionally expose ``run_timed`` — the
data-dependent timing engine (:mod:`repro.sim.backends.timed`): per-sample
arrival times and switching energy for whole batches of handshake cycles,
equivalent to the event-driven environment on monotonic netlists within
float re-association accuracy (see the module docstring for the contract).
"""

from .base import (
    BackendError,
    BatchResult,
    CellOp,
    SimulationBackend,
    available_backends,
    bind_cell_ops,
    classify_cell_type,
    compile_levelized_ops,
    get_backend,
    register_backend,
)
from .batch import ArrayBatchResult, BatchBackend
from .bitpack import BitpackBackend, PackedBatchResult
from .event import EventBackend
from .session import BackendSession
from .timed import TimedBatchResult, TimedProgram

__all__ = [
    "ArrayBatchResult",
    "bind_cell_ops",
    "classify_cell_type",
    "BackendError",
    "BackendSession",
    "BatchBackend",
    "BatchResult",
    "BitpackBackend",
    "CellOp",
    "EventBackend",
    "PackedBatchResult",
    "SimulationBackend",
    "TimedBatchResult",
    "TimedProgram",
    "available_backends",
    "compile_levelized_ops",
    "get_backend",
    "register_backend",
]
