"""Pluggable simulation backends (event-driven vs vectorized batch).

See :mod:`repro.sim.backends.base` for the protocol and the guidance on when
to use which backend.  Summary:

* ``get_backend("event", netlist, library)`` — timing-accurate event-driven
  reference (latency, grace periods, waveforms, glitch-accurate power);
* ``get_backend("batch", netlist, library)`` — levelized NumPy engine for
  whole batches of input vectors (functional sweeps, correctness checks,
  cycle-level switching activity) at orders-of-magnitude higher throughput.
"""

from .base import (
    BackendError,
    BatchResult,
    SimulationBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .batch import ArrayBatchResult, BatchBackend
from .event import EventBackend

__all__ = [
    "ArrayBatchResult",
    "BackendError",
    "BatchBackend",
    "BatchResult",
    "EventBackend",
    "SimulationBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
