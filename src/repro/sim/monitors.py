"""Runtime monitors enforcing the paper's correctness requirements.

Section III of the paper lists six requirements for correct operation of the
self-timed circuit.  The *structural* ones are checked by
:mod:`repro.circuits.validate`; the *dynamic* ones are observed here during
simulation:

* Requirement 1/2 — monotonic switching at the primary inputs and within the
  circuit: during any spacer→valid or valid→spacer phase each net may change
  at most once (:class:`MonotonicityMonitor`).
* Forbidden-state avoidance — no dual-rail pair may ever reach the
  "both rails active" state (:class:`ForbiddenStateMonitor`).
* Requirement 3 — acknowledgement of spacer→valid on the primary outputs:
  :class:`CompletionObserver` records when the ``done`` signal rises and
  falls so the environment (and the tests) can verify the ordering.
* Requirements 4–6 — spacer/valid alternation of the environment: the
  dual-rail environment in :mod:`repro.sim.handshake` drives the protocol
  and raises :class:`ProtocolViolation` when the grace period is not
  honoured and an internal net had not yet reset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuits.gates import LogicValue
from repro.core.dual_rail import DualRailSignal

from .simulator import GateLevelSimulator, Monitor


class ProtocolViolation(Exception):
    """Raised when the dual-rail protocol requirements are violated."""


@dataclass
class Violation:
    """One recorded requirement violation."""

    time: float
    net: str
    message: str


class MonotonicityMonitor(Monitor):
    """Checks that every net switches at most once per protocol phase.

    A dual-rail circuit built from unate gates must switch each net
    monotonically during a spacer→valid wavefront and during the following
    valid→spacer reset.  More than one transition on the same net within a
    phase is a hazard (Requirement 2 violated).

    The environment calls :meth:`begin_phase` at every phase boundary.
    """

    def __init__(self, ignore_nets: Sequence[str] = ()) -> None:
        self.phase_name = "initial"
        self.transitions_this_phase: Dict[str, int] = {}
        self.violations: List[Violation] = []
        self.ignore_nets = set(ignore_nets)

    def begin_phase(self, name: str) -> None:
        """Start a new protocol phase (spacer→valid or valid→spacer)."""
        self.phase_name = name
        self.transitions_this_phase = {}

    def on_net_change(self, time: float, net: str, old: LogicValue, new: LogicValue,
                      cause: str) -> None:
        if net in self.ignore_nets:
            return
        if old is None:
            # First assignment after power-up is not a hazard.
            self.transitions_this_phase[net] = self.transitions_this_phase.get(net, 0)
            return
        count = self.transitions_this_phase.get(net, 0) + 1
        self.transitions_this_phase[net] = count
        if count > 1:
            self.violations.append(
                Violation(
                    time=time,
                    net=net,
                    message=(
                        f"net {net!r} switched {count} times during phase "
                        f"{self.phase_name!r} (non-monotonic)"
                    ),
                )
            )

    @property
    def ok(self) -> bool:
        """``True`` when no hazard was observed."""
        return not self.violations


class ForbiddenStateMonitor(Monitor):
    """Checks that no dual-rail pair ever enters the forbidden state.

    For an all-zero-spacer signal the forbidden state is ``(1, 1)``; for an
    all-one-spacer signal it is ``(0, 0)``.
    """

    def __init__(self, simulator: GateLevelSimulator, signals: Sequence[DualRailSignal]) -> None:
        self.simulator = simulator
        self.signals = list(signals)
        self.violations: List[Violation] = []
        self._by_rail: Dict[str, DualRailSignal] = {}
        for sig in self.signals:
            self._by_rail[sig.pos] = sig
            self._by_rail[sig.neg] = sig

    def on_net_change(self, time: float, net: str, old: LogicValue, new: LogicValue,
                      cause: str) -> None:
        sig = self._by_rail.get(net)
        if sig is None:
            return
        pos = self.simulator.value(sig.pos)
        neg = self.simulator.value(sig.neg)
        if pos is None or neg is None:
            return
        forbidden = 1 - sig.polarity.spacer_rail_value
        if pos == forbidden and neg == forbidden:
            self.violations.append(
                Violation(
                    time=time,
                    net=net,
                    message=(
                        f"dual-rail pair {sig.name!r} reached the forbidden state "
                        f"({pos}, {neg}) for {sig.polarity.value} spacer"
                    ),
                )
            )

    @property
    def ok(self) -> bool:
        """``True`` when the forbidden state was never observed."""
        return not self.violations


class CompletionObserver(Monitor):
    """Records rising and falling transitions of the completion (done) net."""

    def __init__(self, done_net: str) -> None:
        self.done_net = done_net
        self.rise_times: List[float] = []
        self.fall_times: List[float] = []

    def on_net_change(self, time: float, net: str, old: LogicValue, new: LogicValue,
                      cause: str) -> None:
        if net != self.done_net:
            return
        if new == 1 and old != 1:
            self.rise_times.append(time)
        elif new == 0 and old == 1:
            self.fall_times.append(time)

    def last_rise_after(self, t: float) -> Optional[float]:
        """Earliest recorded rise strictly after *t*."""
        for rise in self.rise_times:
            if rise > t:
                return rise
        return None

    def last_fall_after(self, t: float) -> Optional[float]:
        """Earliest recorded fall strictly after *t*."""
        for fall in self.fall_times:
            if fall > t:
                return fall
        return None


class ActivityCounter(Monitor):
    """Counts transitions per net — input data for the distribution analyses."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def on_net_change(self, time: float, net: str, old: LogicValue, new: LogicValue,
                      cause: str) -> None:
        if old is None:
            return
        self.counts[net] = self.counts.get(net, 0) + 1

    def total(self) -> int:
        """Total committed transitions observed."""
        return sum(self.counts.values())
