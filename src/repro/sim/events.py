"""Event queue for the gate-level event-driven simulator.

The simulator is a classic discrete-event engine: every scheduled net change
is an :class:`Event` with a firing time, and :class:`EventQueue` delivers
events in time order.  A monotonically increasing sequence number breaks
ties so that events scheduled earlier are delivered first at equal
timestamps, making runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.circuits.gates import LogicValue


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled value change on a net.

    Attributes
    ----------
    time:
        Simulation time in picoseconds.
    seq:
        Tie-breaking sequence number (schedule order).
    net:
        Net name whose value changes.
    value:
        New logic value (0, 1 or ``None`` for X).
    cause:
        Optional cell instance name that produced the event, or ``"PI"`` for
        environment-driven changes.  Used by monitors and debugging output.
    """

    time: float
    seq: int
    net: str = field(compare=False)
    value: LogicValue = field(compare=False)
    cause: str = field(compare=False, default="PI")


class EventQueue:
    """Priority queue of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, net: str, value: LogicValue, cause: str = "PI") -> Event:
        """Schedule a value change and return the created event."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, seq=next(self._counter), net=net, value=value, cause=cause)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest pending event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_simultaneous(self) -> List[Event]:
        """Pop every event sharing the earliest firing time."""
        if not self._heap:
            return []
        first = heapq.heappop(self._heap)
        batch = [first]
        while self._heap and self._heap[0].time == first.time:
            batch.append(heapq.heappop(self._heap))
        return batch

    def clear(self) -> None:
        """Discard every pending event."""
        self._heap.clear()

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debug aid
        return iter(sorted(self._heap))
