"""Signal traces recorded during simulation.

A :class:`Waveform` stores, per net, the ordered list of ``(time, value)``
changes observed during a run.  It supports the queries needed by the
analysis layer:

* value of a net at an arbitrary time (:meth:`Waveform.value_at`),
* the time of the first transition matching a predicate after some time
  (:meth:`Waveform.first_transition_after`), used to measure spacer→valid
  and valid→spacer latencies,
* counting transitions for switching-activity-based power estimation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.circuits.gates import LogicValue


@dataclass
class NetTrace:
    """Transition history of a single net."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[LogicValue] = field(default_factory=list)

    def record(self, time: float, value: LogicValue) -> None:
        """Append a transition (idempotent for repeated identical values)."""
        if self.values and self.values[-1] == value:
            return
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float) -> LogicValue:
        """Return the net value at *time* (``None`` before the first record)."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return None
        return self.values[idx]

    def transitions(self) -> List[Tuple[float, LogicValue]]:
        """All recorded ``(time, value)`` pairs."""
        return list(zip(self.times, self.values))

    def transition_count(self, since: float = 0.0, until: Optional[float] = None) -> int:
        """Number of value changes in the half-open window ``(since, until]``."""
        count = 0
        for t in self.times:
            if t <= since:
                continue
            if until is not None and t > until:
                break
            count += 1
        return count

    def first_time_matching(
        self, predicate: Callable[[LogicValue], bool], after: float = 0.0
    ) -> Optional[float]:
        """Earliest time strictly after *after* at which ``predicate(value)`` holds."""
        for t, v in zip(self.times, self.values):
            if t <= after:
                continue
            if predicate(v):
                return t
        return None


class Waveform:
    """Collection of :class:`NetTrace` keyed by net name."""

    def __init__(self) -> None:
        self.traces: Dict[str, NetTrace] = {}

    def record(self, net: str, time: float, value: LogicValue) -> None:
        """Record a transition of *net* at *time*."""
        trace = self.traces.get(net)
        if trace is None:
            trace = NetTrace(net)
            self.traces[net] = trace
        trace.record(time, value)

    def trace(self, net: str) -> NetTrace:
        """Return the trace of *net* (empty trace if never recorded)."""
        return self.traces.get(net, NetTrace(net))

    def value_at(self, net: str, time: float) -> LogicValue:
        """Value of *net* at *time*."""
        return self.trace(net).value_at(time)

    def first_transition_after(
        self, net: str, after: float, predicate: Callable[[LogicValue], bool]
    ) -> Optional[float]:
        """First time after *after* at which *net* satisfies *predicate*."""
        return self.trace(net).first_time_matching(predicate, after)

    def nets(self) -> Iterable[str]:
        """Names of all recorded nets."""
        return self.traces.keys()

    def total_transitions(self, since: float = 0.0, until: Optional[float] = None) -> int:
        """Total number of transitions across all nets in a window."""
        return sum(t.transition_count(since, until) for t in self.traces.values())

    def as_vcd_like_text(self, nets: Optional[Iterable[str]] = None) -> str:
        """Produce a compact human-readable dump (for debugging / examples)."""
        lines: List[str] = []
        selected = list(nets) if nets is not None else sorted(self.traces)
        for net in selected:
            trace = self.trace(net)
            changes = " ".join(
                f"{t:.0f}:{'x' if v is None else v}" for t, v in trace.transitions()
            )
            lines.append(f"{net}: {changes}")
        return "\n".join(lines)
