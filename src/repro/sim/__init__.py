"""Event-driven gate-level simulation, timing, power and voltage analysis.

Contents:

* :mod:`repro.sim.events`, :mod:`repro.sim.simulator`, :mod:`repro.sim.waveform`
  — the discrete-event gate-level simulator and its traces;
* :mod:`repro.sim.handshake` — dual-rail (spacer/valid) and synchronous
  (clocked) stimulus environments with per-operand measurements;
* :mod:`repro.sim.monitors` — runtime checks of the paper's protocol
  requirements (monotonicity, forbidden states, completion ordering);
* :mod:`repro.sim.power` — switching-activity energy and power accounting;
* :mod:`repro.sim.sta` — static timing analysis (grace periods, clock period);
* :mod:`repro.sim.voltage` — supply-voltage sweep machinery (Figure 3);
* :mod:`repro.sim.backends` — pluggable simulation backends: the
  event-driven reference (``"event"``), the levelized vectorized batch
  engine (``"batch"``) and the bit-packed 64-lane engine (``"bitpack"``)
  behind the fast experiment sweeps;
* :mod:`repro.sim.program` / :mod:`repro.sim.program_cache` — the
  serializable :class:`CompiledProgram` IR every levelized consumer
  executes (``compile_program(netlist, library)`` →
  ``get_backend(name, program=...)``), and its content-hash-addressed
  on-disk cache shared across worker processes;
* :mod:`repro.sim.kernels` — the fused grouped-kernel execution engine
  the vectorized backends run on by default: per-level gather/scatter
  groups (one vectorized call per cell shape per level) plus an optional
  generated-and-``exec``'d NumPy kernel tier cached alongside the
  program artifact.
"""

from .backends import (
    BackendError,
    BackendSession,
    BatchBackend,
    BatchResult,
    BitpackBackend,
    EventBackend,
    SimulationBackend,
    TimedBatchResult,
    TimedProgram,
    available_backends,
    get_backend,
)
from .kernels import (
    FUSED_ENV_VAR,
    FUSED_MODES,
    FusedKernel,
    GroupedPlan,
    build_grouped_plan,
    generate_kernel_source,
    resolve_fused_mode,
)
from .program import (
    PROGRAM_COMPILER_VERSION,
    CompiledProgram,
    ProgramOp,
    compile_program,
    netlist_fingerprint,
)
from .program_cache import ProgramCache, program_cache_key
from .events import Event, EventQueue
from .handshake import (
    DualRailEnvironment,
    DualRailInferenceResult,
    SynchronousCycleResult,
    SynchronousEnvironment,
)
from .monitors import (
    ActivityCounter,
    CompletionObserver,
    ForbiddenStateMonitor,
    MonotonicityMonitor,
    ProtocolViolation,
    Violation,
)
from .power import EnergyBreakdown, PowerAccountant, PowerReport
from .simulator import (
    GateLevelSimulator,
    Monitor,
    SimulationError,
    TransitionRecord,
    WIRE_CAP_PER_FANOUT_FF,
)
from .sta import (
    TimingReport,
    arrival_of_nets,
    cell_output_delay,
    output_load,
    register_to_register_period,
    static_timing_analysis,
)
from .voltage import (
    FIGURE3_VOLTAGES,
    VoltagePoint,
    delay_scaling_curve,
    exponential_region_slope,
    latency_ratio,
    sweep_supply_voltages,
)
from .waveform import NetTrace, Waveform

__all__ = [
    "ActivityCounter",
    "BackendError",
    "BatchBackend",
    "BitpackBackend",
    "BatchResult",
    "CompletionObserver",
    "DualRailEnvironment",
    "DualRailInferenceResult",
    "EnergyBreakdown",
    "Event",
    "EventBackend",
    "EventQueue",
    "FIGURE3_VOLTAGES",
    "FUSED_ENV_VAR",
    "FUSED_MODES",
    "ForbiddenStateMonitor",
    "FusedKernel",
    "GateLevelSimulator",
    "GroupedPlan",
    "Monitor",
    "MonotonicityMonitor",
    "NetTrace",
    "PowerAccountant",
    "PowerReport",
    "ProtocolViolation",
    "SimulationBackend",
    "SimulationError",
    "SynchronousCycleResult",
    "SynchronousEnvironment",
    "TimedBatchResult",
    "TimedProgram",
    "TimingReport",
    "TransitionRecord",
    "Violation",
    "VoltagePoint",
    "WIRE_CAP_PER_FANOUT_FF",
    "Waveform",
    "arrival_of_nets",
    "available_backends",
    "build_grouped_plan",
    "cell_output_delay",
    "delay_scaling_curve",
    "exponential_region_slope",
    "generate_kernel_source",
    "get_backend",
    "resolve_fused_mode",
    "latency_ratio",
    "output_load",
    "register_to_register_period",
    "static_timing_analysis",
    "sweep_supply_voltages",
]
