"""The single compiled IR every levelized consumer executes.

Before this module existed, each vectorized backend instance re-walked the
netlist through ``base.compile_levelized_ops``, the timed engine resolved
per-cell delays on its own, and worker processes (``run_parallel`` chunks,
serving pools) repeated all of it per process.  :func:`compile_program`
factors that work into one **serializable, backend-neutral artifact**:

:class:`CompiledProgram`
    A levelized straight-line op list with *cell dispatch tags* (the
    vocabulary of :func:`repro.sim.backends.base.classify_cell_type`),
    the ``TIE0``/``TIE1`` constants, the net table, the per-cell
    load/delay/energy model resolved through the one shared STA formula
    (:func:`repro.sim.sta.output_load` /
    :func:`repro.sim.sta.cell_output_delay`), the library fingerprint it
    was characterised against, and a compiler version stamp.

The artifact is deliberately free of callables: backends bind their own
evaluator (``fn``) tables lazily from the cell-type tags
(:func:`repro.sim.backends.base.bind_cell_ops`), so one program — possibly
loaded from the on-disk :mod:`repro.sim.program_cache` — serves the batch,
bitpack and timed engines alike, and round-trips exactly through JSON
(:meth:`CompiledProgram.to_dict` / :meth:`CompiledProgram.from_dict`).

Content addressing
------------------
:func:`netlist_fingerprint` digests the full netlist structure (cells, pin
connections, net insertion order, PI/PO lists — insertion order is part of
the repo's determinism contract, so it is part of the hash) and
:meth:`CompiledProgram.program_hash` digests the whole artifact.  Together
with :func:`repro.circuits.library.library_fingerprint`, the resolved
supply point and :data:`PROGRAM_COMPILER_VERSION` they form the cache key
(see :func:`repro.sim.program_cache.program_cache_key`).
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuits.gates import gate_spec
from repro.circuits.levelize import levelize
from repro.circuits.library import CellLibrary, library_fingerprint
from repro.circuits.netlist import Netlist, NetlistError
from repro.obs import trace as _trace

from .backends.base import BackendError, classify_cell_type
from .sta import output_load

#: Version stamp of the program compiler.  Bump whenever the op layout,
#: the delay/energy resolution or the serialization format changes in a
#: way that makes previously cached programs stale.
PROGRAM_COMPILER_VERSION = 1


#: Identity-keyed fingerprint memo.  Netlists in this repo are built once
#: by their circuit builders and read-only afterwards; the (cell count,
#: net count) guard invalidates the common grow-after-fingerprint case so
#: repeated backend constructions from the same netlist skip the canonical
#: JSON walk.
_netlist_fingerprint_memo = weakref.WeakKeyDictionary()


def netlist_fingerprint(netlist: Netlist) -> str:
    """Deterministic digest of a netlist's full structure.

    Covers every cell (type and pin→net connections in pin order), the net
    table in insertion order, and the primary input/output lists — the
    repo's determinism contract makes insertion order part of the netlist
    API, so two netlists with the same fingerprint compile to byte-identical
    programs.  This is the netlist ingredient of the program cache key.
    Memoized per netlist instance (netlists are build-once objects); adding
    cells or nets invalidates the memo.
    """
    shape = (len(netlist.cells), len(netlist.nets))
    cached = _netlist_fingerprint_memo.get(netlist)
    if cached is not None and cached[0] == shape:
        return cached[1]
    payload = {
        "nets": list(netlist.nets),
        "primary_inputs": list(netlist.primary_inputs),
        "primary_outputs": list(netlist.primary_outputs),
        "cells": [
            [
                cell.name,
                cell.cell_type,
                sorted(cell.inputs.items()),
                sorted(cell.outputs.items()),
            ]
            for cell in netlist.iter_cells()
        ],
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()
    _netlist_fingerprint_memo[netlist] = (shape, digest)
    return digest


def resolve_vdd(library: Optional[CellLibrary], vdd: Optional[float]) -> Optional[float]:
    """The supply point a compile is characterised at.

    ``None`` stays ``None`` without a library (purely functional program);
    with one, it resolves to the library nominal — the same defaulting the
    timed engine and the event simulator apply, so cache keys computed
    before and after resolution agree.
    """
    if vdd is not None:
        return float(vdd)
    if library is not None:
        return library.voltage_model.nominal_vdd
    return None


class NetTable(tuple):
    """Ordered net-name table with set-speed membership tests.

    Iterates in netlist insertion order (the determinism contract) while
    ``net in table`` costs O(1) — the two access patterns the vectorized
    backends mix on every call.
    """

    def __new__(cls, names) -> "NetTable":
        obj = super().__new__(cls, tuple(names))
        obj._members = frozenset(obj)
        return obj

    def __contains__(self, item) -> bool:
        return item in self._members

    def __getnewargs__(self):
        return (tuple(self),)


@dataclass(frozen=True)
class ProgramOp:
    """One levelized cell of a :class:`CompiledProgram` (backend-neutral).

    Attributes
    ----------
    cell_name / cell_type:
        Instance name and the library cell type — the *dispatch tag*
        backends bind their evaluator from.
    in_nets:
        Input nets in the cell type's pin order.
    out_net:
        The single output net.
    load_ff:
        Capacitive load on *out_net* per the shared STA load model
        (``0.0`` for uncharacterised programs).
    delay_ps:
        Base switching delay at the program's supply point, **without**
        per-instance variation — the timed engine applies its
        ``delay_variation`` multipliers on top (``0.0`` when
        uncharacterised).
    energy_fj:
        Switching energy of one output transition at the program's supply
        (``0.0`` when uncharacterised or the cell is unpriced).
    """

    cell_name: str
    cell_type: str
    in_nets: Tuple[str, ...]
    out_net: str
    load_ff: float = 0.0
    delay_ps: float = 0.0
    energy_fj: float = 0.0


@dataclass
class CompiledProgram:
    """A serializable levelized compile artifact shared by every backend.

    Produced by :func:`compile_program`; executed by the batch, bitpack and
    timed engines after a per-backend :meth:`bind`.  Carries no callables
    or netlist references, so it pickles/JSON-serializes cheaply across
    worker processes and caches on disk
    (:class:`~repro.sim.program_cache.ProgramCache`).

    Attributes
    ----------
    netlist_hash:
        :func:`netlist_fingerprint` of the source netlist.
    library_name / library_digest:
        Name and :func:`~repro.circuits.library.library_fingerprint` of the
        characterising library (``None`` for purely functional compiles).
    vdd:
        Resolved supply point delays/energies were computed at (``None``
        without a library).
    characterized:
        Whether per-op delays/energies were resolved — requires a library
        whose voltage model is functional at *vdd*; functional-only
        consumers work either way, the timed engine requires ``True``.
    compiler_version:
        :data:`PROGRAM_COMPILER_VERSION` at compile time.
    num_levels:
        Depth of the levelized schedule (ops are stored flat, level order).
    primary_inputs / primary_outputs / net_names:
        The interface and net table of the source netlist, insertion order.
    constants:
        ``(net, value)`` pairs peeled off ``TIE0``/``TIE1`` cells.
    ops:
        The straight-line :class:`ProgramOp` list in level order.
    """

    netlist_hash: str
    library_name: Optional[str]
    library_digest: Optional[str]
    vdd: Optional[float]
    characterized: bool
    compiler_version: int
    num_levels: int
    primary_inputs: Tuple[str, ...]
    primary_outputs: Tuple[str, ...]
    net_names: NetTable
    constants: Tuple[Tuple[str, int], ...]
    ops: Tuple[ProgramOp, ...]
    _hash: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.net_names, NetTable):
            self.net_names = NetTable(self.net_names)
        self.primary_inputs = tuple(self.primary_inputs)
        self.primary_outputs = tuple(self.primary_outputs)
        self.constants = tuple((net, int(v)) for net, v in self.constants)
        self.ops = tuple(self.ops)

    # ----------------------------------------------------------- net table
    @property
    def nets(self) -> NetTable:
        """The net universe (ordered, O(1) membership) backends validate
        stimulus against — the program-world stand-in for ``netlist.nets``."""
        return self.net_names

    # ------------------------------------------------------------- binding
    def bind(self, compile_cell_type: Callable[[str], Callable]) -> List[Callable]:
        """Evaluator per op, bound lazily from the cell-type dispatch tags.

        *compile_cell_type* is one of the
        :func:`~repro.sim.backends.base.make_cell_type_compiler`
        instantiations (batch / bitpack / timed primitives); functions are
        memoised per cell type, keeping the artifact itself backend-neutral.
        """
        fn_cache: Dict[str, Callable] = {}
        fns: List[Callable] = []
        for op in self.ops:
            fn = fn_cache.get(op.cell_type)
            if fn is None:
                fn = compile_cell_type(op.cell_type)
                fn_cache[op.cell_type] = fn
            fns.append(fn)
        return fns

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        """JSON-serializable form; exact round-trip via :meth:`from_dict`."""
        return {
            "netlist_hash": self.netlist_hash,
            "library_name": self.library_name,
            "library_digest": self.library_digest,
            "vdd": self.vdd,
            "characterized": self.characterized,
            "compiler_version": self.compiler_version,
            "num_levels": self.num_levels,
            "primary_inputs": list(self.primary_inputs),
            "primary_outputs": list(self.primary_outputs),
            "nets": list(self.net_names),
            "constants": [[net, value] for net, value in self.constants],
            "ops": [
                [
                    op.cell_name, op.cell_type, list(op.in_nets), op.out_net,
                    op.load_ff, op.delay_ps, op.energy_fj,
                ]
                for op in self.ops
            ],
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "CompiledProgram":
        """Rebuild a program from :meth:`to_dict` output (e.g. a cache entry)."""
        return cls(
            netlist_hash=record["netlist_hash"],
            library_name=record["library_name"],
            library_digest=record["library_digest"],
            vdd=record["vdd"],
            characterized=bool(record["characterized"]),
            compiler_version=int(record["compiler_version"]),
            num_levels=int(record["num_levels"]),
            primary_inputs=tuple(record["primary_inputs"]),
            primary_outputs=tuple(record["primary_outputs"]),
            net_names=NetTable(record["nets"]),
            constants=tuple((net, int(v)) for net, v in record["constants"]),
            ops=tuple(
                ProgramOp(
                    cell_name=raw[0], cell_type=raw[1], in_nets=tuple(raw[2]),
                    out_net=raw[3], load_ff=float(raw[4]), delay_ps=float(raw[5]),
                    energy_fj=float(raw[6]),
                )
                for raw in record["ops"]
            ),
        )

    @property
    def program_hash(self) -> str:
        """Content hash of the whole artifact (cached after first use).

        Two programs with equal hashes are byte-identical artifacts; the
        hash is what ``run_parallel`` workers and serving pools exchange
        instead of pickled compiled state.
        """
        if self._hash is None:
            canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            self._hash = hashlib.sha256(canon.encode("utf-8")).hexdigest()
        return self._hash


def compile_program(
    netlist: Netlist,
    library: Optional[CellLibrary] = None,
    vdd: Optional[float] = None,
) -> CompiledProgram:
    """Compile *netlist* into the :class:`CompiledProgram` every backend runs.

    The one public compile entry point: rejects clocked netlists
    (flip-flops have no single-pass functional meaning), topologically
    levelizes, peels ``TIE0``/``TIE1`` cells into constants, validates every
    remaining (single-output) cell against the shared dispatch vocabulary,
    and — when *library* is given and functional at the resolved *vdd* —
    resolves each op's load, base delay and per-transition energy through
    the shared STA model, making the artifact sufficient for the timed
    engine with no further netlist access.

    Raises
    ------
    BackendError
        For clocked or non-levelizable (cyclic) netlists, multi-output
        cells, or cell types outside the vectorizable vocabulary.
    """
    with _trace.span("backend.compile", backend="program") as compile_span:
        for cell in netlist.iter_cells():
            if cell.cell_type == "DFF":
                raise BackendError(
                    "the levelized backends do not support clocked netlists "
                    "(DFF found); use the event backend for the synchronous baseline"
                )
        try:
            levels = levelize(netlist)
        except NetlistError as err:
            raise BackendError(
                f"compile_program requires a levelizable netlist: {err}; "
                "use the event backend for cyclic designs"
            ) from err
        supply = resolve_vdd(library, vdd)
        characterized = (
            library is not None and library.voltage_model.is_functional(supply)
        )
        constants: List[Tuple[str, int]] = []
        ops: List[ProgramOp] = []
        for level in levels:
            for cell in level:
                if cell.cell_type in ("TIE0", "TIE1"):
                    value = 1 if cell.cell_type == "TIE1" else 0
                    for net in cell.outputs.values():
                        constants.append((net, value))
                    continue
                spec = gate_spec(cell.cell_type)
                if len(spec.output_pins) != 1:
                    raise BackendError(
                        "the levelized backends expect single-output cells, "
                        f"got {cell.cell_type!r}"
                    )
                if classify_cell_type(cell.cell_type) is None:
                    raise BackendError(
                        f"compile_program cannot vectorize cell type "
                        f"{cell.cell_type!r}"
                    )
                out_net = cell.outputs[spec.output_pins[0]]
                load = delay = energy = 0.0
                if characterized:
                    # One output_load per cell; cell_delay at that load is
                    # exactly sta.cell_output_delay with no variation map.
                    load = output_load(netlist, library, out_net)
                    delay = library.cell_delay(cell.cell_type, load, vdd=supply)
                    if library.has_cell(cell.cell_type):
                        energy = library.cell_energy(cell.cell_type, vdd=supply)
                ops.append(
                    ProgramOp(
                        cell_name=cell.name,
                        cell_type=cell.cell_type,
                        in_nets=tuple(cell.inputs[pin] for pin in spec.input_pins),
                        out_net=out_net,
                        load_ff=load,
                        delay_ps=delay,
                        energy_fj=energy,
                    )
                )
        program = CompiledProgram(
            netlist_hash=netlist_fingerprint(netlist),
            library_name=library.name if library is not None else None,
            library_digest=(
                library_fingerprint(library) if library is not None else None
            ),
            vdd=supply,
            characterized=characterized,
            compiler_version=PROGRAM_COMPILER_VERSION,
            num_levels=len(levels),
            primary_inputs=tuple(netlist.primary_inputs),
            primary_outputs=tuple(netlist.primary_outputs),
            net_names=NetTable(netlist.nets),
            constants=tuple(constants),
            ops=tuple(ops),
        )
        compile_span.add(
            levels=program.num_levels,
            cells=len(program.ops),
            characterized=characterized,
        )
    return program
