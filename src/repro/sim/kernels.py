"""Fused grouped-kernel execution engine over the compiled IR.

The levelized backends historically executed a
:class:`~repro.sim.program.CompiledProgram` one cell at a time: a Python
loop over :class:`~repro.sim.backends.base.CellOp`, each iteration paying a
list-comprehension gather, a function call and a handful of small NumPy
ops.  For the bit-packed engine — where a whole 10k-sample batch is ~160
``uint64`` words per net — that per-cell interpreter overhead dominates the
actual bitwise work by an order of magnitude.

This module removes the per-cell loop.  :func:`build_grouped_plan` buckets
a program's ops **per level and per dispatch tag** (the vocabulary of
:func:`~repro.sim.backends.base.classify_cell_type`) into contiguous
gather/scatter index arrays, so one vectorized call — e.g. a single
``np.bitwise_and.reduce`` over the stacked input planes of every AND2 in
the level — evaluates the whole group at once.  Values live in one
``(num_nets, ...)`` matrix per plane instead of a ``net → array`` dict;
gathers and scatters are NumPy fancy indexing on row indices.

Two execution tiers share the plan:

``"grouped"`` (the default)
    A small interpreter: one Python dispatch per *group* per level,
    with the per-group evaluators below doing all the math.

``"codegen"``
    :func:`generate_kernel_source` renders the plan into straight-line
    NumPy source — one statement block per group, level structure and
    group sizes baked in — which is ``exec``'d once per
    ``(program_hash, backend)`` pair and cached in-process.  With a
    :class:`~repro.sim.program_cache.ProgramCache` attached the generated
    source is also stored on disk next to the program artifact, so other
    processes load the text instead of re-rendering it.

Both tiers are **bit-identical** to the looped interpreter (and therefore
to the event simulator) for values *and* switching-activity counts — the
cross-backend differential fuzzing suite
(``tests/sim/test_differential_fuzz.py``) enforces this over randomized
netlists, batch shapes and X-laden stimulus.

Escape hatch
------------
The fused path is the default for the batch and bitpack backends.  Pass
``fused="off"`` (or ``False``) to a backend constructor — or set the
``REPRO_FUSED_KERNELS`` environment variable to ``off``/``grouped``/
``codegen`` — to pick the tier process-wide; an explicit constructor
argument always wins over the environment.

Observability
-------------
Plan construction and codegen run under a ``kernel.build`` span (levels,
groups, cells, tier, whether the source came from the cache); each level's
grouped execution runs under a ``kernel.level_group`` span.  The backends'
own ``*.pack`` / ``*.levels`` / ``*.activity`` spans are unchanged.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs import trace as _trace

from .backends.base import BackendError, classify_cell_type

#: Environment variable selecting the fused-kernel tier process-wide.
FUSED_ENV_VAR = "REPRO_FUSED_KERNELS"

#: Version stamp of the kernel generator.  Bump whenever the generated
#: source layout changes so on-disk kernel sources are invalidated.
KERNEL_CODEGEN_VERSION = 1

#: The three execution tiers (``"off"`` falls back to the per-cell loop).
MODE_OFF = "off"
MODE_GROUPED = "grouped"
MODE_CODEGEN = "codegen"
FUSED_MODES = (MODE_OFF, MODE_GROUPED, MODE_CODEGEN)

_OFF_NAMES = frozenset({"0", "false", "off", "no", "looped"})
_GROUPED_NAMES = frozenset({"1", "true", "on", "yes", "grouped", "fused"})
_CODEGEN_NAMES = frozenset({"2", "codegen", "generated"})

# Plane encoding shared with repro.sim.backends.batch (redefined here so the
# kernels module stays import-free of the backend modules that import it).
_X = np.uint8(2)
_ZERO = np.uint8(0)
_ONE = np.uint8(1)
_NOT_LUT = np.array([1, 0, 2], dtype=np.uint8)


def resolve_fused_mode(fused=None) -> str:
    """Normalize a ``fused=`` argument (or the environment) to a tier name.

    ``None`` defers to :data:`FUSED_ENV_VAR`, defaulting to ``"grouped"``
    when the variable is unset or empty; booleans map to
    ``"grouped"``/``"off"``; strings accept the tier names plus the usual
    on/off spellings.  Unrecognized values raise :class:`BackendError`
    rather than silently running a different engine than asked for.
    """
    value = fused
    if value is None:
        value = os.environ.get(FUSED_ENV_VAR)
        if value is None or not str(value).strip():
            return MODE_GROUPED
    if isinstance(value, bool):
        return MODE_GROUPED if value else MODE_OFF
    name = str(value).strip().lower()
    if name in _OFF_NAMES:
        return MODE_OFF
    if name in _GROUPED_NAMES:
        return MODE_GROUPED
    if name in _CODEGEN_NAMES:
        return MODE_CODEGEN
    raise BackendError(
        f"unrecognized fused-kernel mode {value!r}; expected one of "
        f"{'/'.join(FUSED_MODES)} (or a boolean)"
    )


# ---------------------------------------------------------------------------
# Grouped plan: per-level, per-tag gather/scatter index arrays.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpGroup:
    """One fused dispatch unit: every same-shaped cell of one level.

    Attributes
    ----------
    tag:
        Dispatch tag from :func:`~repro.sim.backends.base.classify_cell_type`
        (``"and"``, ``"inv"``, ``"c"``, ``"aoi"``, ...).
    pin_groups:
        Per-digit pin grouping for the complex-gate tags, ``None`` otherwise.
    in_idx:
        ``(cells, arity)`` net-row indices of every member's inputs in pin
        order — the gather array.
    in_cols:
        The same indices as per-pin contiguous ``(cells,)`` columns
        (``in_cols[p][g]`` = row of member *g*'s pin *p*): the low-arity
        evaluators gather one pin plane at a time, which beats a stacked
        3-D gather + reduce for the 2-input gates dominating real netlists.
    out_idx:
        ``(cells,)`` net-row indices of the members' outputs — the scatter
        array.
    """

    tag: str
    pin_groups: Optional[Tuple[int, ...]]
    in_idx: np.ndarray
    in_cols: Tuple[np.ndarray, ...]
    out_idx: np.ndarray

    @property
    def cells(self) -> int:
        """Number of cells fused into this group."""
        return int(self.out_idx.shape[0])


@dataclass(frozen=True)
class GroupedPlan:
    """A compiled program re-bucketed for grouped gather/scatter execution.

    Derived deterministically from the program alone (level structure is
    reconstructed from the op list's data dependencies, so cached programs
    need no netlist), and shared by the batch and bitpack engines — only
    the per-group evaluators differ.
    """

    #: ``net name -> value-matrix row`` (netlist insertion order).
    net_index: Dict[str, int]
    #: Number of rows in the value matrices (= number of nets).
    num_nets: int
    #: Per-level tuples of :class:`OpGroup`, dependency order.
    levels: Tuple[Tuple[OpGroup, ...], ...]
    #: Output row of every op, aligned with :attr:`cell_names`.
    out_idx: np.ndarray
    #: Rows no op drives (primary inputs + undriven nets).  Execution
    #: overwrites every driven row, so only these need rest-state (X)
    #: initialization — the pack stage skips zero-filling the rest.
    nonoutput_rows: np.ndarray
    #: Cell instance names in program op order (for activity dicts).
    cell_names: Tuple[str, ...]
    #: Cell types in program op order (for activity dicts).
    cell_types: Tuple[str, ...]
    #: Distinct cell types, first-encounter order (activity aggregation).
    type_names: Tuple[str, ...]
    #: Per-op index into :attr:`type_names` (for one-bincount aggregation).
    type_codes: np.ndarray

    @property
    def num_groups(self) -> int:
        """Total number of fused dispatch units across all levels."""
        return sum(len(level) for level in self.levels)

    @property
    def num_cells(self) -> int:
        """Total number of ops covered by the plan."""
        return int(self.out_idx.shape[0])


def build_grouped_plan(program) -> GroupedPlan:
    """Bucket *program*'s ops into per-level, per-tag gather/scatter groups.

    Levels are reconstructed from data dependencies (an op's level is one
    past its deepest producer), which reproduces the compile-time
    levelization for any valid program; within a level, ops are grouped by
    ``(dispatch tag, pin grouping, arity)`` in first-encounter order, so
    the plan — and any kernel source generated from it — is deterministic
    for a given program.
    """
    net_index = {net: i for i, net in enumerate(program.net_names)}
    producer_level: Dict[str, int] = {}
    # level -> {(tag, pin_groups, arity): ([in rows], [out rows])}
    buckets: List[Dict[tuple, Tuple[List[List[int]], List[int]]]] = []
    out_rows: List[int] = []
    names: List[str] = []
    types: List[str] = []
    for op in program.ops:
        level = 0
        for net in op.in_nets:
            depth = producer_level.get(net)
            if depth is not None and depth + 1 > level:
                level = depth + 1
        producer_level[op.out_net] = level
        kind = classify_cell_type(op.cell_type)
        if kind is None:  # compile_program validated this; guard anyway
            raise BackendError(
                f"fused kernels cannot vectorize cell type {op.cell_type!r}"
            )
        tag, pin_groups = kind
        while len(buckets) <= level:
            buckets.append({})
        key = (tag, pin_groups, len(op.in_nets))
        bucket = buckets[level].get(key)
        if bucket is None:
            bucket = buckets[level][key] = ([], [])
        bucket[0].append([net_index[net] for net in op.in_nets])
        bucket[1].append(net_index[op.out_net])
        out_rows.append(net_index[op.out_net])
        names.append(op.cell_name)
        types.append(op.cell_type)
    def make_group(key, in_rows, out_rows_g):
        """Materialize one bucket's gather/scatter index arrays."""
        in_idx = np.asarray(in_rows, dtype=np.intp).reshape(len(in_rows), -1)
        return OpGroup(
            tag=key[0],
            pin_groups=key[1],
            in_idx=in_idx,
            in_cols=tuple(
                np.ascontiguousarray(in_idx[:, p])
                for p in range(in_idx.shape[1])
            ),
            out_idx=np.asarray(out_rows_g, dtype=np.intp),
        )

    levels = tuple(
        tuple(
            make_group(key, in_rows, out_rows_g)
            for key, (in_rows, out_rows_g) in level.items()
        )
        for level in buckets
    )
    out_idx = np.asarray(out_rows, dtype=np.intp)
    type_index: Dict[str, int] = {}
    type_codes = np.empty(len(types), dtype=np.intp)
    for i, cell_type in enumerate(types):
        code = type_index.get(cell_type)
        if code is None:
            code = type_index[cell_type] = len(type_index)
        type_codes[i] = code
    return GroupedPlan(
        net_index=net_index,
        num_nets=len(net_index),
        levels=levels,
        out_idx=out_idx,
        nonoutput_rows=np.setdiff1d(
            np.arange(len(net_index), dtype=np.intp), out_idx
        ),
        cell_names=tuple(names),
        cell_types=tuple(types),
        type_names=tuple(type_index),
        type_codes=type_codes,
    )


# ---------------------------------------------------------------------------
# Batch (uint8 sample-plane) group evaluators.  Each takes the gathered
# ``(cells, arity, samples)`` stack and returns the ``(cells, samples)``
# output plane; three-valued semantics match repro.sim.backends.batch
# element for element.
# ---------------------------------------------------------------------------


def _b_and(stack: np.ndarray) -> np.ndarray:
    """Grouped three-valued AND: any 0 → 0, all 1 → 1, else X."""
    return np.where(
        (stack == 0).any(axis=1), _ZERO,
        np.where((stack == 1).all(axis=1), _ONE, _X),
    )


def _b_or(stack: np.ndarray) -> np.ndarray:
    """Grouped three-valued OR: any 1 → 1, all 0 → 0, else X."""
    return np.where(
        (stack == 1).any(axis=1), _ONE,
        np.where((stack == 0).all(axis=1), _ZERO, _X),
    )


def _b_xor(stack: np.ndarray) -> np.ndarray:
    """Grouped three-valued XOR: any unknown input poisons the sample."""
    unknown = (stack == _X).any(axis=1)
    acc = np.bitwise_xor.reduce(stack, axis=1) & 1
    return np.where(unknown, _X, acc.astype(np.uint8))


def _b_maj3(stack: np.ndarray) -> np.ndarray:
    """Grouped three-valued 3-input majority (controlling 2-of-3)."""
    ones = (stack == 1).sum(axis=1)
    zeros = (stack == 0).sum(axis=1)
    return np.where(ones >= 2, _ONE, np.where(zeros >= 2, _ZERO, _X))


def _b_c(stack: np.ndarray) -> np.ndarray:
    """Grouped C-element with final input values: all-1 → 1, all-0 → 0, else X."""
    return np.where(
        (stack == 1).all(axis=1), _ONE,
        np.where((stack == 0).all(axis=1), _ZERO, _X),
    )


def _b_complex(pin_groups: Tuple[int, ...], inner_and: bool,
               inverting: bool) -> Callable[[np.ndarray], np.ndarray]:
    """Grouped AOI/OAI/AO/OA evaluator over per-digit pin slices."""

    def fn(stack: np.ndarray) -> np.ndarray:
        """Inner op per pin group, outer op across groups, optional invert."""
        terms: List[np.ndarray] = []
        lo = 0
        for width in pin_groups:
            seg = stack[:, lo: lo + width]
            if width == 1:
                terms.append(seg[:, 0])
            else:
                terms.append(_b_and(seg) if inner_and else _b_or(seg))
            lo += width
        outer = np.stack(terms, axis=1)
        out = _b_or(outer) if inner_and else _b_and(outer)
        return _NOT_LUT[out] if inverting else out

    return fn


def _batch_group_fn(group: OpGroup) -> Callable[[np.ndarray], np.ndarray]:
    """The ``(cells, arity, samples) -> (cells, samples)`` evaluator of *group*."""
    tag = group.tag
    if tag == "inv":
        return lambda stack: _NOT_LUT[stack[:, 0]]
    if tag == "buf":
        return lambda stack: stack[:, 0]
    if tag == "and":
        return _b_and
    if tag == "nand":
        return lambda stack: _NOT_LUT[_b_and(stack)]
    if tag == "or":
        return _b_or
    if tag == "nor":
        return lambda stack: _NOT_LUT[_b_or(stack)]
    if tag == "xor":
        return _b_xor
    if tag == "xnor":
        return lambda stack: _NOT_LUT[_b_xor(stack)]
    if tag == "maj3":
        return _b_maj3
    if tag == "c":
        return _b_c
    inner_and, inverting = {
        "aoi": (True, True), "oai": (False, True),
        "ao": (True, False), "oa": (False, False),
    }[tag]
    return _b_complex(group.pin_groups, inner_and, inverting)


# ---------------------------------------------------------------------------
# Bitpack (uint64 bit-plane pair) group evaluators.  Each takes the two
# ``(nets, words)`` plane matrices plus the group, gathers the member rows
# pin by pin (``group.in_cols``), and returns the output ``(cells, words)``
# plane pair; semantics match repro.sim.backends.bitpack.  Gathering one
# pin column at a time keeps every temporary at ``(cells, words)`` and the
# op count at ``arity - 1`` per plane — measurably faster than a stacked
# 3-D gather + ``ufunc.reduce`` for the 2-input gates real netlists are
# mostly made of.
# ---------------------------------------------------------------------------

_PlanePairFn = Callable[[np.ndarray, np.ndarray, OpGroup], Tuple[np.ndarray, np.ndarray]]


def _chain(op, matrix: np.ndarray, cols: Tuple[np.ndarray, ...]) -> np.ndarray:
    """Fold *op* over the gathered pin columns (one ``(cells, words)`` temp)."""
    if len(cols) == 1:
        return matrix[cols[0]]
    acc = op(matrix[cols[0]], matrix[cols[1]])
    for col in cols[2:]:
        op(acc, matrix[col], out=acc)
    return acc


def _p_and(ones, zeros, group):
    """Grouped bit-plane AND: ones = AND of ones, zeros = OR of zeros."""
    cols = group.in_cols
    return _chain(np.bitwise_and, ones, cols), _chain(np.bitwise_or, zeros, cols)


def _p_or(ones, zeros, group):
    """Grouped bit-plane OR: ones = OR of ones, zeros = AND of zeros."""
    cols = group.in_cols
    return _chain(np.bitwise_or, ones, cols), _chain(np.bitwise_and, zeros, cols)


def _p_c(ones, zeros, group):
    """Grouped bit-plane C-element: all-1 → 1, all-0 → 0, else X."""
    cols = group.in_cols
    return _chain(np.bitwise_and, ones, cols), _chain(np.bitwise_and, zeros, cols)


def _p_xor(ones, zeros, group):
    """Grouped bit-plane XOR: known only where every input is known."""
    cols = group.in_cols
    # Known lanes: every input has one of its planes set.
    known = ones[cols[0]] | zeros[cols[0]]
    acc = ones[cols[0]].copy()
    for col in cols[1:]:
        known &= ones[col] | zeros[col]
        acc ^= ones[col]
    acc &= known
    return acc, known ^ acc


def _p_maj3(ones, zeros, group):
    """Grouped bit-plane 3-input majority (controlling 2-of-3)."""
    c0, c1, c2 = group.in_cols
    o0, o1, o2 = ones[c0], ones[c1], ones[c2]
    z0, z1, z2 = zeros[c0], zeros[c1], zeros[c2]
    return (o0 & o1) | (o0 & o2) | (o1 & o2), (z0 & z1) | (z0 & z2) | (z1 & z2)


def _p_complex_stacked(pin_groups: Tuple[int, ...], inner_and: bool,
                       inverting: bool):
    """Stacked-gather AOI/OAI/AO/OA evaluator (``fn(O, Z)`` over 3-D stacks).

    Complex gates are rare enough that the generic stacked form is kept —
    it is also the callable the codegen tier places in the ``_FNS``
    namespace table.
    """

    def fn(ones: np.ndarray, zeros: np.ndarray):
        """Inner op per pin group, outer op across groups, optional plane swap."""
        term_ones: List[np.ndarray] = []
        term_zeros: List[np.ndarray] = []
        lo = 0
        for width in pin_groups:
            seg_o = ones[:, lo: lo + width]
            seg_z = zeros[:, lo: lo + width]
            if width == 1:
                to, tz = seg_o[:, 0], seg_z[:, 0]
            elif inner_and:
                to = np.bitwise_and.reduce(seg_o, axis=1)
                tz = np.bitwise_or.reduce(seg_z, axis=1)
            else:
                to = np.bitwise_or.reduce(seg_o, axis=1)
                tz = np.bitwise_and.reduce(seg_z, axis=1)
            term_ones.append(to)
            term_zeros.append(tz)
            lo += width
        if inner_and:
            out_o = np.bitwise_or.reduce(np.stack(term_ones, axis=1), axis=1)
            out_z = np.bitwise_and.reduce(np.stack(term_zeros, axis=1), axis=1)
        else:
            out_o = np.bitwise_and.reduce(np.stack(term_ones, axis=1), axis=1)
            out_z = np.bitwise_or.reduce(np.stack(term_zeros, axis=1), axis=1)
        return (out_z, out_o) if inverting else (out_o, out_z)

    return fn


_COMPLEX_SHAPES = {
    "aoi": (True, True), "oai": (False, True),
    "ao": (True, False), "oa": (False, False),
}


def _bitpack_group_fn(group: OpGroup) -> _PlanePairFn:
    """The plane-pair evaluator of *group* (inputs gathered in pin order)."""
    tag = group.tag
    if tag == "inv":
        return lambda ones, zeros, g: (zeros[g.in_cols[0]], ones[g.in_cols[0]])
    if tag == "buf":
        return lambda ones, zeros, g: (ones[g.in_cols[0]], zeros[g.in_cols[0]])
    if tag == "and":
        return _p_and
    if tag == "nand":
        return lambda ones, zeros, g: _p_and(ones, zeros, g)[::-1]
    if tag == "or":
        return _p_or
    if tag == "nor":
        return lambda ones, zeros, g: _p_or(ones, zeros, g)[::-1]
    if tag == "xor":
        return _p_xor
    if tag == "xnor":
        return lambda ones, zeros, g: _p_xor(ones, zeros, g)[::-1]
    if tag == "maj3":
        return _p_maj3
    if tag == "c":
        return _p_c
    inner_and, inverting = _COMPLEX_SHAPES[tag]
    stacked = _p_complex_stacked(group.pin_groups, inner_and, inverting)
    return lambda ones, zeros, g: stacked(ones[g.in_idx], zeros[g.in_idx])


# ---------------------------------------------------------------------------
# Value-matrix views: net-keyed read access over the row-indexed matrices.
# ---------------------------------------------------------------------------


class PlaneMatrixView(Mapping):
    """Read-only ``net → uint8 row view`` mapping over a value matrix.

    The fused batch engine stores all net planes in one ``(nets, samples)``
    matrix; this view presents the classic per-net dict interface without
    materializing ~thousands of dict entries per call.
    """

    __slots__ = ("_matrix", "_index")

    def __init__(self, matrix: np.ndarray, index: Dict[str, int]) -> None:
        self._matrix = matrix
        self._index = index

    def __getitem__(self, net: str) -> np.ndarray:
        """The ``(samples,)`` plane of *net* (a view into the matrix)."""
        return self._matrix[self._index[net]]

    def __iter__(self) -> Iterator[str]:
        """Iterate net names in netlist insertion order."""
        return iter(self._index)

    def __len__(self) -> int:
        """Number of nets."""
        return len(self._index)


class PlanePairMatrixView(Mapping):
    """Read-only ``net → (ones, zeros) row views`` over the bit-plane matrices."""

    __slots__ = ("_ones", "_zeros", "_index")

    def __init__(self, ones: np.ndarray, zeros: np.ndarray,
                 index: Dict[str, int]) -> None:
        self._ones = ones
        self._zeros = zeros
        self._index = index

    def __getitem__(self, net: str) -> Tuple[np.ndarray, np.ndarray]:
        """The packed ``(ones, zeros)`` word rows of *net* (matrix views)."""
        row = self._index[net]
        return self._ones[row], self._zeros[row]

    def __iter__(self) -> Iterator[str]:
        """Iterate net names in netlist insertion order."""
        return iter(self._index)

    def __len__(self) -> int:
        """Number of nets."""
        return len(self._index)


# ---------------------------------------------------------------------------
# Bulk stimulus normalization: one stacked matrix instead of per-net planes.
# ---------------------------------------------------------------------------


def bulk_stimulus_matrix(
    inputs: Mapping, net_index: Dict[str, int], lane_align: int = 1,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Normalize a stimulus mapping into one stacked ``uint8`` matrix.

    The fused engines' replacement for the per-net
    ``normalize_input_planes`` loop: batch-size inference, scalar
    broadcast, the unknown-net and Boolean checks, and the fill all happen
    against a single ``(stimulus nets, width)`` matrix, so the pack stage
    downstream is one vectorized call instead of thousands of small-array
    ops.  The column width is the batch size rounded up to a multiple of
    *lane_align* (the bitpack engine passes its word lane count; padding
    columns stay zero).  Returns
    ``(row indices into the net-order matrices, stacked matrix, samples)``.

    Error semantics match the looped path exactly:
    :class:`~repro.sim.backends.base.BackendError` for inconsistent batch
    sizes or non-Boolean values, :class:`KeyError` for unknown nets.
    """
    samples: Optional[int] = None
    for value in inputs.values():
        if isinstance(value, np.ndarray):
            if value.ndim == 0:
                continue
            n = value.shape[0]
        elif np.ndim(value) > 0:
            n = int(np.shape(value)[0])
        else:
            continue
        if samples is not None and samples != n:
            raise BackendError(
                f"inconsistent batch sizes in input arrays ({samples} vs {n})"
            )
        samples = n
    if samples is None:
        samples = 1
    width = ((samples + lane_align - 1) // lane_align) * lane_align
    # Every row's [0:samples] span is written below; only the alignment
    # tail needs explicit zeroing (tail lanes must pack to clear bits).
    stacked = np.empty((len(inputs), width), dtype=np.uint8)
    if width > samples:
        stacked[:, samples:] = 0
    row_list: List[int] = []
    for j, (net, value) in enumerate(inputs.items()):
        row = net_index.get(net)
        if row is None:
            raise KeyError(f"unknown net {net!r}")
        row_list.append(row)
        if isinstance(value, np.ndarray) and value.ndim == 1:
            stacked[j, :samples] = value
        else:
            plane = np.asarray(value, dtype=np.uint8)
            stacked[j, :samples] = int(plane) if plane.ndim == 0 else plane
    rows = np.array(row_list, dtype=np.intp)
    if stacked.max(initial=0) > 1:
        # Slow path only to name the offender in the error message.
        for j, net in enumerate(inputs):
            if stacked[j].max(initial=0) > 1:
                raise BackendError(
                    f"input plane for {net!r} contains non-Boolean values"
                )
    return rows, stacked, samples


def baseline_memo_key(baseline: Mapping) -> Optional[Tuple]:
    """A hashable identity for an all-scalar baseline mapping, else ``None``.

    Activity accounting re-evaluates the rest state on every call, yet in
    practice the baseline is the same spacer word call after call (the
    serving worker, the analysis sweeps and the benchmarks all hold one
    rest mapping per design).  The fused backends use this key for a
    single-slot memo of the settled rest planes; array-valued baselines
    return ``None`` and are simply re-evaluated.
    """
    entries = []
    for net, value in baseline.items():
        if isinstance(value, (bool, int, np.integer)):
            entries.append((net, int(value)))
            continue
        if np.ndim(value) != 0:
            return None
        try:
            entries.append((net, int(value)))
        except (TypeError, ValueError):
            return None
    return tuple(sorted(entries))


# ---------------------------------------------------------------------------
# Fused switching-activity accounting.
# ---------------------------------------------------------------------------

if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def _popcount_rows(words: np.ndarray) -> np.ndarray:
        """Per-row set-bit totals of a ``(cells, words)`` uint64 matrix."""
        return np.bitwise_count(words).sum(axis=1)

else:  # pragma: no cover - exercised only on NumPy 1.x

    def _popcount_rows(words: np.ndarray) -> np.ndarray:
        """Per-row set-bit totals of a ``(cells, words)`` matrix (1.x fallback)."""
        if words.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return np.unpackbits(as_bytes.reshape(words.shape[0], -1), axis=1).sum(
            axis=1, dtype=np.int64
        )


def _activity_dicts(
    plan: GroupedPlan,
    toggles: np.ndarray,
    transitions_per_toggle: int,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Per-cell toggle counts → the backends' activity dict pair.

    Only cells that toggled get entries (matching the looped accounting);
    the per-type aggregation is one ``bincount`` over precomputed type
    codes instead of a Python accumulation loop.
    """
    nz = np.nonzero(toggles)[0]
    scaled = toggles[nz] * transitions_per_toggle
    names = plan.cell_names
    by_cell = {
        names[i]: t for i, t in zip(nz.tolist(), scaled.tolist())
    }
    totals = np.bincount(
        plan.type_codes[nz], weights=scaled, minlength=len(plan.type_names)
    )
    by_type = {
        plan.type_names[t]: int(totals[t]) for t in np.nonzero(totals)[0]
    }
    return by_cell, by_type


def grouped_batch_activity(
    plan: GroupedPlan,
    values: np.ndarray,
    rest_values: np.ndarray,
    transitions_per_toggle: int = 2,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Fused transition counting for the batch engine.

    One gather over the output rows replaces the per-cell
    ``np.count_nonzero`` loop; counts are identical to the looped path —
    samples toggle when their value is known and differs from the cell's
    known rest value.
    """
    out_rows = values[plan.out_idx]
    rest = rest_values[plan.out_idx, 0]
    toggles = ((out_rows != rest[:, None]) & (out_rows != _X)).sum(axis=1)
    toggles[rest == _X] = 0
    return _activity_dicts(plan, toggles, transitions_per_toggle)


def grouped_bitpack_activity(
    plan: GroupedPlan,
    ones: np.ndarray,
    zeros: np.ndarray,
    rest_ones: np.ndarray,
    rest_zeros: np.ndarray,
    transitions_per_toggle: int = 2,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Fused popcount transition accounting for the bitpack engine.

    Against a known rest value of 1 the toggling lanes are exactly the
    ``zeros`` plane, against 0 exactly the ``ones`` plane; one stacked
    popcount covers every cell.  Unknown lanes (masked ragged tails
    included) carry no plane bits, so they drop out by construction —
    exactly the looped per-cell accounting.
    """
    out = plan.out_idx
    rest_one = (rest_ones[out, 0] & np.uint64(1)).astype(bool)
    rest_zero = (rest_zeros[out, 0] & np.uint64(1)).astype(bool)
    # Gather each output row exactly once, split by rest polarity (cells
    # with an unknown rest value are never gathered and stay at zero).
    toggles = np.zeros(out.shape[0], dtype=np.int64)
    at_one = np.nonzero(rest_one)[0]
    at_zero = np.nonzero(rest_zero & ~rest_one)[0]
    toggles[at_one] = _popcount_rows(zeros[out[at_one]])
    toggles[at_zero] = _popcount_rows(ones[out[at_zero]])
    return _activity_dicts(plan, toggles, transitions_per_toggle)


# ---------------------------------------------------------------------------
# Kernel source generation (the codegen tier).
# ---------------------------------------------------------------------------

def _batch_group_stmts(group: OpGroup, k: int) -> List[str]:
    """Generated statements evaluating batch group *k* (``V`` value matrix)."""
    tag = group.tag
    if tag == "inv":
        return [f"V[OUT[{k}]] = _NOT[V[INC[{k}][0]]]"]
    if tag == "buf":
        return [f"V[OUT[{k}]] = V[INC[{k}][0]]"]
    simple = {
        "and": "np.where((A == 0).any(axis=1), _Z,"
               " np.where((A == 1).all(axis=1), _O, _X))",
        "or": "np.where((A == 1).any(axis=1), _O,"
              " np.where((A == 0).all(axis=1), _Z, _X))",
        "c": "np.where((A == 1).all(axis=1), _O,"
             " np.where((A == 0).all(axis=1), _Z, _X))",
        "maj3": "np.where((A == 1).sum(axis=1) >= 2, _O,"
                " np.where((A == 0).sum(axis=1) >= 2, _Z, _X))",
        "xor": "np.where((A == _X).any(axis=1), _X,"
               " (np.bitwise_xor.reduce(A, axis=1) & 1).astype(np.uint8))",
    }
    if tag in simple:
        return [f"A = V[IN[{k}]]", f"V[OUT[{k}]] = " + simple[tag]]
    inverted = {"nand": "and", "nor": "or", "xnor": "xor"}
    if tag in inverted:
        return [
            f"A = V[IN[{k}]]",
            f"V[OUT[{k}]] = _NOT[" + simple[inverted[tag]] + "]",
        ]
    return [f"V[OUT[{k}]] = _FNS[{k}](V[IN[{k}]])"]


def _pin_expr(matrix: str, k: int, pin: int) -> str:
    """Source of one gathered pin-column plane of group *k*."""
    return f"{matrix}[INC[{k}][{pin}]]"


def _chain_expr(matrix: str, k: int, op: str, arity: int) -> str:
    """Source folding *op* over all gathered pin columns of group *k*."""
    return f" {op} ".join(_pin_expr(matrix, k, p) for p in range(arity))


def _bitpack_group_stmts(group: OpGroup, k: int) -> List[str]:
    """Generated statements evaluating bitpack group *k* (plane matrices).

    Temporaries are always computed before the scatters, so plane swaps
    (INV, NAND, NOR, XNOR) can never read rows the same statement block
    already overwrote.
    """
    tag = group.tag
    arity = group.in_idx.shape[1]
    if tag == "inv":
        return [
            f"t0 = {_pin_expr('VZ', k, 0)}",
            f"t1 = {_pin_expr('VO', k, 0)}",
            f"VO[OUT[{k}]] = t0",
            f"VZ[OUT[{k}]] = t1",
        ]
    if tag == "buf":
        return [
            f"VO[OUT[{k}]] = {_pin_expr('VO', k, 0)}",
            f"VZ[OUT[{k}]] = {_pin_expr('VZ', k, 0)}",
        ]
    plane_ops = {
        "and": ("&", "|"), "or": ("|", "&"), "c": ("&", "&"),
    }
    if tag in plane_ops:
        one_op, zero_op = plane_ops[tag]
        return [
            f"VO[OUT[{k}]] = {_chain_expr('VO', k, one_op, arity)}",
            f"VZ[OUT[{k}]] = {_chain_expr('VZ', k, zero_op, arity)}",
        ]
    if tag in ("nand", "nor"):
        one_op, zero_op = plane_ops["and" if tag == "nand" else "or"]
        return [
            f"t0 = {_chain_expr('VZ', k, zero_op, arity)}",
            f"t1 = {_chain_expr('VO', k, one_op, arity)}",
            f"VO[OUT[{k}]] = t0",
            f"VZ[OUT[{k}]] = t1",
        ]
    if tag == "maj3":
        o = [_pin_expr("VO", k, p) for p in range(3)]
        z = [_pin_expr("VZ", k, p) for p in range(3)]
        return [
            f"o0 = {o[0]}",
            f"o1 = {o[1]}",
            f"o2 = {o[2]}",
            f"z0 = {z[0]}",
            f"z1 = {z[1]}",
            f"z2 = {z[2]}",
            f"VO[OUT[{k}]] = (o0 & o1) | (o0 & o2) | (o1 & o2)",
            f"VZ[OUT[{k}]] = (z0 & z1) | (z0 & z2) | (z1 & z2)",
        ]
    if tag in ("xor", "xnor"):
        known = " & ".join(
            f"({_pin_expr('VO', k, p)} | {_pin_expr('VZ', k, p)})"
            for p in range(arity)
        )
        acc = _chain_expr("VO", k, "^", arity)
        ones_stmt, zeros_stmt = ("t0", "K ^ t0")
        if tag == "xnor":
            ones_stmt, zeros_stmt = ("K ^ t0", "t0")
        return [
            f"K = {known}",
            f"t0 = ({acc}) & K",
            f"VO[OUT[{k}]] = {ones_stmt}",
            f"VZ[OUT[{k}]] = {zeros_stmt}",
        ]
    return [
        f"t0, t1 = _FNS[{k}](VO[IN[{k}]], VZ[IN[{k}]])",
        f"VO[OUT[{k}]] = t0",
        f"VZ[OUT[{k}]] = t1",
    ]


def generate_kernel_source(plan: GroupedPlan, kind: str,
                           program_hash: str = "") -> str:
    """Render *plan* into the straight-line NumPy kernel source for *kind*.

    The source defines one function, ``kernel(V)`` for the batch engine or
    ``kernel(VO, VZ)`` for bitpack, with one ``kernel.level_group`` span
    per level and one statement block per group.  Gather/scatter index
    arrays are *not* serialized — they are rebound from the plan into the
    ``IN``/``INC``/``OUT`` namespace tuples when the source is ``exec``'d
    by :class:`FusedKernel`, so the
    text is small, deterministic and content-addressed by the program
    hash.  Complex-gate groups (AOI/OAI/AO/OA) dispatch through the
    ``_FNS`` evaluator table instead of inline statements.
    """
    if kind not in ("batch", "bitpack"):
        raise BackendError(f"unknown fused-kernel backend kind {kind!r}")
    stmts_for = _batch_group_stmts if kind == "batch" else _bitpack_group_stmts
    lines = [
        f"# fused {kind} kernel v{KERNEL_CODEGEN_VERSION}"
        f" program={program_hash or 'unhashed'}",
        "# generated by repro.sim.kernels.generate_kernel_source — do not edit",
        f"def kernel({'V' if kind == 'batch' else 'VO, VZ'}):",
    ]
    if not plan.levels:
        lines.append("    pass")
    k = 0
    for level_index, level in enumerate(plan.levels):
        cells = sum(group.cells for group in level)
        lines.append(
            f"    with _span('kernel.level_group', level={level_index}, "
            f"groups={len(level)}, cells={cells}):"
        )
        for group in level:
            lines.append(f"        # {group.tag} x{group.cells}")
            for stmt in stmts_for(group, k):
                lines.append("        " + stmt)
            k += 1
    return "\n".join(lines) + "\n"


def _exec_kernel_source(source: str, plan: GroupedPlan, kind: str) -> Callable:
    """Bind *source* to the plan's index arrays and return the kernel function."""
    groups = [group for level in plan.levels for group in level]
    namespace = {
        "np": np,
        "_span": _trace.span,
        "_NOT": _NOT_LUT,
        "_X": _X,
        "_Z": _ZERO,
        "_O": _ONE,
        "IN": tuple(group.in_idx for group in groups),
        "INC": tuple(group.in_cols for group in groups),
        "OUT": tuple(group.out_idx for group in groups),
        "_FNS": tuple(
            (
                _batch_group_fn(group) if kind == "batch"
                else _p_complex_stacked(
                    group.pin_groups, *_COMPLEX_SHAPES[group.tag]
                )
            )
            if group.tag in _COMPLEX_SHAPES else None
            for group in groups
        ),
    }
    code = compile(source, f"<fused-{kind}-kernel>", "exec")
    exec(code, namespace)  # noqa: S102 - source is generated by this module
    return namespace["kernel"]


# ---------------------------------------------------------------------------
# The executable kernel object the backends hold.
# ---------------------------------------------------------------------------


class FusedKernel:
    """An executable grouped kernel bound to one (program, backend kind, tier).

    Construction runs under a ``kernel.build`` span: plan bucketing, per-
    group evaluator binding and — in codegen mode — source generation (or a
    cache load) plus the one-time ``exec``.  :meth:`execute` then runs the
    level sweeps in place over the caller's value matrices.
    """

    def __init__(self, program, kind: str, mode: str, store=None) -> None:
        if kind not in ("batch", "bitpack"):
            raise BackendError(f"unknown fused-kernel backend kind {kind!r}")
        if mode not in (MODE_GROUPED, MODE_CODEGEN):
            raise BackendError(f"FusedKernel cannot run in mode {mode!r}")
        self.kind = kind
        self.mode = mode
        self.source: Optional[str] = None
        with _trace.span("kernel.build", backend=kind, mode=mode) as span:
            self.plan = plan = _plan_for(program)
            self._fns: Tuple[tuple, ...] = ()
            self._codegen_fn: Optional[Callable] = None
            source_cached = False
            if mode == MODE_CODEGEN:
                program_hash = program.program_hash
                source = None
                if store is not None:
                    source = store.load_kernel_source(
                        program_hash, kind, version=KERNEL_CODEGEN_VERSION
                    )
                    source_cached = source is not None
                if source is None:
                    source = generate_kernel_source(
                        plan, kind, program_hash=program_hash
                    )
                    if store is not None:
                        store.store_kernel_source(
                            program_hash, kind, source,
                            version=KERNEL_CODEGEN_VERSION,
                        )
                self.source = source
                self._codegen_fn = _exec_kernel_source(source, plan, kind)
            else:
                bind = _batch_group_fn if kind == "batch" else _bitpack_group_fn
                self._fns = tuple(
                    tuple(bind(group) for group in level) for level in plan.levels
                )
            span.add(
                levels=len(plan.levels),
                groups=plan.num_groups,
                cells=plan.num_cells,
                source_cached=source_cached,
            )

    def execute(self, *matrices: np.ndarray) -> None:
        """Run the level sweeps in place.

        Batch kernels take the ``(nets, samples)`` uint8 value matrix;
        bitpack kernels take the ``(nets, words)`` ones and zeros matrices.
        Rows of nets without drivers are left untouched (X by
        initialization), mirroring the looped engines.
        """
        if self._codegen_fn is not None:
            self._codegen_fn(*matrices)
            return
        if self.kind == "batch":
            (values,) = matrices
            for level_index, level in enumerate(self.plan.levels):
                with _trace.span(
                    "kernel.level_group", level=level_index, groups=len(level),
                    cells=sum(group.cells for group in level),
                ):
                    for group, fn in zip(level, self._fns[level_index]):
                        values[group.out_idx] = fn(values[group.in_idx])
        else:
            ones, zeros = matrices
            for level_index, level in enumerate(self.plan.levels):
                with _trace.span(
                    "kernel.level_group", level=level_index, groups=len(level),
                    cells=sum(group.cells for group in level),
                ):
                    for group, fn in zip(level, self._fns[level_index]):
                        out_o, out_z = fn(ones, zeros, group)
                        ones[group.out_idx] = out_o
                        zeros[group.out_idx] = out_z


# ---------------------------------------------------------------------------
# Per-program memoization (shared across backend instances executing the
# same CompiledProgram object, e.g. serving sessions).
# ---------------------------------------------------------------------------

#: ``id(program) -> (weakref, {"plan": ..., (kind, mode): FusedKernel})``.
_PROGRAM_MEMO: Dict[int, Tuple[weakref.ref, dict]] = {}


def _memo_for(program) -> dict:
    """The kernel memo slot of *program* (identity-keyed, weakly held)."""
    key = id(program)
    entry = _PROGRAM_MEMO.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    slot: dict = {}
    ref = weakref.ref(program, lambda _r, _k=key: _PROGRAM_MEMO.pop(_k, None))
    _PROGRAM_MEMO[key] = (ref, slot)
    return slot


def _plan_for(program) -> GroupedPlan:
    """The (memoized) grouped plan of *program*."""
    slot = _memo_for(program)
    plan = slot.get("plan")
    if plan is None:
        plan = slot["plan"] = build_grouped_plan(program)
    return plan


def fused_kernel(program, kind: str, fused=None, store=None) -> Optional[FusedKernel]:
    """The fused kernel for *program* on backend *kind*, or ``None`` when off.

    This is the backends' one entry point: *fused* is the constructor
    argument (``None`` defers to :data:`FUSED_ENV_VAR`), *store* an
    optional :class:`~repro.sim.program_cache.ProgramCache` that generated
    kernel source is loaded from / stored into in codegen mode.  Kernels
    are memoized per program instance, so every backend or session built
    on one cached program shares the plan and (codegen) function.
    """
    mode = resolve_fused_mode(fused)
    if mode == MODE_OFF:
        return None
    slot = _memo_for(program)
    kernel = slot.get((kind, mode))
    if kernel is None:
        kernel = slot[(kind, mode)] = FusedKernel(program, kind, mode, store=store)
    return kernel
