"""Switching-activity-based power and energy accounting.

The paper's Table I reports average power, leakage power, and (implicitly,
through throughput) energy per inference for both datapath styles.  At
gate level those quantities reduce to:

* **dynamic energy** — every committed output transition of a cell costs
  that cell's characterised switching energy (scaled by ``V²``);
* **leakage power** — the sum of per-instance leakage (scaled by the
  voltage model), independent of activity;
* **average power** — dynamic energy per operation divided by the operation
  period, plus leakage.

:class:`PowerAccountant` works from the simulator's transition log so the
numbers reflect the *actual* switching activity of the simulated workload —
which is how the dual-rail design's higher activity factor (two rails per
bit plus the return-to-spacer phase) shows up, as well as the energy saved
by early propagation when the comparator stops toggling low-order bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Netlist

from .simulator import GateLevelSimulator, TransitionRecord


@dataclass
class EnergyBreakdown:
    """Dynamic energy of a time window, broken down by cell type."""

    total_fj: float
    by_cell_type: Dict[str, float] = field(default_factory=dict)
    transitions: int = 0


@dataclass
class PowerReport:
    """Average power figures for a measured workload window.

    Attributes
    ----------
    dynamic_uw:
        Average dynamic (switching) power in µW.
    leakage_nw:
        Static leakage power in nW.
    total_uw:
        Dynamic power plus leakage, in µW.
    energy_per_operation_fj:
        Mean dynamic energy per operation (inference) in fJ.
    operations:
        Number of operations the window contained.
    window_ps:
        Length of the measured window in ps.
    """

    dynamic_uw: float
    leakage_nw: float
    total_uw: float
    energy_per_operation_fj: float
    operations: int
    window_ps: float


class PowerAccountant:
    """Computes energy and power from a simulator's transition log."""

    def __init__(self, netlist: Netlist, library: CellLibrary, vdd: Optional[float] = None) -> None:
        self.netlist = netlist
        self.library = library
        self.vdd = library.voltage_model.nominal_vdd if vdd is None else float(vdd)

    # ------------------------------------------------------------- leakage
    def leakage_nw(self) -> float:
        """Total leakage of every instance at the configured supply, in nW."""
        total = 0.0
        for cell in self.netlist.iter_cells():
            if self.library.has_cell(cell.cell_type):
                total += self.library.cell_leakage(cell.cell_type, vdd=self.vdd)
        return total

    # ------------------------------------------------------------- dynamic
    def dynamic_energy(self, transitions: Iterable[TransitionRecord]) -> EnergyBreakdown:
        """Dynamic energy (fJ) of the given committed transitions."""
        total = 0.0
        by_type: Dict[str, float] = {}
        count = 0
        for record in transitions:
            if not self.library.has_cell(record.cell_type):
                continue
            energy = self.library.cell_energy(record.cell_type, vdd=self.vdd)
            total += energy
            by_type[record.cell_type] = by_type.get(record.cell_type, 0.0) + energy
            count += 1
        return EnergyBreakdown(total_fj=total, by_cell_type=by_type, transitions=count)

    def energy_of_window(self, simulator: GateLevelSimulator, start: float, end: float) -> EnergyBreakdown:
        """Dynamic energy of the simulator's transitions in ``(start, end]``."""
        return self.dynamic_energy(simulator.transitions_between(start, end))

    def energy_from_activity(self, activity_by_cell_type: Dict[str, int]) -> EnergyBreakdown:
        """Dynamic energy (fJ) of aggregate transition counts per cell type.

        This is how the vectorized batch backend's cycle-level switching
        activity (see :mod:`repro.sim.backends.batch`) is priced: the batch
        engine counts committed transitions per cell type and this method
        applies the same per-transition energies the event-driven accounting
        uses.
        """
        total = 0.0
        by_type: Dict[str, float] = {}
        count = 0
        for cell_type, transitions in activity_by_cell_type.items():
            if not self.library.has_cell(cell_type) or transitions <= 0:
                continue
            energy = self.library.cell_energy(cell_type, vdd=self.vdd) * transitions
            total += energy
            by_type[cell_type] = by_type.get(cell_type, 0.0) + energy
            count += int(transitions)
        return EnergyBreakdown(total_fj=total, by_cell_type=by_type, transitions=count)

    # -------------------------------------------------------------- reports
    def report(
        self,
        simulator: GateLevelSimulator,
        start: float,
        end: float,
        operations: int,
    ) -> PowerReport:
        """Average power over a window containing *operations* inferences.

        ``dynamic power [µW] = energy [fJ] / window [ps] * 1e3`` because
        1 fJ / 1 ps = 1 mW = 1000 µW.
        """
        if end <= start:
            raise ValueError("measurement window must have positive length")
        breakdown = self.energy_of_window(simulator, start, end)
        window = end - start
        dynamic_uw = breakdown.total_fj / window * 1e3
        leakage_nw = self.leakage_nw()
        total_uw = dynamic_uw + leakage_nw * 1e-3
        energy_per_op = breakdown.total_fj / operations if operations else 0.0
        return PowerReport(
            dynamic_uw=dynamic_uw,
            leakage_nw=leakage_nw,
            total_uw=total_uw,
            energy_per_operation_fj=energy_per_op,
            operations=operations,
            window_ps=window,
        )


def energy_per_inference_fj(report: PowerReport) -> float:
    """Convenience accessor used by the Table-I harness."""
    return report.energy_per_operation_fj
