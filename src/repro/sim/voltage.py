"""Supply-voltage sweeps and delay-scaling analysis.

The library's :class:`~repro.circuits.library.VoltageModel` provides the
per-gate delay/energy/leakage scaling; this module layers the experiment
machinery on top of it:

* :func:`delay_scaling_curve` — the raw gate-delay factor versus supply,
  useful for unit tests and sanity plots;
* :func:`sweep_supply_voltages` — re-runs an arbitrary measurement callable
  across a voltage range (used by the Figure-3 benchmark);
* :func:`exponential_region_slope` — fits the subthreshold (exponential)
  region so tests can assert "latency increases exponentially as the supply
  is reduced from 0.6 V to 0.25 V" quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.circuits.library import CellLibrary, VoltageModel

#: Voltage grid used by the paper's Figure 3 (0.25 V to 1.2 V).
FIGURE3_VOLTAGES: Tuple[float, ...] = (
    0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00, 1.10, 1.20,
)


@dataclass
class VoltagePoint:
    """One point of a supply-voltage sweep."""

    vdd: float
    value: float
    functional: bool = True


def delay_scaling_curve(
    model: VoltageModel, voltages: Sequence[float] = FIGURE3_VOLTAGES
) -> List[VoltagePoint]:
    """Gate-delay factor (relative to nominal) at each supply voltage."""
    points = []
    for vdd in voltages:
        points.append(
            VoltagePoint(
                vdd=vdd,
                value=model.delay_factor(vdd),
                functional=model.is_functional(vdd),
            )
        )
    return points


def sweep_supply_voltages(
    measure: Callable[[float], float],
    library: CellLibrary,
    voltages: Sequence[float] = FIGURE3_VOLTAGES,
    skip_non_functional: bool = True,
) -> List[VoltagePoint]:
    """Evaluate ``measure(vdd)`` at each functional supply voltage.

    Parameters
    ----------
    measure:
        Callable returning the quantity of interest (e.g. average latency in
        ps) at the given supply.
    library:
        Library whose voltage model decides functionality limits.
    voltages:
        Supply grid; defaults to the Figure-3 grid.
    skip_non_functional:
        When ``True``, voltages below the library's functional limit are
        reported with ``functional=False`` and are not measured.
    """
    points: List[VoltagePoint] = []
    for vdd in voltages:
        if not library.voltage_model.is_functional(vdd):
            if skip_non_functional:
                points.append(VoltagePoint(vdd=vdd, value=float("nan"), functional=False))
                continue
        points.append(VoltagePoint(vdd=vdd, value=measure(vdd), functional=True))
    return points


def exponential_region_slope(points: Sequence[VoltagePoint], v_max: float = 0.6) -> float:
    """Least-squares slope of ``ln(value)`` versus ``vdd`` for ``vdd <= v_max``.

    A strongly negative slope (value grows as voltage falls) confirms the
    exponential subthreshold behaviour shown in Figure 3.  Returns 0.0 when
    fewer than two usable points exist.
    """
    xs: List[float] = []
    ys: List[float] = []
    for p in points:
        if not p.functional or p.vdd > v_max or p.value <= 0 or math.isnan(p.value):
            continue
        xs.append(p.vdd)
        ys.append(math.log(p.value))
    if len(xs) < 2:
        return 0.0
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        return 0.0
    return num / den


def latency_ratio(points: Sequence[VoltagePoint], low_vdd: float, high_vdd: float) -> float:
    """Ratio of the measured value at *low_vdd* to the value at *high_vdd*."""
    def value_at(target: float) -> Optional[float]:
        best = None
        for p in points:
            if p.functional and abs(p.vdd - target) < 1e-9:
                best = p.value
        return best

    low = value_at(low_vdd)
    high = value_at(high_vdd)
    if low is None or high is None or high == 0:
        raise ValueError("requested voltages are not present in the sweep")
    return low / high
