"""Simulation environments driving the two datapath styles.

:class:`DualRailEnvironment` implements the circuit environment assumed by
the paper (Requirements 1, 5 and 6 of Section III): it drives every primary
input with alternating spacer and valid codewords, never removes a valid
before the outputs have indicated spacer→valid, and waits the configured
grace period after returning the inputs to spacer before applying the next
operand (Requirement 4, the reduced-completion-detection timing assumption).

From every operand it measures the quantities Table I is built from:

* ``t_s_to_v`` — spacer→valid latency at the outputs (the paper's
  "latency"), which varies per operand thanks to early propagation;
* ``t_v_to_s`` — output reset time after the inputs return to spacer;
* ``t_internal_reset`` — time until *every* net has reset (what the grace
  period must cover);
* the decoded output values, so functional correctness can be asserted.

:class:`SynchronousEnvironment` drives the single-rail baseline: it toggles
the clock with the period obtained from static timing analysis, presents one
operand per cycle and samples the registered outputs after each edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuits.gates import LogicValue
from repro.core.dual_rail import (
    DualRailCircuit,
    DualRailSignal,
    decode_pair,
    encode_bit,
    is_spacer,
    is_valid_codeword,
)
from repro.core.one_of_n import decode_one_of_n, is_spacer_one_of_n, is_valid_one_of_n

from .monitors import MonotonicityMonitor, ProtocolViolation
from .simulator import GateLevelSimulator


@dataclass
class DualRailInferenceResult:
    """Measurements of one dual-rail operand (one inference)."""

    operand: Dict[str, int]
    outputs: Dict[str, Optional[int]]
    one_of_n_outputs: Dict[str, Optional[int]]
    t_start: float
    t_s_to_v: float
    t_v_to_s: float
    t_internal_reset: float
    done_rise: Optional[float] = None
    done_fall: Optional[float] = None

    @property
    def latency(self) -> float:
        """Spacer→valid latency (the paper's per-inference latency)."""
        return self.t_s_to_v

    @property
    def cycle_time(self) -> float:
        """Minimum time before the next valid may be applied.

        The throughput period of the dual-rail design is the sum of the
        forward latency and the reset time (Section IV-D).
        """
        return self.t_s_to_v + self.t_v_to_s


@dataclass
class SynchronousCycleResult:
    """Measurements of one clock cycle of the single-rail baseline."""

    operand: Dict[str, int]
    outputs: Dict[str, LogicValue]
    cycle_index: int
    latency: float


class DualRailEnvironment:
    """Protocol driver and measurement harness for a :class:`DualRailCircuit`."""

    def __init__(
        self,
        circuit: DualRailCircuit,
        simulator: GateLevelSimulator,
        grace_period: float = 0.0,
        monotonicity_monitor: Optional[MonotonicityMonitor] = None,
        strict: bool = True,
    ) -> None:
        self.circuit = circuit
        self.sim = simulator
        self.grace_period = float(grace_period)
        self.monitor = monotonicity_monitor
        self.strict = strict
        self._initialised = False

    # ----------------------------------------------------------- low level
    def _input_assignments(self, values: Optional[Dict[str, int]]) -> Dict[str, int]:
        """Rail assignments for a full set of input codewords (or spacer)."""
        assignments: Dict[str, int] = {}
        for sig in self.circuit.inputs:
            if values is None:
                s = sig.polarity.spacer_rail_value
                assignments[sig.pos] = s
                assignments[sig.neg] = s
            else:
                if sig.name not in values:
                    raise KeyError(f"operand is missing a value for input {sig.name!r}")
                pos, neg = encode_bit(values[sig.name])
                assignments[sig.pos] = pos
                assignments[sig.neg] = neg
        return assignments

    def _outputs_valid_time(self, after: float) -> float:
        """Latest time at which the last output port became valid."""
        worst = after
        for sig in self.circuit.outputs:
            t = self._pair_event_time(sig, after, want_valid=True)
            worst = max(worst, t)
        for sig in self.circuit.one_of_n_outputs:
            t = self._one_of_n_event_time(sig, after, want_valid=True)
            worst = max(worst, t)
        return worst

    def _outputs_reset_time(self, after: float) -> float:
        """Latest time at which the last output port returned to spacer."""
        worst = after
        for sig in self.circuit.outputs:
            t = self._pair_event_time(sig, after, want_valid=False)
            worst = max(worst, t)
        for sig in self.circuit.one_of_n_outputs:
            t = self._one_of_n_event_time(sig, after, want_valid=False)
            worst = max(worst, t)
        return worst

    def _pair_event_time(self, sig: DualRailSignal, after: float, want_valid: bool) -> float:
        pos_now = self.sim.value(sig.pos)
        neg_now = self.sim.value(sig.neg)
        ok_now = (
            is_valid_codeword(pos_now, neg_now)
            if want_valid
            else is_spacer(pos_now, neg_now, sig.polarity)
        )
        if not ok_now:
            state = "valid" if want_valid else "spacer"
            raise ProtocolViolation(
                f"output {sig.name!r} never reached the {state} state "
                f"(rails are ({pos_now}, {neg_now}))"
            )
        times = []
        for rail in sig.rails():
            trace = self.sim.waveform.trace(rail)
            t = trace.first_time_matching(lambda v, rail=rail: v == self.sim.value(rail), after)
            if t is not None:
                times.append(t)
        return max(times) if times else after

    def _one_of_n_event_time(self, sig, after: float, want_valid: bool) -> float:
        values = [self.sim.value(r) for r in sig.rails]
        ok_now = (
            is_valid_one_of_n(values, sig.polarity)
            if want_valid
            else is_spacer_one_of_n(values, sig.polarity)
        )
        if not ok_now:
            state = "valid" if want_valid else "spacer"
            raise ProtocolViolation(
                f"1-of-n output {sig.name!r} never reached the {state} state (rails {values})"
            )
        times = []
        for rail in sig.rails:
            trace = self.sim.waveform.trace(rail)
            t = trace.first_time_matching(lambda v, rail=rail: v == self.sim.value(rail), after)
            if t is not None:
                times.append(t)
        return max(times) if times else after

    def _internal_reset_time(self, after: float) -> float:
        """Time of the last transition anywhere in the circuit after *after*."""
        latest = after
        for trace in self.sim.waveform.traces.values():
            for t in reversed(trace.times):
                if t <= after:
                    break
                latest = max(latest, t)
                break
        return latest

    # ------------------------------------------------------------ protocol
    def reset(self) -> None:
        """Drive every input to spacer and let the circuit settle."""
        if self.monitor is not None:
            self.monitor.begin_phase("reset")
        self.sim.set_inputs(self._input_assignments(None))
        self.sim.settle()
        self._initialised = True

    def infer(self, operand: Dict[str, int]) -> DualRailInferenceResult:
        """Run one full spacer→valid→spacer cycle for *operand*.

        The circuit must currently be in the spacer state (call
        :meth:`reset` once before the first operand).
        """
        if not self._initialised:
            self.reset()
        t_start = self.sim.time
        if self.monitor is not None:
            self.monitor.begin_phase(f"s_to_v@{t_start:.0f}")
        self.sim.set_inputs(self._input_assignments(operand))
        self.sim.settle()

        t_valid = self._outputs_valid_time(t_start)
        outputs: Dict[str, Optional[int]] = {}
        for sig in self.circuit.outputs:
            outputs[sig.name] = decode_pair(
                self.sim.value(sig.pos), self.sim.value(sig.neg), sig.polarity
            )
        one_of_n: Dict[str, Optional[int]] = {}
        for sig in self.circuit.one_of_n_outputs:
            one_of_n[sig.name] = decode_one_of_n(
                [self.sim.value(r) for r in sig.rails], sig.polarity
            )

        done_rise = None
        if self.circuit.done_net is not None:
            done_rise = self.sim.waveform.first_transition_after(
                self.circuit.done_net, t_start, lambda v: v == 1
            )
            if self.strict and done_rise is None:
                raise ProtocolViolation("completion (done) never asserted after valid inputs")

        # Requirement 6: inputs return to spacer only after S->V on the outputs.
        t_spacer_applied = self.sim.time
        if self.monitor is not None:
            self.monitor.begin_phase(f"v_to_s@{t_spacer_applied:.0f}")
        self.sim.set_inputs(self._input_assignments(None))
        self.sim.settle()
        t_outputs_reset = self._outputs_reset_time(t_spacer_applied)
        t_internal_reset = self._internal_reset_time(t_spacer_applied)

        done_fall = None
        if self.circuit.done_net is not None:
            done_fall = self.sim.waveform.first_transition_after(
                self.circuit.done_net, t_spacer_applied, lambda v: v == 0
            )

        # Requirement 4: wait the grace period before the next valid operand
        # so every internal net has reset even without internal CD.
        ready_at = t_spacer_applied + max(
            self.grace_period, t_outputs_reset - t_spacer_applied
        )
        if done_fall is not None:
            ready_at = max(ready_at, done_fall)
        if self.sim.time < ready_at:
            self.sim.run(until=ready_at)
            self.sim.time = max(self.sim.time, ready_at)

        return DualRailInferenceResult(
            operand=dict(operand),
            outputs=outputs,
            one_of_n_outputs=one_of_n,
            t_start=t_start,
            t_s_to_v=t_valid - t_start,
            t_v_to_s=t_outputs_reset - t_spacer_applied,
            t_internal_reset=t_internal_reset - t_spacer_applied,
            done_rise=done_rise,
            done_fall=done_fall,
        )

    def run_sequence(self, operands: Sequence[Dict[str, int]]) -> List[DualRailInferenceResult]:
        """Run a sequence of operands back to back, honouring the protocol."""
        results = []
        for operand in operands:
            results.append(self.infer(operand))
        return results


class SynchronousEnvironment:
    """Clock/stimulus driver for the registered single-rail baseline."""

    def __init__(
        self,
        simulator: GateLevelSimulator,
        clock_net: str,
        input_nets: Dict[str, str],
        output_nets: Dict[str, str],
        clock_period: float,
    ) -> None:
        self.sim = simulator
        self.clock_net = clock_net
        self.input_nets = dict(input_nets)
        self.output_nets = dict(output_nets)
        self.clock_period = float(clock_period)
        self.cycle_index = 0
        self.sim.set_input(clock_net, 0)
        self.sim.settle()

    def apply_operand(self, operand: Dict[str, int]) -> None:
        """Present operand values on the (registered) primary inputs."""
        assignments = {}
        for name, value in operand.items():
            if name not in self.input_nets:
                raise KeyError(f"unknown single-rail input {name!r}")
            assignments[self.input_nets[name]] = int(bool(value))
        self.sim.set_inputs(assignments)
        self.sim.settle()

    def clock_edge(self) -> None:
        """Issue one full clock cycle (rising edge, then falling edge)."""
        half = self.clock_period / 2.0
        rise_at = self.sim.time
        self.sim.set_input(self.clock_net, 1, at=rise_at)
        self.sim.run(until=rise_at + half)
        self.sim.set_input(self.clock_net, 0, at=rise_at + half)
        self.sim.run(until=rise_at + self.clock_period)
        self.sim.time = rise_at + self.clock_period
        self.cycle_index += 1

    def read_outputs(self) -> Dict[str, LogicValue]:
        """Sample the registered primary outputs."""
        return {name: self.sim.value(net) for name, net in self.output_nets.items()}

    def run_operand(self, operand: Dict[str, int]) -> SynchronousCycleResult:
        """Present *operand*, run the two clock edges needed to register the result.

        With input and output registers an operand is captured on one rising
        edge and its result appears at the output registers on the next, so
        the per-operand latency equals one clock period once the pipeline is
        primed (the paper's "the clock period defines the latency").
        """
        self.apply_operand(operand)
        self.clock_edge()   # capture operand into the input registers
        self.clock_edge()   # capture the result into the output registers
        return SynchronousCycleResult(
            operand=dict(operand),
            outputs=self.read_outputs(),
            cycle_index=self.cycle_index,
            latency=self.clock_period,
        )

    def run_pipelined(self, operands: Sequence[Dict[str, int]]) -> List[Dict[str, LogicValue]]:
        """Stream operands one per cycle and collect the (delayed) outputs."""
        outputs: List[Dict[str, LogicValue]] = []
        for operand in operands:
            self.apply_operand(operand)
            self.clock_edge()
            outputs.append(self.read_outputs())
        # Flush the final result through the output register stage.
        self.clock_edge()
        outputs.append(self.read_outputs())
        return outputs[1:]
