"""Gate-level event-driven simulator.

This is the behavioural equivalent of the paper's post-synthesis gate-level
simulation: every cell instance switches after a per-cell delay obtained from
the characterised library (optionally scaled for supply voltage and per-cell
variation), and the simulator processes the resulting events in time order.

Design notes
------------
* **Delays** come from :meth:`repro.circuits.library.CellLibrary.cell_delay`
  using the load actually present on each output net, multiplied by the
  library's voltage model for the selected supply and by an optional
  per-instance variation factor (used for delay-variation robustness
  experiments).
* **Three-valued logic** with controlling-value evaluation gives faithful
  *early propagation*: an OR-type rail can switch as soon as a single input
  arrives, which is exactly the mechanism the dual-rail comparator exploits.
* **Sequential cells**: Muller C-elements hold state through their own output
  value; D flip-flops sample their ``D`` pin on the rising edge of ``CK``.
* **Monitors** (see :mod:`repro.sim.monitors`) observe every committed net
  change; they are how the protocol requirements of Section III are checked
  dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.gates import LogicValue, gate_spec, is_sequential
from repro.circuits.library import CellLibrary
from repro.circuits.netlist import Cell, Netlist

from .events import Event, EventQueue
from .waveform import Waveform

#: Estimated wire capacitance added per fanout connection (fF).  A small
#: constant stands in for placement-dependent routing parasitics.
WIRE_CAP_PER_FANOUT_FF = 0.35


class SimulationError(Exception):
    """Raised when a run cannot make progress (e.g. oscillation detected)."""


class Monitor:
    """Base class for simulation observers.

    Subclasses override :meth:`on_net_change`; the simulator calls it after
    every committed value change.
    """

    def on_net_change(
        self, time: float, net: str, old: LogicValue, new: LogicValue, cause: str
    ) -> None:  # pragma: no cover - interface default
        """Called after *net* changed from *old* to *new* at *time*."""


@dataclass
class TransitionRecord:
    """One committed output transition (used for energy accounting)."""

    time: float
    cell: str
    cell_type: str
    net: str
    value: LogicValue


class GateLevelSimulator:
    """Event-driven simulator for a mapped gate-level netlist.

    Parameters
    ----------
    netlist:
        The design to simulate.
    library:
        Characterised cell library supplying delays and energies.
    vdd:
        Supply voltage; defaults to the library's nominal voltage.  Delays
        and energies are scaled through the library's voltage model.
    record_waveform:
        When ``True`` every net change is recorded into :attr:`waveform`.
    delay_variation:
        Optional per-instance multiplicative delay factor
        (``cell name -> factor``), used by robustness experiments to model
        process/temperature-induced delay variation.  Missing entries use a
        factor of 1.0.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: CellLibrary,
        vdd: Optional[float] = None,
        record_waveform: bool = True,
        delay_variation: Optional[Dict[str, float]] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.vdd = float(vdd) if vdd is not None else library.voltage_model.nominal_vdd
        if not library.voltage_model.is_functional(self.vdd):
            raise SimulationError(
                f"library {library.name!r} is not functional at {self.vdd:.2f} V "
                f"(minimum {library.voltage_model.min_functional_vdd:.2f} V)"
            )
        self.record_waveform = record_waveform
        self.delay_variation = dict(delay_variation or {})

        self.time: float = 0.0
        self.values: Dict[str, LogicValue] = {name: None for name in netlist.nets}
        self.queue = EventQueue()
        self.waveform = Waveform()
        self.monitors: List[Monitor] = []
        self.transition_log: List[TransitionRecord] = []
        self.events_processed = 0

        # Pending scheduled value per (net) to suppress duplicate events.
        self._pending: Dict[str, LogicValue] = {}
        # Delay cache keyed by (cell name, output net) — tuple keys cannot
        # collide the way the old "name:net" f-string keys could for names
        # containing the separator.  The fanout load and the supply/variation
        # scaling are folded in on the single miss per key, so repeated
        # switching of a cell never recomputes the load.
        self._delay_cache: Dict[Tuple[str, str], float] = {}
        self._specs = {cell.name: gate_spec(cell.cell_type) for cell in netlist.iter_cells()}
        self._sequential = {
            cell.name for cell in netlist.iter_cells() if is_sequential(cell.cell_type)
        }
        self._dffs = [cell for cell in netlist.iter_cells() if cell.cell_type == "DFF"]
        # Constant cells drive their outputs at time zero.
        for cell in netlist.iter_cells():
            if cell.cell_type in ("TIE0", "TIE1"):
                value = 1 if cell.cell_type == "TIE1" else 0
                for net in cell.outputs.values():
                    self.queue.schedule(0.0, net, value, cause=cell.name)
                    self._pending[net] = value

    # ------------------------------------------------------------ monitors
    def add_monitor(self, monitor: Monitor) -> Monitor:
        """Attach a :class:`Monitor`; returns it for chaining."""
        self.monitors.append(monitor)
        return monitor

    # -------------------------------------------------------------- timing
    def output_load(self, cell: Cell, output_net: str) -> float:
        """Capacitive load on *output_net* in fF (fanout pins + wire estimate)."""
        net = self.netlist.nets[output_net]
        load = WIRE_CAP_PER_FANOUT_FF * max(1, net.fanout)
        for sink_name, _pin in net.sinks:
            sink = self.netlist.cells[sink_name]
            if self.library.has_cell(sink.cell_type):
                load += self.library.cell(sink.cell_type).input_cap
        return load

    def cell_delay(self, cell: Cell, output_net: str) -> float:
        """Switching delay of *cell* driving *output_net* at the current supply."""
        cache_key = (cell.name, output_net)
        cached = self._delay_cache.get(cache_key)
        if cached is None:
            load = self.output_load(cell, output_net)
            cached = self.library.cell_delay(cell.cell_type, load, vdd=self.vdd)
            cached *= self.delay_variation.get(cell.name, 1.0)
            self._delay_cache[cache_key] = cached
        return cached

    # ------------------------------------------------------------- stimulus
    def set_input(self, net: str, value: LogicValue, at: Optional[float] = None) -> None:
        """Schedule a primary-input change (defaults to the current time)."""
        if net not in self.netlist.nets:
            raise KeyError(f"unknown net {net!r}")
        when = self.time if at is None else float(at)
        if when < self.time:
            raise ValueError(f"cannot schedule input change in the past ({when} < {self.time})")
        self.queue.schedule(when, net, value, cause="PI")
        self._pending[net] = value

    def set_inputs(self, assignments: Dict[str, LogicValue], at: Optional[float] = None) -> None:
        """Schedule several primary-input changes at the same time."""
        for net, value in assignments.items():
            self.set_input(net, value, at=at)

    def value(self, net: str) -> LogicValue:
        """Current value of *net*."""
        return self.values[net]

    def values_of(self, nets: Sequence[str]) -> List[LogicValue]:
        """Current values of several nets, in order."""
        return [self.values[n] for n in nets]

    # ------------------------------------------------------------ execution
    def _commit(self, event: Event) -> bool:
        """Apply *event*; return ``True`` if the net value actually changed.

        ``self._pending`` deliberately keeps the *last scheduled* value of
        every net even after events fire: because each net has a single
        driver with a fixed delay, events fire in schedule order, so the last
        scheduled value is the value the net will eventually settle to — the
        correct reference when deciding whether a re-evaluation needs to
        schedule a new event.
        """
        old = self.values.get(event.net)
        if old == event.value:
            return False
        self.values[event.net] = event.value
        if self.record_waveform:
            self.waveform.record(event.net, event.time, event.value)
        if event.cause != "PI":
            cell = self.netlist.cells.get(event.cause)
            if cell is not None:
                self.transition_log.append(
                    TransitionRecord(
                        time=event.time,
                        cell=cell.name,
                        cell_type=cell.cell_type,
                        net=event.net,
                        value=event.value,
                    )
                )
        for monitor in self.monitors:
            monitor.on_net_change(event.time, event.net, old, event.value, event.cause)
        return True

    def _evaluate_cell(self, cell: Cell, rising_clock: bool = False) -> None:
        """Re-evaluate *cell* and schedule any output changes."""
        spec = self._specs[cell.name]
        if cell.cell_type == "DFF":
            if not rising_clock:
                return
            d_value = self.values.get(cell.inputs["D"])
            out_net = cell.outputs["Q"]
            self._schedule_output(cell, out_net, d_value)
            return
        inputs = {pin: self.values.get(net) for pin, net in cell.inputs.items()}
        state: LogicValue = None
        if cell.name in self._sequential:
            state = self.values.get(next(iter(cell.outputs.values())))
        outputs = spec.evaluate(inputs, state)
        for pin, new_value in outputs.items():
            out_net = cell.outputs[pin]
            self._schedule_output(cell, out_net, new_value)

    def _schedule_output(self, cell: Cell, out_net: str, new_value: LogicValue) -> None:
        current = self.values.get(out_net)
        pending = self._pending.get(out_net, current)
        if new_value == pending:
            return
        delay = self.cell_delay(cell, out_net)
        self.queue.schedule(self.time + delay, out_net, new_value, cause=cell.name)
        self._pending[out_net] = new_value

    def step(self) -> bool:
        """Process all events at the next timestamp.  Returns ``False`` when idle."""
        batch = self.queue.pop_simultaneous()
        if not batch:
            return False
        self.time = batch[0].time
        changed_nets: List[Tuple[str, LogicValue, LogicValue]] = []
        for event in batch:
            old = self.values.get(event.net)
            if self._commit(event):
                changed_nets.append((event.net, old, event.value))
                self.events_processed += 1
        # Fan out: re-evaluate every cell reading a changed net.
        evaluated = set()
        for net, old, new in changed_nets:
            for sink_name, pin in self.netlist.nets[net].sinks:
                cell = self.netlist.cells[sink_name]
                if cell.cell_type == "DFF" and pin == "CK":
                    rising = old in (0, None) and new == 1
                    if rising:
                        self._evaluate_cell(cell, rising_clock=True)
                    continue
                if sink_name in evaluated and cell.cell_type != "DFF":
                    continue
                evaluated.add(sink_name)
                self._evaluate_cell(cell)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 2_000_000) -> float:
        """Run until the queue drains or *until* is reached.

        Returns the simulation time after the run.  Raises
        :class:`SimulationError` if more than *max_events* are processed,
        which would indicate an oscillating (non-monotonic) circuit.
        """
        start_events = self.events_processed
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            self.step()
            if self.events_processed - start_events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; circuit appears to oscillate"
                )
        if until is not None and until > self.time:
            self.time = until
        return self.time

    def settle(self, max_events: int = 2_000_000) -> float:
        """Run until no events remain and return the time of the last change."""
        return self.run(until=None, max_events=max_events)

    # ------------------------------------------------------------- statistics
    def transitions_between(self, start: float, end: float) -> List[TransitionRecord]:
        """Committed cell-output transitions with ``start < time <= end``."""
        return [t for t in self.transition_log if start < t.time <= end]

    def transition_count_by_cell_type(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[str, int]:
        """Histogram of output transitions per cell type in a time window."""
        histogram: Dict[str, int] = {}
        for record in self.transition_log:
            if record.time <= start:
                continue
            if end is not None and record.time > end:
                continue
            histogram[record.cell_type] = histogram.get(record.cell_type, 0) + 1
        return histogram

    def reset_statistics(self) -> None:
        """Clear the transition log (waveform and values are preserved)."""
        self.transition_log.clear()
        self.events_processed = 0
