"""Characterised standard-cell libraries.

The paper synthesises the datapath onto two proprietary 65 nm libraries:

* **UMC LL** — a commercial low-leakage library, minimally sized, operated at
  a nominal 1.2 V, TT corner;
* **FULL DIFFUSION** — a custom library aimed at high-performance
  *subthreshold* operation, using a full-diffusion sizing strategy with
  non-minimum-length transistors.

Neither library is available, so this module provides synthetic
characterisations (:func:`umc_ll_library` and :func:`full_diffusion_library`)
whose *relative* properties reproduce what the paper relies on:

* UMC LL cells are small and fast at nominal voltage but not designed to
  operate deep below threshold;
* FULL DIFFUSION cells are roughly twice the area, slightly slower at
  nominal voltage, leak less per unit drive, and stay functional down to
  0.25 V;
* in UMC LL the C-element (the dual-rail latch) maps onto a single complex
  gate (AOI32-based), whereas FULL DIFFUSION lacks AOI32 cells so the
  C-element is built from four simple gates — making it larger and slower,
  exactly the asymmetry called out in Section IV-D of the paper.

Each :class:`CellModel` carries area, input capacitance, intrinsic delay,
load-dependent delay, switching energy and leakage.  Delay/energy/leakage
scaling with supply voltage is provided by :class:`VoltageModel` (an
alpha-power-law strong-inversion model blended with an exponential
subthreshold model), which is what produces the Figure-3 latency curve.
"""

from __future__ import annotations

import hashlib
import json
import math
import weakref
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional

from .gates import GATE_REGISTRY, gate_spec


@dataclass(frozen=True)
class CellModel:
    """Characterisation data for one library cell.

    Attributes
    ----------
    name:
        Cell type name (must exist in :data:`repro.circuits.gates.GATE_REGISTRY`).
    area:
        Cell area in µm².
    input_cap:
        Input pin capacitance in fF (assumed equal for all pins).
    intrinsic_delay:
        Unloaded pin-to-output delay in ps at the library's nominal voltage.
    load_delay:
        Additional delay in ps per fF of output load.
    switching_energy:
        Energy per output transition in fJ at nominal voltage (internal +
        output switching).
    leakage:
        Static leakage power in nW at nominal voltage.
    """

    name: str
    area: float
    input_cap: float
    intrinsic_delay: float
    load_delay: float
    switching_energy: float
    leakage: float


@dataclass(frozen=True)
class VoltageModel:
    """Gate-delay / energy / leakage scaling with supply voltage.

    The delay model is the standard alpha-power law in strong inversion
    blended with an exponential subthreshold current model::

        I_on(V) ∝ (V - Vth)^alpha                  for V ≫ Vth
        I_on(V) ∝ I0 · exp((V - Vth) / (n·v_T))    for V ≲ Vth
        delay(V) ∝ C · V / I_on(V)

    Attributes
    ----------
    nominal_vdd:
        Supply at which the cell models are characterised (1.2 V here).
    vth:
        Effective threshold voltage of the technology corner.
    alpha:
        Velocity-saturation exponent (≈1.3 for 65 nm).
    subthreshold_slope:
        ``n · v_T`` in volts (≈0.035–0.045 V at room temperature).
    min_functional_vdd:
        Lowest supply at which the library's cells still switch correctly.
        The dual-rail circuit remains *logically* correct below the nominal
        range because it is self-timed; this limit models transistor-level
        functionality of the cells themselves.
    """

    nominal_vdd: float = 1.2
    vth: float = 0.45
    alpha: float = 1.3
    subthreshold_slope: float = 0.04
    min_functional_vdd: float = 0.5

    def _drive_current(self, vdd: float) -> float:
        """Relative on-current at *vdd* (1.0 at ``nominal_vdd``)."""
        def raw(v: float) -> float:
            overdrive = v - self.vth
            # Smooth blend: strong inversion when the overdrive is well above
            # a few subthreshold slopes, exponential below.
            knee = 2.0 * self.subthreshold_slope
            if overdrive > knee:
                strong = overdrive ** self.alpha
                return strong
            # Subthreshold / near-threshold branch, continuous at the knee.
            strong_at_knee = knee ** self.alpha
            return strong_at_knee * math.exp((overdrive - knee) / self.subthreshold_slope)

        return raw(vdd) / raw(self.nominal_vdd)

    def delay_factor(self, vdd: float) -> float:
        """Multiplicative gate-delay factor at *vdd* (1.0 at nominal).

        ``delay ∝ C·V / I_on(V)``; the capacitance term is voltage
        independent at this abstraction level.  The factor is memoized per
        supply point — program compilation and the timing engines price
        thousands of cells at the same handful of voltages.
        """
        if vdd <= 0:
            raise ValueError("supply voltage must be positive")
        cache = self.__dict__.get("_delay_factor_memo")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_delay_factor_memo", cache)
        factor = cache.get(vdd)
        if factor is None:
            current = self._drive_current(vdd)
            nominal_current = 1.0
            factor = (vdd / self.nominal_vdd) * (nominal_current / current)
            cache[vdd] = factor
        return factor

    def energy_factor(self, vdd: float) -> float:
        """Dynamic-energy factor: ``E ∝ C·V²``."""
        return (vdd / self.nominal_vdd) ** 2

    def leakage_factor(self, vdd: float) -> float:
        """Leakage-power factor: DIBL-dominated, roughly exponential in V."""
        dibl = 0.08  # V/V, typical 65 nm
        return (vdd / self.nominal_vdd) * math.exp(
            dibl * (vdd - self.nominal_vdd) / self.subthreshold_slope
        )

    def is_functional(self, vdd: float) -> bool:
        """Whether the library's cells still operate at *vdd*."""
        return vdd >= self.min_functional_vdd


class CellLibrary:
    """A named collection of :class:`CellModel` with a :class:`VoltageModel`.

    Parameters
    ----------
    name:
        Library name used in reports (``"UMC LL"`` / ``"FULL DIFFUSION"``).
    cells:
        Mapping from cell type name to its :class:`CellModel`.
    voltage_model:
        Delay/energy/leakage scaling model for the technology.
    description:
        Free-text description used in report headers.
    """

    def __init__(
        self,
        name: str,
        cells: Dict[str, CellModel],
        voltage_model: VoltageModel,
        description: str = "",
    ) -> None:
        unknown = [c for c in cells if c not in GATE_REGISTRY]
        if unknown:
            raise KeyError(f"library {name!r} characterises unknown cell types: {unknown}")
        self.name = name
        self.cells = dict(cells)
        self.voltage_model = voltage_model
        self.description = description

    # ----------------------------------------------------------- cell access
    def has_cell(self, cell_type: str) -> bool:
        """``True`` when the library characterises *cell_type*."""
        return cell_type in self.cells

    def cell(self, cell_type: str) -> CellModel:
        """Return the :class:`CellModel` for *cell_type*.

        Raises
        ------
        KeyError
            If the library does not characterise the cell type.
        """
        try:
            return self.cells[cell_type]
        except KeyError:
            raise KeyError(
                f"cell type {cell_type!r} is not available in library {self.name!r}"
            )

    def available_cells(self) -> Iterable[str]:
        """Names of all characterised cell types."""
        return sorted(self.cells)

    # --------------------------------------------------------------- timing
    def cell_delay(self, cell_type: str, load_caps: float = 0.0, vdd: Optional[float] = None) -> float:
        """Pin-to-output delay of *cell_type* in ps.

        Parameters
        ----------
        load_caps:
            Total capacitive load on the output in fF (sum of fanout input
            capacitances).
        vdd:
            Supply voltage; defaults to the library's nominal voltage.
        """
        model = self.cell(cell_type)
        delay = model.intrinsic_delay + model.load_delay * load_caps
        if vdd is None:
            return delay
        return delay * self.voltage_model.delay_factor(vdd)

    def cell_energy(self, cell_type: str, vdd: Optional[float] = None) -> float:
        """Energy per output transition in fJ (optionally scaled to *vdd*)."""
        model = self.cell(cell_type)
        if vdd is None:
            return model.switching_energy
        return model.switching_energy * self.voltage_model.energy_factor(vdd)

    def cell_leakage(self, cell_type: str, vdd: Optional[float] = None) -> float:
        """Static leakage of one instance in nW (optionally scaled to *vdd*)."""
        model = self.cell(cell_type)
        if vdd is None:
            return model.leakage
        return model.leakage * self.voltage_model.leakage_factor(vdd)

    def is_sequential_cell(self, cell_type: str) -> bool:
        """Sequential cells contribute to the Table-I "sequential area" column."""
        return gate_spec(cell_type).sequential

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CellLibrary({self.name!r}, {len(self.cells)} cells)"


#: Identity-keyed fingerprint memo.  Libraries are built once by their
#: factory functions and then treated as read-only, so the digest of a
#: given instance never changes; the cell-count guard still invalidates
#: the common grow-after-fingerprint mistake.
_library_fingerprint_memo = weakref.WeakKeyDictionary()


def library_fingerprint(library: CellLibrary) -> str:
    """Deterministic digest of a library's full characterisation.

    Covers every cell model field and the voltage model, so any edit to the
    library — areas, delays, energies, leakage, supply behaviour — moves the
    fingerprint.  Shared by the DSE result store
    (:mod:`repro.explore.store`) and the compiled-program cache
    (:mod:`repro.sim.program_cache`) as the library ingredient of their
    content-hash keys.  Memoized per library instance (libraries are
    build-once objects); adding or removing cells invalidates the memo.
    """
    cached = _library_fingerprint_memo.get(library)
    if cached is not None and cached[0] == len(library.cells):
        return cached[1]
    payload = {
        "name": library.name,
        "cells": {
            name: asdict(model) for name, model in sorted(library.cells.items())
        },
        "voltage_model": asdict(library.voltage_model),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()
    _library_fingerprint_memo[library] = (len(library.cells), digest)
    return digest


def _scaled_cells(base: Dict[str, tuple], area_scale: float, delay_scale: float,
                  energy_scale: float, leak_scale: float, cap_scale: float) -> Dict[str, CellModel]:
    """Apply technology scaling factors to a base characterisation table."""
    cells = {}
    for name, (area, cap, d0, dl, energy, leak) in base.items():
        cells[name] = CellModel(
            name=name,
            area=round(area * area_scale, 3),
            input_cap=round(cap * cap_scale, 4),
            intrinsic_delay=round(d0 * delay_scale, 3),
            load_delay=round(dl * delay_scale, 4),
            switching_energy=round(energy * energy_scale, 4),
            leakage=round(leak * leak_scale, 5),
        )
    return cells


# Base characterisation (loosely modelled on a 65 nm LL process at 1.2 V, TT):
#   name: (area µm², input cap fF, intrinsic delay ps, load delay ps/fF,
#          switching energy fJ, leakage nW)
_BASE_CELLS: Dict[str, tuple] = {
    "INV":   (1.3, 1.6, 14.0, 3.2, 0.55, 0.020),
    "BUF":   (1.8, 1.6, 26.0, 2.6, 0.80, 0.028),
    "AND2":  (2.6, 1.7, 34.0, 3.0, 1.00, 0.040),
    "AND3":  (3.1, 1.8, 40.0, 3.1, 1.20, 0.048),
    "AND4":  (3.6, 1.9, 46.0, 3.2, 1.40, 0.056),
    "AND8":  (6.2, 2.0, 62.0, 3.4, 2.20, 0.095),
    "OR2":   (2.6, 1.7, 36.0, 3.0, 1.00, 0.040),
    "OR3":   (3.1, 1.8, 42.0, 3.1, 1.20, 0.048),
    "OR4":   (3.6, 1.9, 48.0, 3.2, 1.40, 0.056),
    "OR8":   (6.2, 2.0, 66.0, 3.4, 2.20, 0.095),
    "NAND2": (2.0, 1.7, 22.0, 3.4, 0.80, 0.032),
    "NAND3": (2.6, 1.8, 28.0, 3.6, 1.00, 0.040),
    "NAND4": (3.2, 1.9, 34.0, 3.8, 1.20, 0.048),
    "NOR2":  (2.0, 1.7, 26.0, 3.6, 0.80, 0.032),
    "NOR3":  (2.6, 1.8, 34.0, 3.8, 1.00, 0.040),
    "NOR4":  (3.2, 1.9, 42.0, 4.0, 1.20, 0.048),
    "AO21":  (2.9, 1.8, 38.0, 3.4, 1.10, 0.042),
    "AO22":  (3.5, 1.9, 42.0, 3.6, 1.30, 0.050),
    "OA21":  (2.9, 1.8, 38.0, 3.4, 1.10, 0.042),
    "OA22":  (3.5, 1.9, 42.0, 3.6, 1.30, 0.050),
    "AOI21": (2.6, 1.8, 30.0, 3.6, 1.00, 0.038),
    "AOI22": (3.2, 1.9, 34.0, 3.8, 1.20, 0.046),
    "AOI32": (3.9, 2.0, 38.0, 4.0, 1.40, 0.054),
    "OAI21": (2.6, 1.8, 30.0, 3.6, 1.00, 0.038),
    "OAI22": (3.2, 1.9, 34.0, 3.8, 1.20, 0.046),
    "OAI32": (3.9, 2.0, 38.0, 4.0, 1.40, 0.054),
    "MAJ3":  (4.2, 1.9, 44.0, 3.6, 1.50, 0.058),
    "XOR2":  (3.9, 2.1, 48.0, 3.8, 1.60, 0.060),
    "XNOR2": (3.9, 2.1, 48.0, 3.8, 1.60, 0.060),
    "TIE0":  (0.7, 0.0, 0.0, 0.0, 0.00, 0.008),
    "TIE1":  (0.7, 0.0, 0.0, 0.0, 0.00, 0.008),
    "DFF":   (9.1, 1.9, 120.0, 3.4, 3.20, 0.140),
    # C-elements: in UMC LL a 2-input C-element maps onto a single complex
    # gate (AOI32 plus feedback), in FULL DIFFUSION it needs four simple
    # gates (see full_diffusion_library below, which overrides these).
    "C2":    (4.2, 1.9, 52.0, 3.8, 1.70, 0.070),
    "C3":    (5.4, 2.0, 60.0, 4.0, 2.00, 0.085),
}


def umc_ll_library() -> CellLibrary:
    """Synthetic stand-in for the commercial UMC 65 nm low-leakage library.

    Minimally sized cells, fast at the nominal 1.2 V supply, low leakage,
    but not characterised for operation much below ~0.5 V.
    """
    cells = _scaled_cells(
        _BASE_CELLS,
        area_scale=1.0,
        delay_scale=1.0,
        energy_scale=1.0,
        leak_scale=1.0,
        cap_scale=1.0,
    )
    voltage = VoltageModel(
        nominal_vdd=1.2,
        vth=0.45,
        alpha=1.30,
        subthreshold_slope=0.040,
        min_functional_vdd=0.50,
    )
    return CellLibrary(
        name="UMC LL",
        cells=cells,
        voltage_model=voltage,
        description=(
            "Synthetic superthreshold low-leakage 65 nm library "
            "(stand-in for the commercial UMC LL library used in the paper)."
        ),
    )


def full_diffusion_library() -> CellLibrary:
    """Synthetic stand-in for the custom FULL DIFFUSION subthreshold library.

    Full-diffusion sizing with non-minimum-length transistors: roughly twice
    the area per cell, slightly slower at nominal voltage, lower relative
    leakage, and functional down to 0.25 V.  The library lacks AOI32 cells,
    so the dual-rail C-element latch is composed of four simple gates —
    modelled here by a larger, slower C2/C3 characterisation.
    """
    base = dict(_BASE_CELLS)
    # No AOI32/OAI32 in this library (the paper notes the missing AOI32 cell).
    del base["AOI32"]
    del base["OAI32"]
    cells = _scaled_cells(
        base,
        area_scale=1.9,
        delay_scale=1.15,
        energy_scale=2.1,
        leak_scale=0.50,
        cap_scale=1.6,
    )
    # C-element built from four simple gates: bigger, slower, leakier than a
    # single complex gate implementation.
    for cname, scale_area, scale_delay in (("C2", 1.75, 1.35), ("C3", 1.75, 1.35)):
        model = cells[cname]
        cells[cname] = CellModel(
            name=cname,
            area=round(model.area * scale_area, 3),
            input_cap=model.input_cap,
            intrinsic_delay=round(model.intrinsic_delay * scale_delay, 3),
            load_delay=model.load_delay,
            switching_energy=round(model.switching_energy * 1.4, 4),
            leakage=round(model.leakage * 1.6, 5),
        )
    voltage = VoltageModel(
        nominal_vdd=1.2,
        vth=0.34,
        alpha=1.35,
        subthreshold_slope=0.042,
        min_functional_vdd=0.25,
    )
    return CellLibrary(
        name="FULL DIFFUSION",
        cells=cells,
        voltage_model=voltage,
        description=(
            "Synthetic subthreshold-capable 65 nm library with full-diffusion "
            "sizing (stand-in for the custom library of Morris et al.)."
        ),
    )


def default_libraries() -> Dict[str, CellLibrary]:
    """Both Table-I libraries keyed by name."""
    libs = [umc_ll_library(), full_diffusion_library()]
    return {lib.name: lib for lib in libs}
