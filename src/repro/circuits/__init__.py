"""Structural netlists, gate behaviours and characterised cell libraries.

This package is the hardware-description substrate shared by the single-rail
baseline and the dual-rail asynchronous datapath:

* :mod:`repro.circuits.netlist` — flat gate-level netlist data model;
* :mod:`repro.circuits.gates` — behavioural models (three-valued logic) for
  every supported cell, including Muller C-elements and flip-flops;
* :mod:`repro.circuits.library` — two synthetic characterised 65 nm-class
  libraries standing in for the paper's UMC LL and FULL DIFFUSION libraries;
* :mod:`repro.circuits.builder` — a small DSL for constructing netlists;
* :mod:`repro.circuits.validate` — structural design-rule checks
  (unateness, floating nets, combinational loops, library mappability).
"""

from .builder import LogicBuilder
from .gates import (
    GATE_REGISTRY,
    GateSpec,
    LogicValue,
    evaluate_gate,
    gate_spec,
    is_inverting,
    is_sequential,
    is_unate,
)
from .levelize import combinational_depth, levelize
from .library import (
    CellLibrary,
    CellModel,
    VoltageModel,
    default_libraries,
    full_diffusion_library,
    umc_ll_library,
)
from .netlist import Cell, Net, Netlist, NetlistError, merge_netlists
from .validate import (
    ValidationReport,
    check_connectivity,
    check_library_mappable,
    check_no_combinational_loops,
    check_structure,
    check_unate_only,
    find_c_elements,
    find_flip_flops,
    validate_dual_rail_netlist,
    validate_single_rail_netlist,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "CellModel",
    "GATE_REGISTRY",
    "GateSpec",
    "LogicBuilder",
    "LogicValue",
    "Net",
    "Netlist",
    "NetlistError",
    "ValidationReport",
    "VoltageModel",
    "check_connectivity",
    "check_library_mappable",
    "check_no_combinational_loops",
    "check_structure",
    "check_unate_only",
    "combinational_depth",
    "default_libraries",
    "evaluate_gate",
    "find_c_elements",
    "find_flip_flops",
    "full_diffusion_library",
    "gate_spec",
    "is_inverting",
    "is_sequential",
    "is_unate",
    "levelize",
    "merge_netlists",
    "umc_ll_library",
    "validate_dual_rail_netlist",
    "validate_single_rail_netlist",
]
