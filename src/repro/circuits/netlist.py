"""Structural netlist representation.

The netlist model is deliberately simple and explicit: a :class:`Netlist` is a
bag of named :class:`Net` objects (wires) and :class:`Cell` instances (gates).
Each cell names its cell *type* (a key into a :class:`~repro.circuits.library.CellLibrary`),
and maps its input/output pin names onto nets.

This is the common substrate shared by

* the single-rail (synchronous) baseline datapath,
* the dual-rail expansion produced by :mod:`repro.core.expansion`,
* the event-driven simulator in :mod:`repro.sim.simulator`, and
* the synthesis/reporting flow in :mod:`repro.synth`.

The representation corresponds to a flattened post-synthesis gate-level
netlist, which is the abstraction level the paper's evaluation operates at
(post-synthesis simulation of a mapped netlist).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class NetlistError(Exception):
    """Raised for structural errors while building or validating a netlist."""


@dataclass
class Net:
    """A single wire in the netlist.

    Attributes
    ----------
    name:
        Unique name of the net within its netlist.
    driver:
        The ``(cell_name, output_pin)`` pair that drives the net, or ``None``
        for primary inputs and floating nets.
    sinks:
        List of ``(cell_name, input_pin)`` pairs reading the net.
    """

    name: str
    driver: Optional[Tuple[str, str]] = None
    sinks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        """Number of cell input pins driven by this net."""
        return len(self.sinks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name!r}, fanout={self.fanout})"


@dataclass
class Cell:
    """An instance of a library cell.

    Attributes
    ----------
    name:
        Unique instance name.
    cell_type:
        Name of the cell in the technology library (e.g. ``"NAND2"``).
    inputs:
        Mapping of input pin name to net name.
    outputs:
        Mapping of output pin name to net name.
    attrs:
        Free-form attributes (e.g. ``{"role": "completion-detect"}``) used by
        reporting and by the spacer-polarity analysis.
    """

    name: str
    cell_type: str
    inputs: Dict[str, str] = field(default_factory=dict)
    outputs: Dict[str, str] = field(default_factory=dict)
    attrs: Dict[str, object] = field(default_factory=dict)

    def input_nets(self) -> List[str]:
        """Return the input net names in pin order."""
        return list(self.inputs.values())

    def output_nets(self) -> List[str]:
        """Return the output net names in pin order."""
        return list(self.outputs.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.name!r}, {self.cell_type})"


class Netlist:
    """A flat gate-level netlist.

    Parameters
    ----------
    name:
        Human-readable design name, used in reports.

    Notes
    -----
    Nets are created implicitly the first time they are referenced by
    :meth:`add_cell`, :meth:`add_input` or :meth:`add_output`.  A net may have
    at most one driver; multiple drivers raise :class:`NetlistError`.

    **Iteration order is part of the contract**: :meth:`iter_cells`,
    :meth:`iter_nets`, :meth:`internal_nets`, :attr:`primary_inputs` and
    :attr:`primary_outputs` all iterate in insertion order (Python dicts and
    lists preserve it), and every derived ordering — levelization, reports,
    :meth:`topological_order`, the HDL emission in :mod:`repro.hdl` — is a
    pure function of that order plus explicit sorting.  Building the same
    design twice therefore yields byte-identical Verilog and identical
    area/leakage/timing reports across runs, interpreters and
    ``PYTHONHASHSEED`` values; the determinism tests assert this.  Code that
    extends this class must not iterate over ``set``/``frozenset`` when the
    result reaches any output.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.cells: Dict[str, Cell] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._cell_counter = 0

    # ------------------------------------------------------------------ nets
    def get_net(self, name: str) -> Net:
        """Return the net called *name*, creating it if necessary."""
        if name not in self.nets:
            self.nets[name] = Net(name)
        return self.nets[name]

    def has_net(self, name: str) -> bool:
        """Return ``True`` if a net called *name* exists."""
        return name in self.nets

    def add_input(self, name: str) -> Net:
        """Declare *name* as a primary input and return its net."""
        net = self.get_net(name)
        if net.driver is not None:
            raise NetlistError(f"primary input {name!r} is already driven by {net.driver}")
        if name not in self.primary_inputs:
            self.primary_inputs.append(name)
        return net

    def add_output(self, name: str) -> Net:
        """Declare *name* as a primary output and return its net."""
        net = self.get_net(name)
        if name not in self.primary_outputs:
            self.primary_outputs.append(name)
        return net

    # ----------------------------------------------------------------- cells
    def unique_name(self, prefix: str) -> str:
        """Return a cell instance name that is not yet used."""
        while True:
            candidate = f"{prefix}_{self._cell_counter}"
            self._cell_counter += 1
            if candidate not in self.cells:
                return candidate

    def add_cell(
        self,
        cell_type: str,
        inputs: Dict[str, str],
        outputs: Dict[str, str],
        name: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Cell:
        """Instantiate a cell and hook up its pins.

        Parameters
        ----------
        cell_type:
            Library cell name (``"AND2"``, ``"C2"``, ...).
        inputs / outputs:
            Pin name → net name mappings.  Nets are created on demand.
        name:
            Optional explicit instance name; a unique one is generated when
            omitted.
        attrs:
            Optional attributes copied onto the created :class:`Cell`.
        """
        if name is None:
            name = self.unique_name(cell_type.lower())
        if name in self.cells:
            raise NetlistError(f"duplicate cell name {name!r}")
        cell = Cell(name=name, cell_type=cell_type, inputs=dict(inputs), outputs=dict(outputs))
        if attrs:
            cell.attrs.update(attrs)
        for pin, net_name in cell.outputs.items():
            net = self.get_net(net_name)
            if net.driver is not None:
                raise NetlistError(
                    f"net {net_name!r} already driven by {net.driver}; "
                    f"cannot also drive from {name}.{pin}"
                )
            if net_name in self.primary_inputs:
                raise NetlistError(f"cell {name!r} drives primary input {net_name!r}")
            net.driver = (name, pin)
        for pin, net_name in cell.inputs.items():
            net = self.get_net(net_name)
            net.sinks.append((name, pin))
        self.cells[name] = cell
        return cell

    # ------------------------------------------------------------- traversal
    def cell_of_driver(self, net_name: str) -> Optional[Cell]:
        """Return the cell driving *net_name*, or ``None`` for PIs/floating nets."""
        net = self.nets[net_name]
        if net.driver is None:
            return None
        return self.cells[net.driver[0]]

    def fanout_cells(self, net_name: str) -> List[Cell]:
        """Return the cells whose inputs read *net_name*."""
        net = self.nets[net_name]
        return [self.cells[cell_name] for cell_name, _pin in net.sinks]

    def iter_cells(self) -> Iterator[Cell]:
        """Iterate over all cell instances in deterministic insertion order."""
        return iter(self.cells.values())

    def iter_nets(self) -> Iterator[Net]:
        """Iterate over all nets in deterministic insertion order."""
        return iter(self.nets.values())

    def internal_nets(self) -> List[str]:
        """Nets that are neither primary inputs nor primary outputs.

        Returned in net insertion order (deterministic; the HDL emitter's
        wire-declaration order relies on it).
        """
        io = set(self.primary_inputs) | set(self.primary_outputs)
        return [n for n in self.nets if n not in io]

    def topological_order(self) -> List[Cell]:
        """Return cells in topological order (inputs before the cells that read them).

        Sequential cells (those whose library role is a latch/flip-flop, here
        identified structurally by participating in a combinational cycle)
        are handled by breaking cycles at their outputs: a cell that appears
        in a feedback loop is emitted once all *acyclic* predecessors are
        ready.  This mirrors how static timing treats sequential elements as
        path end/start points.
        """
        in_degree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {name: [] for name in self.cells}
        for cell in self.cells.values():
            deg = 0
            for net_name in cell.inputs.values():
                net = self.nets[net_name]
                if net.driver is not None:
                    driver_cell = net.driver[0]
                    if driver_cell != cell.name:
                        dependents[driver_cell].append(cell.name)
                        deg += 1
            in_degree[cell.name] = deg

        ready = sorted([name for name, deg in in_degree.items() if deg == 0])
        order: List[Cell] = []
        seen = set()
        while ready:
            name = ready.pop(0)
            if name in seen:
                continue
            seen.add(name)
            order.append(self.cells[name])
            for dep in dependents[name]:
                in_degree[dep] -= 1
                if in_degree[dep] <= 0 and dep not in seen:
                    ready.append(dep)
        if len(order) != len(self.cells):
            # Cycles (e.g. C-element feedback or cross-coupled structures):
            # append the remaining cells in name order; the event-driven
            # simulator does not rely on a strict ordering, and STA treats
            # these cells as path break points.
            for name in sorted(self.cells):
                if name not in seen:
                    order.append(self.cells[name])
        return order

    # -------------------------------------------------------------- metrics
    def cell_count(self) -> int:
        """Total number of cell instances."""
        return len(self.cells)

    def count_by_type(self) -> Dict[str, int]:
        """Return a histogram of cell types."""
        hist: Dict[str, int] = {}
        for cell in self.cells.values():
            hist[cell.cell_type] = hist.get(cell.cell_type, 0) + 1
        return dict(sorted(hist.items()))

    # ------------------------------------------------------------ validation
    def check_structure(self) -> List[str]:
        """Return a list of structural problems (empty when clean).

        Checks performed:

        * every primary output is driven,
        * every cell input net has a driver or is a primary input,
        * no net is simultaneously a primary input and driven by a cell.
        """
        problems: List[str] = []
        for name in self.primary_outputs:
            net = self.nets[name]
            if net.driver is None and name not in self.primary_inputs:
                problems.append(f"primary output {name!r} is undriven")
        pi = set(self.primary_inputs)
        for cell in self.cells.values():
            for pin, net_name in cell.inputs.items():
                net = self.nets[net_name]
                if net.driver is None and net_name not in pi:
                    problems.append(
                        f"cell {cell.name!r} input {pin!r} reads floating net {net_name!r}"
                    )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.name!r}, cells={len(self.cells)}, nets={len(self.nets)}, "
            f"PI={len(self.primary_inputs)}, PO={len(self.primary_outputs)})"
        )


def merge_netlists(name: str, parts: Sequence[Netlist], expose: Iterable[str] = ()) -> Netlist:
    """Merge several netlists into one flat netlist.

    Nets with the same name are shared (this is how sub-blocks are stitched
    together).  Primary inputs of a part that are driven by another part
    become internal nets; the union of the remaining inputs/outputs becomes
    the merged interface.

    Parameters
    ----------
    name:
        Name of the merged design.
    parts:
        Netlists to merge.  Cell names are prefixed with the part name when
        they would otherwise collide.
    expose:
        Additional net names to force onto the primary-output list (useful
        for observing internal nets such as ``done``).
    """
    merged = Netlist(name)
    for part in parts:
        for cell in part.iter_cells():
            inst_name = cell.name
            if inst_name in merged.cells:
                inst_name = f"{part.name}__{cell.name}"
            merged.add_cell(
                cell.cell_type,
                inputs=dict(cell.inputs),
                outputs=dict(cell.outputs),
                name=inst_name,
                attrs=dict(cell.attrs),
            )
    driven = {n for n, net in merged.nets.items() if net.driver is not None}
    for part in parts:
        for pi in part.primary_inputs:
            if pi not in driven and pi not in merged.primary_inputs:
                merged.primary_inputs.append(pi)
                merged.get_net(pi)
    for part in parts:
        for po in part.primary_outputs:
            consumed_internally = False
            net = merged.get_net(po)
            if net.sinks:
                consumed_internally = True
            if not consumed_internally and po not in merged.primary_outputs:
                merged.primary_outputs.append(po)
    for extra in expose:
        if extra not in merged.primary_outputs:
            merged.primary_outputs.append(extra)
            merged.get_net(extra)
    return merged
