"""Convenience DSL for building gate-level netlists.

The datapath generators in :mod:`repro.datapath` describe circuits at the
level of the paper's Figure 2 — OR masks, AND trees, half/full adders, the
bit-pair comparator stages.  :class:`LogicBuilder` keeps that code readable
by hiding pin-name bookkeeping: every operator takes input net names and
returns the output net name.

Example
-------
>>> from repro.circuits.builder import LogicBuilder
>>> b = LogicBuilder("demo")
>>> a, c = b.input("a"), b.input("c")
>>> y = b.and_(a, c)
>>> b.output("y", y)
>>> sorted(b.netlist.count_by_type().items())
[('AND2', 1)]
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .gates import gate_spec
from .netlist import Netlist, NetlistError


class LogicBuilder:
    """Structural netlist builder with gate-level helper operators.

    Parameters
    ----------
    name:
        Name of the netlist being built.
    netlist:
        Optionally build into an existing netlist (used when stitching
        sub-blocks together).
    prefix:
        Optional prefix applied to every auto-generated net name, so that
        several builders can safely share one netlist.
    """

    def __init__(self, name: str, netlist: Optional[Netlist] = None, prefix: str = "") -> None:
        self.netlist = netlist if netlist is not None else Netlist(name)
        self.prefix = prefix
        self._net_counter = 0

    # --------------------------------------------------------------- plumbing
    def fresh_net(self, hint: str = "n") -> str:
        """Return a new unique internal net name."""
        while True:
            name = f"{self.prefix}{hint}_{self._net_counter}"
            self._net_counter += 1
            if not self.netlist.has_net(name):
                return name

    def input(self, name: str) -> str:
        """Declare a primary input and return its net name."""
        self.netlist.add_input(name)
        return name

    def inputs(self, names: Iterable[str]) -> List[str]:
        """Declare several primary inputs."""
        return [self.input(n) for n in names]

    def output(self, name: str, net: Optional[str] = None) -> str:
        """Declare *name* as a primary output.

        When *net* is given and differs from *name*, a buffer-free alias is
        not possible in a structural netlist, so a ``BUF`` cell is inserted
        to drive the output net from *net*.
        """
        if net is None or net == name:
            self.netlist.add_output(name)
            return name
        self.netlist.add_output(name)
        self.cell("BUF", [net], output=name)
        return name

    def cell(
        self,
        cell_type: str,
        input_nets: Sequence[str],
        output: Optional[str] = None,
        name: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> str:
        """Instantiate *cell_type* on *input_nets* and return the output net.

        Input nets are assigned to the cell's pins in declaration order.
        Only single-output cells are supported by this helper; multi-output
        cells should use :meth:`Netlist.add_cell` directly.
        """
        spec = gate_spec(cell_type)
        if len(spec.output_pins) != 1:
            raise NetlistError(f"cell {cell_type} has multiple outputs; use Netlist.add_cell")
        if len(input_nets) != len(spec.input_pins):
            raise NetlistError(
                f"cell {cell_type} expects {len(spec.input_pins)} inputs, got {len(input_nets)}"
            )
        out = output if output is not None else self.fresh_net(cell_type.lower())
        self.netlist.add_cell(
            cell_type,
            inputs=dict(zip(spec.input_pins, input_nets)),
            outputs={spec.output_pins[0]: out},
            name=name,
            attrs=attrs,
        )
        return out

    # -------------------------------------------------------------- operators
    def not_(self, a: str, output: Optional[str] = None) -> str:
        """Inverter."""
        return self.cell("INV", [a], output=output)

    def buf(self, a: str, output: Optional[str] = None) -> str:
        """Buffer."""
        return self.cell("BUF", [a], output=output)

    def and_(self, *nets: str, output: Optional[str] = None) -> str:
        """AND of two to four nets (wider fan-in uses :meth:`and_tree`)."""
        return self._narrow_gate("AND", nets, output)

    def or_(self, *nets: str, output: Optional[str] = None) -> str:
        """OR of two to four nets (wider fan-in uses :meth:`or_tree`)."""
        return self._narrow_gate("OR", nets, output)

    def nand(self, *nets: str, output: Optional[str] = None) -> str:
        """NAND of two to four nets."""
        return self._narrow_gate("NAND", nets, output)

    def nor(self, *nets: str, output: Optional[str] = None) -> str:
        """NOR of two to four nets."""
        return self._narrow_gate("NOR", nets, output)

    def xor(self, a: str, b: str, output: Optional[str] = None) -> str:
        """Two-input XOR (non-unate: single-rail baseline only)."""
        return self.cell("XOR2", [a, b], output=output)

    def xnor(self, a: str, b: str, output: Optional[str] = None) -> str:
        """Two-input XNOR (non-unate: single-rail baseline only)."""
        return self.cell("XNOR2", [a, b], output=output)

    def aoi21(self, a1: str, a2: str, b: str, output: Optional[str] = None) -> str:
        """AND-OR-INVERT: ``Y = NOT((a1 & a2) | b)``."""
        return self.cell("AOI21", [a1, a2, b], output=output)

    def aoi22(self, a1: str, a2: str, b1: str, b2: str, output: Optional[str] = None) -> str:
        """AND-OR-INVERT: ``Y = NOT((a1 & a2) | (b1 & b2))``."""
        return self.cell("AOI22", [a1, a2, b1, b2], output=output)

    def oai21(self, a1: str, a2: str, b: str, output: Optional[str] = None) -> str:
        """OR-AND-INVERT: ``Y = NOT((a1 | a2) & b)``."""
        return self.cell("OAI21", [a1, a2, b], output=output)

    def oai22(self, a1: str, a2: str, b1: str, b2: str, output: Optional[str] = None) -> str:
        """OR-AND-INVERT: ``Y = NOT((a1 | a2) & (b1 | b2))``."""
        return self.cell("OAI22", [a1, a2, b1, b2], output=output)

    def maj3(self, a: str, b: str, c: str, output: Optional[str] = None) -> str:
        """Three-input majority gate (carry logic)."""
        return self.cell("MAJ3", [a, b, c], output=output)

    def c_element(self, *nets: str, output: Optional[str] = None, name: Optional[str] = None) -> str:
        """Muller C-element of two or three inputs (dual-rail latch)."""
        if len(nets) not in (2, 3):
            raise NetlistError(f"C-element supports 2 or 3 inputs, got {len(nets)}")
        return self.cell(f"C{len(nets)}", list(nets), output=output, name=name)

    def dff(self, d: str, ck: str, output: Optional[str] = None, name: Optional[str] = None) -> str:
        """Positive-edge D flip-flop (synchronous baseline register)."""
        out = output if output is not None else self.fresh_net("q")
        self.netlist.add_cell(
            "DFF",
            inputs={"D": d, "CK": ck},
            outputs={"Q": out},
            name=name,
        )
        return out

    def tie(self, value: int, output: Optional[str] = None) -> str:
        """Constant 0 or 1 net."""
        return self.cell(f"TIE{int(bool(value))}", [], output=output)

    # ----------------------------------------------------------------- trees
    def _narrow_gate(self, base: str, nets: Sequence[str], output: Optional[str]) -> str:
        if len(nets) < 2:
            raise NetlistError(f"{base} gate needs at least two inputs")
        if len(nets) > 4:
            if base == "AND":
                return self.and_tree(nets, output=output)
            if base == "OR":
                return self.or_tree(nets, output=output)
            raise NetlistError(f"{base} fan-in {len(nets)} unsupported; build a tree")
        return self.cell(f"{base}{len(nets)}", list(nets), output=output)

    def _reduce_tree(self, base: str, nets: Sequence[str], arity: int, output: Optional[str]) -> str:
        """Balanced reduction tree of *base* gates over *nets*."""
        level = list(nets)
        if len(level) == 1:
            if output is not None:
                return self.buf(level[0], output=output)
            return level[0]
        while len(level) > arity:
            nxt: List[str] = []
            for i in range(0, len(level), arity):
                chunk = level[i: i + arity]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    nxt.append(self.cell(f"{base}{len(chunk)}", chunk))
            level = nxt
        return self.cell(f"{base}{len(level)}", level, output=output)

    def and_tree(self, nets: Sequence[str], arity: int = 4, output: Optional[str] = None) -> str:
        """Balanced AND tree (used to aggregate partial clause values)."""
        return self._reduce_tree("AND", nets, arity, output)

    def or_tree(self, nets: Sequence[str], arity: int = 4, output: Optional[str] = None) -> str:
        """Balanced OR tree (used by completion detection)."""
        return self._reduce_tree("OR", nets, arity, output)

    def c_tree(self, nets: Sequence[str], output: Optional[str] = None) -> str:
        """Balanced C-element tree (full completion detection aggregator)."""
        level = list(nets)
        if len(level) == 1:
            if output is not None:
                return self.buf(level[0], output=output)
            return level[0]
        while len(level) > 3:
            nxt: List[str] = []
            for i in range(0, len(level), 2):
                chunk = level[i: i + 2]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    nxt.append(self.c_element(*chunk))
            level = nxt
        return self.c_element(*level, output=output)

    # ------------------------------------------------------------------ buses
    def bus(self, name: str, width: int, as_input: bool = False) -> List[str]:
        """Return net names ``name[0] … name[width-1]`` (optionally as PIs)."""
        nets = [f"{name}[{i}]" for i in range(width)]
        if as_input:
            for n in nets:
                self.input(n)
        return nets
