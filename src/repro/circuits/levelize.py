"""Netlist levelization for single-pass (vectorized) evaluation.

The event-driven simulator tolerates any cell ordering because it reacts to
net changes; a *vectorized* functional backend instead wants the cells
arranged into **levels**: level 0 cells read only primary inputs (or are
constants), level *k* cells read only nets driven by levels ``< k``.  A
whole batch of input vectors can then be pushed through the netlist with one
NumPy evaluation per cell, visiting each cell exactly once.

Levelization is only defined for acyclic netlists.  Self-loops (a cell
reading its own output, as cross-coupled structures do) and combinational
cycles raise :class:`~repro.circuits.netlist.NetlistError` — such designs
must use the event-driven backend.  C-elements whose inputs all come from
upstream levels (the dual-rail input-latch idiom, where both C inputs are
tied to the same rail) levelize fine and evaluate deterministically.
"""

from __future__ import annotations

from typing import Dict, List

from .netlist import Cell, Netlist, NetlistError


def levelize(netlist: Netlist) -> List[List[Cell]]:
    """Partition *netlist*'s cells into topological levels.

    Returns a list of levels; each level is a list of cells (sorted by name
    for determinism) whose input nets are all primary inputs or outputs of
    earlier levels.  Raises :class:`NetlistError` when the netlist contains
    a combinational cycle or a self-loop and therefore cannot be levelized.
    """
    in_degree: Dict[str, int] = {}
    dependents: Dict[str, List[str]] = {name: [] for name in netlist.cells}
    for cell in netlist.cells.values():
        deg = 0
        for net_name in cell.inputs.values():
            net = netlist.nets[net_name]
            if net.driver is None:
                continue
            driver_cell = net.driver[0]
            if driver_cell == cell.name:
                raise NetlistError(
                    f"cell {cell.name!r} reads its own output net {net_name!r}; "
                    "self-loops cannot be levelized"
                )
            dependents[driver_cell].append(cell.name)
            deg += 1
        in_degree[cell.name] = deg

    current = sorted(name for name, deg in in_degree.items() if deg == 0)
    levels: List[List[Cell]] = []
    emitted = 0
    while current:
        levels.append([netlist.cells[name] for name in current])
        emitted += len(current)
        ready: List[str] = []
        for name in current:
            for dep in dependents[name]:
                in_degree[dep] -= 1
                if in_degree[dep] == 0:
                    ready.append(dep)
        current = sorted(set(ready))
    if emitted != len(netlist.cells):
        stuck = sorted(name for name, deg in in_degree.items() if deg > 0)
        raise NetlistError(
            f"netlist {netlist.name!r} contains a combinational cycle through "
            f"{len(stuck)} cell(s) (e.g. {stuck[:4]}); it cannot be levelized"
        )
    return levels


def combinational_depth(netlist: Netlist) -> int:
    """Number of levels of :func:`levelize` (0 for an empty netlist)."""
    return len(levelize(netlist))
