"""Design-rule checks for single-rail and dual-rail netlists.

The paper states six requirements for correct operation of the self-timed
circuit (Section III).  The ones that are *structural* properties of the
netlist are checked here:

* Requirement 2 (monotonic switching within the circuit) requires the
  dual-rail netlist to be built solely from unate gates —
  :func:`check_unate_only`.
* Completion detection / latching structure: every dual-rail primary input
  pair should be latched by C-elements when the datapath provides its own
  input latches — :func:`find_c_elements`.
* General structural sanity (no floating nets, no multiply-driven nets) —
  :func:`check_structure`.

The *dynamic* requirements (spacer/valid alternation on the primary inputs,
grace periods) are monitored during simulation by
:mod:`repro.sim.monitors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .gates import is_sequential, is_unate
from .library import CellLibrary
from .netlist import Netlist


@dataclass
class ValidationReport:
    """Aggregated result of the structural design-rule checks.

    Attributes
    ----------
    errors:
        Rule violations that make the circuit incorrect.
    warnings:
        Suspicious constructs that do not necessarily break correctness.
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when no errors were found."""
        return not self.errors

    def extend(self, other: "ValidationReport") -> None:
        """Merge another report into this one."""
        self.errors.extend(other.errors)
        self.warnings.extend(other.warnings)


def check_structure(netlist: Netlist) -> ValidationReport:
    """Check for floating nets and undriven primary outputs."""
    report = ValidationReport()
    report.errors.extend(netlist.check_structure())
    return report


def check_connectivity(netlist: Netlist) -> ValidationReport:
    """Reject dangling and multiply-driven nets with actionable messages.

    Checks performed (beyond :func:`check_structure`):

    * **dangling nets** — a net with neither driver nor sinks that is not a
      primary input or output serves no purpose and usually indicates a
      generator bug (a signal built but never connected); such netlists
      previously reached the simulator silently and now fail validation and
      HDL export;
    * **multiply-driven nets** — every net must be driven by at most one
      cell output pin.  :meth:`~repro.circuits.netlist.Netlist.add_cell`
      enforces this during construction, but netlists assembled or mutated
      by hand (or parsed from external sources) can violate it;
    * **driver bookkeeping** — each net's recorded ``driver`` must agree
      with the cell that actually lists the net on an output pin, so stale
      manual edits are caught instead of confusing the simulator.
    """
    report = ValidationReport()
    io = set(netlist.primary_inputs) | set(netlist.primary_outputs)
    for net in netlist.iter_nets():
        if net.driver is None and not net.sinks and net.name not in io:
            report.errors.append(
                f"net {net.name!r} is dangling (no driver, no sinks, not a port); "
                "remove it or connect it before simulation/export"
            )
    drivers: Dict[str, List[str]] = {}
    for cell in netlist.iter_cells():
        for pin, net_name in cell.outputs.items():
            drivers.setdefault(net_name, []).append(f"{cell.name}.{pin}")
    for net_name, pins in drivers.items():
        if len(pins) > 1:
            report.errors.append(
                f"net {net_name!r} is multiply driven by {pins}; "
                "a net must have exactly one driver"
            )
    for net in netlist.iter_nets():
        recorded = net.driver
        actual = drivers.get(net.name, [])
        if recorded is not None:
            expected = f"{recorded[0]}.{recorded[1]}"
            if expected not in actual:
                report.errors.append(
                    f"net {net.name!r} records driver {expected} but no cell "
                    "drives it from that pin; the netlist was mutated inconsistently"
                )
        elif actual and net.name not in netlist.primary_inputs:
            report.errors.append(
                f"net {net.name!r} is driven by {actual[0]} but its driver "
                "field is unset; rebuild the net via Netlist.add_cell"
            )
    return report


def check_unate_only(netlist: Netlist) -> ValidationReport:
    """Check Requirement 2: the netlist contains no non-unate cells.

    Non-unate gates (XOR/XNOR) can glitch on monotonic input transitions,
    which would break the indication properties of the dual-rail encoding.
    """
    report = ValidationReport()
    for cell in netlist.iter_cells():
        if not is_unate(cell.cell_type):
            report.errors.append(
                f"cell {cell.name!r} ({cell.cell_type}) is non-unate; "
                "dual-rail netlists must use unate gates only (Requirement 2)"
            )
    return report


def check_library_mappable(netlist: Netlist, library: CellLibrary) -> ValidationReport:
    """Check that every cell type used by *netlist* exists in *library*.

    The FULL DIFFUSION library, for instance, has no AOI32 cell: netlists
    targeting it must have been decomposed by
    :func:`repro.synth.mapping.map_to_library` first.
    """
    report = ValidationReport()
    for cell in netlist.iter_cells():
        if not library.has_cell(cell.cell_type):
            report.errors.append(
                f"cell {cell.name!r} uses type {cell.cell_type!r} which is not "
                f"available in library {library.name!r}"
            )
    return report


def find_c_elements(netlist: Netlist) -> List[str]:
    """Return the instance names of all C-element cells (dual-rail latches)."""
    return [c.name for c in netlist.iter_cells() if c.cell_type.startswith("C") and
            is_sequential(c.cell_type)]


def find_flip_flops(netlist: Netlist) -> List[str]:
    """Return the instance names of all flip-flops (single-rail registers)."""
    return [c.name for c in netlist.iter_cells() if c.cell_type == "DFF"]


def check_no_combinational_loops(netlist: Netlist) -> ValidationReport:
    """Detect combinational feedback loops (excluding sequential cells).

    Loops through C-elements or flip-flops are legal (they are the state
    elements); loops through purely combinational gates are reported as
    errors because neither the simulator's delta-cycle model nor static
    timing analysis can give them a meaningful interpretation.
    """
    report = ValidationReport()
    # Build a graph over combinational cells only.
    adj: Dict[str, List[str]] = {}
    for cell in netlist.iter_cells():
        if is_sequential(cell.cell_type):
            continue
        adj.setdefault(cell.name, [])
        for net_name in cell.outputs.values():
            for sink in netlist.fanout_cells(net_name):
                if not is_sequential(sink.cell_type):
                    adj[cell.name].append(sink.name)

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in adj}

    def dfs(start: str) -> bool:
        stack = [(start, iter(adj[start]))]
        colour[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in colour:
                    continue
                if colour[nxt] == GREY:
                    return True
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(adj[nxt])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
        return False

    for name in adj:
        if colour[name] == WHITE:
            if dfs(name):
                report.errors.append(
                    f"combinational feedback loop detected involving cell {name!r}"
                )
                break
    return report


def validate_dual_rail_netlist(netlist: Netlist, library: CellLibrary = None) -> ValidationReport:
    """Run every structural check relevant to a dual-rail netlist."""
    report = ValidationReport()
    report.extend(check_structure(netlist))
    report.extend(check_connectivity(netlist))
    report.extend(check_unate_only(netlist))
    report.extend(check_no_combinational_loops(netlist))
    if library is not None:
        report.extend(check_library_mappable(netlist, library))
    return report


def validate_single_rail_netlist(netlist: Netlist, library: CellLibrary = None) -> ValidationReport:
    """Run the structural checks relevant to the synchronous baseline."""
    report = ValidationReport()
    report.extend(check_structure(netlist))
    report.extend(check_connectivity(netlist))
    report.extend(check_no_combinational_loops(netlist))
    if library is not None:
        report.extend(check_library_mappable(netlist, library))
    return report
