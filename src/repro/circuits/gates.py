"""Behavioural models of the standard-cell gates used by the datapaths.

Every cell type that can appear in a netlist has a :class:`GateSpec`
describing

* its pin names,
* its Boolean behaviour under three-valued logic (``0``, ``1`` and ``None``
  for unknown/``X``),
* whether it is *unate* (required inside dual-rail logic to guarantee
  monotonic switching, Requirement 2 of the paper),
* whether it is logically *inverting* (negative gate), which is what flips
  the spacer polarity of a dual-rail signal path, and
* whether it is *state holding* (the Muller C-element used as the dual-rail
  latch, and the D flip-flop used by the synchronous baseline).

Three-valued evaluation is pessimistic but exact for controlling values: an
AND gate with one input at ``0`` outputs ``0`` even if the other input is
unknown.  This is what allows the simulator to model *early propagation*
faithfully — a dual-rail OR-rail can become valid while its sibling inputs
are still at spacer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

LogicValue = Optional[int]  # 0, 1, or None for unknown (X)


def _and(values: Sequence[LogicValue]) -> LogicValue:
    """Three-valued AND: 0 dominates, all-1 gives 1, otherwise unknown."""
    if any(v == 0 for v in values):
        return 0
    if all(v == 1 for v in values):
        return 1
    return None


def _or(values: Sequence[LogicValue]) -> LogicValue:
    """Three-valued OR: 1 dominates, all-0 gives 0, otherwise unknown."""
    if any(v == 1 for v in values):
        return 1
    if all(v == 0 for v in values):
        return 0
    return None


def _not(value: LogicValue) -> LogicValue:
    """Three-valued NOT."""
    if value is None:
        return None
    return 1 - value


def _xor(values: Sequence[LogicValue]) -> LogicValue:
    """Three-valued XOR: unknown if any input is unknown."""
    if any(v is None for v in values):
        return None
    acc = 0
    for v in values:
        acc ^= int(v)
    return acc


def _maj3(values: Sequence[LogicValue]) -> LogicValue:
    """Three-valued 3-input majority with controlling-value optimisation."""
    ones = sum(1 for v in values if v == 1)
    zeros = sum(1 for v in values if v == 0)
    if ones >= 2:
        return 1
    if zeros >= 2:
        return 0
    return None


@dataclass(frozen=True)
class GateSpec:
    """Static description of a library cell's behaviour.

    Attributes
    ----------
    name:
        Cell type name as used in netlists and libraries.
    input_pins / output_pins:
        Ordered pin names.
    unate:
        ``True`` when the cell is unate in every input (monotonic).  Dual-rail
        netlists must use unate cells only (paper Requirement 2).
    inverting:
        ``True`` for negative gates (INV, NAND, NOR, AOI, OAI).  Used by the
        spacer-polarity analysis: an odd number of inversions on a dual-rail
        path flips the spacer from all-zero to all-one.
    sequential:
        ``True`` for state-holding cells (C-elements, flip-flops).
    evaluate:
        ``evaluate(inputs, state) -> outputs`` where *inputs* maps pin name to
        :data:`LogicValue`, *state* is the previous output value for
        sequential cells (``None`` otherwise), and the result maps output pin
        name to :data:`LogicValue`.
    """

    name: str
    input_pins: Tuple[str, ...]
    output_pins: Tuple[str, ...]
    unate: bool
    inverting: bool
    sequential: bool
    evaluate: Callable[[Dict[str, LogicValue], LogicValue], Dict[str, LogicValue]]

    @property
    def num_inputs(self) -> int:
        return len(self.input_pins)


def _simple(name: str, pins: Sequence[str], func, unate: bool, inverting: bool) -> GateSpec:
    """Build a combinational single-output :class:`GateSpec` from *func*."""

    pins = tuple(pins)

    def evaluate(inputs: Dict[str, LogicValue], state: LogicValue) -> Dict[str, LogicValue]:
        values = [inputs.get(p) for p in pins]
        return {"Y": func(values)}

    return GateSpec(
        name=name,
        input_pins=pins,
        output_pins=("Y",),
        unate=unate,
        inverting=inverting,
        sequential=False,
        evaluate=evaluate,
    )


def _input_names(n: int) -> List[str]:
    return [chr(ord("A") + i) for i in range(n)]


def _make_and(n: int) -> GateSpec:
    return _simple(f"AND{n}", _input_names(n), _and, unate=True, inverting=False)


def _make_or(n: int) -> GateSpec:
    return _simple(f"OR{n}", _input_names(n), _or, unate=True, inverting=False)


def _make_nand(n: int) -> GateSpec:
    return _simple(f"NAND{n}", _input_names(n), lambda v: _not(_and(v)), unate=True, inverting=True)


def _make_nor(n: int) -> GateSpec:
    return _simple(f"NOR{n}", _input_names(n), lambda v: _not(_or(v)), unate=True, inverting=True)


def _make_aoi(groups: Sequence[int]) -> GateSpec:
    """AND-OR-INVERT cell, e.g. AOI22: Y = NOT((A1&A2) | (B1&B2)).

    ``groups`` lists the width of each AND leg; a width of 1 is a direct OR
    input (AOI21 has groups ``(2, 1)``).
    """
    pins: List[str] = []
    for gi, width in enumerate(groups):
        letter = chr(ord("A") + gi)
        if width == 1:
            pins.append(letter)
        else:
            pins.extend(f"{letter}{k + 1}" for k in range(width))
    name = "AOI" + "".join(str(w) for w in groups)

    def func(values: Sequence[LogicValue]) -> LogicValue:
        terms: List[LogicValue] = []
        idx = 0
        for width in groups:
            terms.append(_and(values[idx: idx + width]))
            idx += width
        return _not(_or(terms))

    return _simple(name, pins, func, unate=True, inverting=True)


def _make_ao(groups: Sequence[int]) -> GateSpec:
    """Non-inverting AND-OR cell, e.g. AO22: Y = (A1&A2) | (B1&B2).

    These complex cells are what the paper's dual-rail half-adder sum rails
    map onto (two complex gates per half-adder, no spacer inversion).
    """
    pins: List[str] = []
    for gi, width in enumerate(groups):
        letter = chr(ord("A") + gi)
        if width == 1:
            pins.append(letter)
        else:
            pins.extend(f"{letter}{k + 1}" for k in range(width))
    name = "AO" + "".join(str(w) for w in groups)

    def func(values: Sequence[LogicValue]) -> LogicValue:
        terms: List[LogicValue] = []
        idx = 0
        for width in groups:
            terms.append(_and(values[idx: idx + width]))
            idx += width
        return _or(terms)

    return _simple(name, pins, func, unate=True, inverting=False)


def _make_oa(groups: Sequence[int]) -> GateSpec:
    """Non-inverting OR-AND cell, e.g. OA22: Y = (A1|A2) & (B1|B2)."""
    pins: List[str] = []
    for gi, width in enumerate(groups):
        letter = chr(ord("A") + gi)
        if width == 1:
            pins.append(letter)
        else:
            pins.extend(f"{letter}{k + 1}" for k in range(width))
    name = "OA" + "".join(str(w) for w in groups)

    def func(values: Sequence[LogicValue]) -> LogicValue:
        terms: List[LogicValue] = []
        idx = 0
        for width in groups:
            terms.append(_or(values[idx: idx + width]))
            idx += width
        return _and(terms)

    return _simple(name, pins, func, unate=True, inverting=False)


def _make_oai(groups: Sequence[int]) -> GateSpec:
    """OR-AND-INVERT cell, e.g. OAI22: Y = NOT((A1|A2) & (B1|B2))."""
    pins: List[str] = []
    for gi, width in enumerate(groups):
        letter = chr(ord("A") + gi)
        if width == 1:
            pins.append(letter)
        else:
            pins.extend(f"{letter}{k + 1}" for k in range(width))
    name = "OAI" + "".join(str(w) for w in groups)

    def func(values: Sequence[LogicValue]) -> LogicValue:
        terms: List[LogicValue] = []
        idx = 0
        for width in groups:
            terms.append(_or(values[idx: idx + width]))
            idx += width
        return _not(_and(terms))

    return _simple(name, pins, func, unate=True, inverting=True)


def _make_c_element(n: int) -> GateSpec:
    """Muller C-element with *n* inputs.

    The output goes high only when all inputs are high, low only when all
    inputs are low, and otherwise holds its previous value.  The dual-rail
    datapath uses C-elements as its input latches (the paper counts their
    area as "sequential area" for the dual-rail design).
    """
    pins = tuple(_input_names(n))

    def evaluate(inputs: Dict[str, LogicValue], state: LogicValue) -> Dict[str, LogicValue]:
        values = [inputs.get(p) for p in pins]
        if all(v == 1 for v in values):
            return {"Y": 1}
        if all(v == 0 for v in values):
            return {"Y": 0}
        return {"Y": state}

    return GateSpec(
        name=f"C{n}",
        input_pins=pins,
        output_pins=("Y",),
        unate=True,
        inverting=False,
        sequential=True,
        evaluate=evaluate,
    )


def _make_dff() -> GateSpec:
    """Positive-edge D flip-flop used by the synchronous single-rail baseline.

    The event-driven simulator treats flip-flops specially (it samples D on
    the rising edge of CK); the behavioural function here implements the
    level view used by combinational evaluation between edges (output holds
    state).
    """
    def evaluate(inputs: Dict[str, LogicValue], state: LogicValue) -> Dict[str, LogicValue]:
        return {"Q": state}

    return GateSpec(
        name="DFF",
        input_pins=("D", "CK"),
        output_pins=("Q",),
        unate=True,
        inverting=False,
        sequential=True,
        evaluate=evaluate,
    )


def _make_tie(value: int) -> GateSpec:
    def evaluate(inputs: Dict[str, LogicValue], state: LogicValue) -> Dict[str, LogicValue]:
        return {"Y": value}

    return GateSpec(
        name=f"TIE{value}",
        input_pins=(),
        output_pins=("Y",),
        unate=True,
        inverting=False,
        sequential=False,
        evaluate=evaluate,
    )


def _build_registry() -> Dict[str, GateSpec]:
    specs: List[GateSpec] = [
        _simple("INV", ["A"], lambda v: _not(v[0]), unate=True, inverting=True),
        _simple("BUF", ["A"], lambda v: v[0], unate=True, inverting=False),
        _make_tie(0),
        _make_tie(1),
        _make_dff(),
    ]
    for n in (2, 3, 4, 8):
        specs.append(_make_and(n))
        specs.append(_make_or(n))
    for n in (2, 3, 4):
        specs.append(_make_nand(n))
        specs.append(_make_nor(n))
    specs.append(_make_aoi((2, 1)))
    specs.append(_make_aoi((2, 2)))
    specs.append(_make_aoi((3, 2)))
    specs.append(_make_oai((2, 1)))
    specs.append(_make_oai((2, 2)))
    specs.append(_make_oai((3, 2)))
    specs.append(_make_ao((2, 1)))
    specs.append(_make_ao((2, 2)))
    specs.append(_make_oa((2, 1)))
    specs.append(_make_oa((2, 2)))
    specs.append(_simple("MAJ3", _input_names(3), _maj3, unate=True, inverting=False))
    # Non-unate cells: permitted only in the single-rail baseline library
    # (paper Section III excludes them from the dual-rail netlist).
    specs.append(_simple("XOR2", _input_names(2), _xor, unate=False, inverting=False))
    specs.append(_simple("XNOR2", _input_names(2), lambda v: _not(_xor(v)), unate=False, inverting=True))
    for n in (2, 3):
        specs.append(_make_c_element(n))
    return {spec.name: spec for spec in specs}


#: Registry of every supported cell type, keyed by cell-type name.
GATE_REGISTRY: Dict[str, GateSpec] = _build_registry()


def gate_spec(cell_type: str) -> GateSpec:
    """Return the :class:`GateSpec` for *cell_type*.

    Raises
    ------
    KeyError
        If the cell type is not in :data:`GATE_REGISTRY`.
    """
    try:
        return GATE_REGISTRY[cell_type]
    except KeyError:
        raise KeyError(f"unknown cell type {cell_type!r}; known: {sorted(GATE_REGISTRY)}")


def is_unate(cell_type: str) -> bool:
    """``True`` when *cell_type* is a unate (monotonic) cell."""
    return gate_spec(cell_type).unate


def is_inverting(cell_type: str) -> bool:
    """``True`` when *cell_type* is a negative (inverting) gate."""
    return gate_spec(cell_type).inverting


def is_sequential(cell_type: str) -> bool:
    """``True`` when *cell_type* is a state-holding cell (C-element, DFF)."""
    return gate_spec(cell_type).sequential


def evaluate_gate(
    cell_type: str, inputs: Dict[str, LogicValue], state: LogicValue = None
) -> Dict[str, LogicValue]:
    """Evaluate a gate's behaviour.

    Convenience wrapper around ``gate_spec(cell_type).evaluate``.
    """
    return gate_spec(cell_type).evaluate(inputs, state)
