"""Content-hash keyed on-disk store for evaluated design points.

A design point is a pure function of *what was asked* (the spec and the
sweep settings), *what it was asked of* (the library characterisation and
the datapath/measurement code), and *how it was measured* (the backend).
:func:`point_key` hashes exactly those ingredients, so a stored result is
served again **only** while every one of them is unchanged:

* edit a cell's delay or the voltage model → the library fingerprint moves;
* change the datapath construction or the measurement semantics → bump
  :data:`EVALUATOR_VERSION` (netlist generation is deterministic in the
  spec, so the version constant is the code-change ingredient);
* change any grid axis value or sweep setting → the spec/settings hash moves.

Entries are one JSON file per key under the store directory (LiteX-style
build caching: re-running a sweep touches only new or invalidated points).
Corrupt or tampered entries — unparsable JSON, missing fields, a record
whose own key does not match its filename — are treated as misses and
deleted, so a damaged store heals itself on the next sweep.  Self-healing
is *not* silent: every corrupt entry increments the
``dse_store_corrupt_total`` metric and emits a ``store.corrupt`` warning
span, so a store that keeps healing (bad disk, two incompatible writers)
is visible in the same telemetry as everything else.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from repro.circuits.library import CellLibrary, library_fingerprint
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "EVALUATOR_VERSION",
    "ResultStore",
    "library_fingerprint",  # canonical home: repro.circuits.library
    "point_key",
]

#: Bump when datapath construction, mapping or measurement semantics change
#: in a way that alters what a stored DesignPoint would contain.
EVALUATOR_VERSION = 1

_STORE_SUFFIX = ".json"


def point_key(
    spec,
    settings,
    library: CellLibrary,
    backend: str,
    evaluator_version: int = EVALUATOR_VERSION,
    library_digest: Optional[str] = None,
    timing_backend: str = "event",
) -> str:
    """The content hash a design point is stored under.

    Parameters are duck-typed dataclasses (:class:`~repro.explore.grid.DesignPointSpec`
    and :class:`~repro.explore.evaluate.EvaluationSettings`) so the store
    module stays import-light; any field change in either moves the key.
    *library_digest* lets sweeps amortize :func:`library_fingerprint` over
    many points of the same library.  *timing_backend* joins the key only
    when it departs from the event default, so pre-existing stores keep
    serving event-timed points unchanged.
    """
    payload = {
        "spec": asdict(spec),
        "settings": asdict(settings),
        "library": (
            library_digest if library_digest is not None
            else library_fingerprint(library)
        ),
        "backend": backend,
        "evaluator_version": evaluator_version,
    }
    if timing_backend != "event":
        payload["timing_backend"] = timing_backend
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ResultStore:
    """One-file-per-point JSON store with self-healing corrupt-entry handling.

    Parameters
    ----------
    directory:
        Store root; created on first use.  Safe to delete wholesale — it is
        a cache, never the source of truth.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        registry = _metrics.default_registry()
        self._hits_metric = registry.counter(
            "store_cache_hits", "ResultStore lookups served from disk."
        )
        self._misses_metric = registry.counter(
            "store_cache_misses", "ResultStore lookups that forced evaluation."
        )
        self._corrupt_metric = registry.counter(
            "dse_store_corrupt_total",
            "ResultStore entries that failed validation and were healed.",
        )

    # ------------------------------------------------------------- internals
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_STORE_SUFFIX}"

    # ------------------------------------------------------------------- API
    def get(self, key: str):
        """The stored :class:`~repro.explore.evaluate.DesignPoint` or ``None``.

        Any malformed entry (bad JSON, wrong schema, key mismatch) counts as
        a miss, is deleted, and will simply be re-evaluated by the caller —
        loudly: the heal increments ``dse_store_corrupt_total`` and emits a
        ``store.corrupt`` warning span naming the key and the defect.
        """
        from .evaluate import DesignPoint  # local: avoids an import cycle

        path = self._path(key)
        if not path.exists():
            self.misses += 1
            self._misses_metric.inc()
            return None
        try:
            record = json.loads(path.read_text())
            if not isinstance(record, dict):
                raise ValueError("stored entry is not a JSON object")
            if record.get("key") != key:
                raise ValueError("stored key does not match filename")
            point = DesignPoint.from_dict(record["point"])
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as err:
            self.corrupt += 1
            self.misses += 1
            self._misses_metric.inc()
            self._corrupt_metric.inc()
            with _trace.span(
                "store.corrupt", severity="warning", key=key, error=repr(err)
            ):
                pass
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self._hits_metric.inc()
        return point

    def put(self, key: str, point) -> Path:
        """Persist *point* under *key*; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        record = {
            "key": key,
            "evaluator_version": EVALUATOR_VERSION,
            "point": point.to_dict(),
        }
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob(f"*{_STORE_SUFFIX}"))

    def entry_digests(self) -> dict:
        """``{key: sha256-of-entry-bytes}`` for every entry on disk.

        The byte-identity fingerprint the sharding-determinism and
        fault-injection tests compare: two stores are interchangeable
        exactly when these mappings are equal (entry serialization is
        deterministic, so equal points mean equal bytes).
        """
        if not self.directory.exists():
            return {}
        return {
            path.stem: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in sorted(self.directory.glob(f"*{_STORE_SUFFIX}"))
        }

    def stats(self) -> dict:
        """Hit/miss/corrupt counters for reports and ``BENCH_dse.json``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
        }
