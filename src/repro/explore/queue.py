"""Distributed, crash-resumable work queue over the content-hash result store.

The sweep evaluator (:func:`repro.explore.evaluate.run_sweep`) walks a grid
as one in-process list — fine for the 72-point smoke grid, hopeless for the
declared full grids (thousands of points) and fragile besides: a crash at
point 900 loses the run.  This module turns the
:class:`~repro.explore.store.ResultStore` directory into a *coordination
substrate* shared by any number of worker processes (or hosts mounting the
same directory):

* **Manifest** — :func:`write_manifest` freezes the expanded grid into
  ``<store>/queue/manifest.json`` (one task per design point: its spec and
  its precomputed store key), so every worker agrees on the work list
  without re-expanding the grid.
* **Leases** — a worker claims a point by atomically creating
  ``<store>/queue/leases/<key>.json`` (``O_CREAT | O_EXCL``) carrying its
  owner id, a heartbeat deadline and an attempt counter.  Claiming is the
  *only* mutual exclusion in the system; results themselves are
  content-hashed, so even a lost race costs a duplicate evaluation, never a
  wrong answer.
* **Heartbeats and stale-lease reclaim** — a live worker renews its lease
  deadline while evaluating; a lease whose deadline has passed (the owner
  was SIGKILLed, hung, or its host died) is reclaimed by the first worker
  to win an atomic ``rename`` of the stale file.  Corrupt (unparsable)
  lease files are reclaimed the same way.
* **Bounded retry and quarantine** — every reclaim and every evaluation
  failure increments the point's attempt counter; past ``max_attempts`` the
  point is moved to ``<store>/queue/quarantine/`` and never re-issued, so
  one crashing configuration cannot wedge the sweep.
* **Journal** — every claim / reclaim / complete / failure / quarantine is
  appended to ``<store>/queue/journal.jsonl`` (single ``O_APPEND`` writes),
  which is what the fault-injection suite and the resume-overhead metric
  read back: "zero duplicated evaluations" is checkable, not asserted.

Crash-resume is free: completed points live in the store under
content-hash keys, so re-running the same driver command skips them, and
only in-flight leases from the dead run are re-evaluated after their TTL.

Every queue transition is instrumented with :mod:`repro.obs` — spans
(``dse.queue.claim`` / ``dse.queue.reclaim`` / ``dse.queue.quarantine`` /
``dse.queue.evaluate``) and metrics (``dse_points_claimed_total``,
``dse_leases_reclaimed_total``, ``dse_points_completed_total``,
``dse_points_quarantined_total``, ``dse_queue_depth``) — so a distributed
run is debuggable with the same telemetry as serving.
"""

from __future__ import annotations

import importlib
import itertools
import json
import os
import signal
import socket
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.library import default_libraries, library_fingerprint
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

from .evaluate import (
    DesignPoint,
    EvaluationSettings,
    SMOKE_SETTINGS,
    SweepResult,
    expand_grid,
)
from .grid import DesignPointSpec
from .store import ResultStore, point_key

__all__ = [
    "DEFAULT_EVALUATOR",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "DseWorker",
    "Lease",
    "QueueProgress",
    "QueueSweepResult",
    "QueueTask",
    "WorkQueue",
    "WorkerReport",
    "journal_events",
    "journal_stats",
    "parse_shard",
    "resolve_evaluator",
    "run_queue_sweep",
    "worker_main",
    "write_manifest",
]

#: Seconds a lease stays valid without a heartbeat renewal.
DEFAULT_LEASE_TTL = 30.0

#: Claims (first claim + reclaims + post-failure retries) a point is allowed
#: before it is quarantined.
DEFAULT_MAX_ATTEMPTS = 3

#: Dotted ``module:function`` path of the production evaluator workers run.
DEFAULT_EVALUATOR = "repro.explore.evaluate:evaluate_point"

_QUEUE_DIR = "queue"
_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_LEASES = "leases"
_QUARANTINE = "quarantine"

_owner_counter = itertools.count(1)


def default_owner() -> str:
    """A process-unique worker id: ``<host>-<pid>-<n>`` (``n`` per process)."""
    return f"{socket.gethostname()}-{os.getpid()}-{next(_owner_counter)}"


@dataclass(frozen=True)
class QueueTask:
    """One unit of queued work: a design point and its store key."""

    index: int
    key: str
    spec: DesignPointSpec

    def to_dict(self) -> dict:
        """Plain-JSON manifest entry."""
        return {"index": self.index, "key": self.key, "spec": asdict(self.spec)}

    @classmethod
    def from_dict(cls, payload: dict) -> "QueueTask":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(payload["index"]),
            key=str(payload["key"]),
            spec=DesignPointSpec(**payload["spec"]),
        )


@dataclass
class Lease:
    """A claim on one queued point: who holds it and until when."""

    key: str
    owner: str
    deadline: float
    attempt: int = 1

    def to_dict(self) -> dict:
        """Plain-JSON lease-file payload."""
        return {
            "key": self.key,
            "owner": self.owner,
            "deadline": self.deadline,
            "attempt": self.attempt,
        }


@dataclass(frozen=True)
class QueueProgress:
    """A point-in-time census of the queue (for dashboards and drivers)."""

    total: int
    completed: int
    quarantined: int
    leased: int

    @property
    def pending(self) -> int:
        """Points not yet completed or quarantined (leased ones included)."""
        return max(0, self.total - self.completed - self.quarantined)

    @property
    def done(self) -> bool:
        """``True`` once every point is completed or quarantined."""
        return self.pending == 0


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``"i/n"`` shard selector into ``(index, count)``.

    Shard *i* of *n* owns the manifest tasks whose index is congruent to
    ``i`` modulo ``n`` — a deterministic partition that lets independent
    hosts each run ``--shard i/n`` against the same store directory.
    """
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"shard must look like 'i/n', got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"shard index must satisfy 0 <= i < n, got {text!r}")
    return index, count


def resolve_evaluator(path: str) -> Callable:
    """Import a ``module:function`` evaluator path from a manifest."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"evaluator path must be 'module:function', got {path!r}")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


# --------------------------------------------------------------------- manifest


def write_manifest(
    store_dir: Union[str, Path],
    specs: Sequence[DesignPointSpec],
    settings: EvaluationSettings = SMOKE_SETTINGS,
    backend: str = "batch",
    timing_backend: str = "event",
    program_cache: Optional[str] = None,
    grid_name: str = "custom",
    evaluator: str = DEFAULT_EVALUATOR,
) -> Tuple[Path, bool]:
    """Freeze the work list into ``<store>/queue/manifest.json``.

    Store keys are computed here once (library fingerprints amortized over
    the grid) so every worker — local process or remote host — agrees on
    them without recomputing.  Returns ``(path, resumed)``: *resumed* is
    ``True`` when a byte-identical manifest already existed (the run is a
    resume of the same sweep), ``False`` when it was (re)written.
    """
    store_dir = Path(store_dir)
    queue_dir = store_dir / _QUEUE_DIR
    queue_dir.mkdir(parents=True, exist_ok=True)
    libraries = default_libraries()
    digests = {
        name: library_fingerprint(library) for name, library in libraries.items()
    }
    tasks = [
        QueueTask(
            index=index,
            key=point_key(
                spec, settings, libraries[spec.library], backend,
                library_digest=digests[spec.library],
                timing_backend=timing_backend,
            ),
            spec=spec,
        )
        for index, spec in enumerate(specs)
    ]
    payload = {
        "grid": grid_name,
        "backend": backend,
        "timing_backend": timing_backend,
        "program_cache": program_cache,
        "evaluator": evaluator,
        "settings": asdict(settings),
        "tasks": [task.to_dict() for task in tasks],
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = queue_dir / _MANIFEST
    if path.exists() and path.read_text() == text:
        return path, True
    tmp = path.with_suffix(".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path, False


# ------------------------------------------------------------------- the queue


class WorkQueue:
    """Lease-based claiming of manifest tasks over a shared store directory.

    All state lives under ``<store>/queue/``; the instance holds no locks —
    any number of :class:`WorkQueue` objects in any number of processes may
    operate on the same directory concurrently.  *clock* is injectable for
    deterministic lease-expiry tests.
    """

    def __init__(
        self,
        store_dir: Union[str, Path],
        owner: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store_dir = Path(store_dir)
        self.queue_dir = self.store_dir / _QUEUE_DIR
        self.leases_dir = self.queue_dir / _LEASES
        self.quarantine_dir = self.queue_dir / _QUARANTINE
        self.owner = owner or default_owner()
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.clock = clock
        registry = _metrics.default_registry()
        self._claimed = registry.counter(
            "dse_points_claimed_total", "DSE queue lease claims (incl. reclaims)."
        )
        self._reclaimed = registry.counter(
            "dse_leases_reclaimed_total", "Stale or corrupt DSE leases taken over."
        )
        self._completed = registry.counter(
            "dse_points_completed_total", "DSE points evaluated and stored."
        )
        self._quarantined = registry.counter(
            "dse_points_quarantined_total",
            "DSE points quarantined after exhausting their retry budget.",
        )
        self._depth = registry.gauge(
            "dse_queue_depth", "DSE points not yet completed or quarantined."
        )

    # ------------------------------------------------------------ manifest I/O
    @property
    def manifest_path(self) -> Path:
        """Location of the frozen work list."""
        return self.queue_dir / _MANIFEST

    def manifest(self) -> dict:
        """The parsed manifest (raises when no sweep was initialised here)."""
        path = self.manifest_path
        if not path.exists():
            raise FileNotFoundError(
                f"no manifest at {path}; run write_manifest() (or the sweep "
                f"driver) against this store first"
            )
        return json.loads(path.read_text())

    def tasks(self) -> List[QueueTask]:
        """Every task of the manifest, in grid-expansion order."""
        return [QueueTask.from_dict(entry) for entry in self.manifest()["tasks"]]

    # ---------------------------------------------------------------- journal
    @property
    def journal_path(self) -> Path:
        """Location of the append-only event journal."""
        return self.queue_dir / _JOURNAL

    def _journal(self, event: str, key: str, **extra) -> None:
        record = {"event": event, "key": key, "owner": self.owner,
                  "t": self.clock(), **extra}
        line = json.dumps(record, sort_keys=True) + "\n"
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ leases
    def _lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.json"

    def _read_lease(self, path: Path) -> Optional[Lease]:
        """Parse a lease file; ``None`` for corrupt/vanished files."""
        try:
            payload = json.loads(path.read_text())
            return Lease(
                key=str(payload["key"]),
                owner=str(payload["owner"]),
                deadline=float(payload["deadline"]),
                attempt=int(payload.get("attempt", 1)),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _write_new_lease(self, lease: Lease) -> bool:
        """Atomically create the lease file; ``False`` when somebody beat us."""
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(lease.to_dict(), sort_keys=True) + "\n"
        try:
            fd = os.open(
                self._lease_path(lease.key),
                os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                0o644,
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def try_claim(self, task: QueueTask) -> Optional[Lease]:
        """Attempt to claim *task*; ``None`` when held, quarantined or lost.

        The fast path is an ``O_CREAT | O_EXCL`` create — exactly one
        claimant can win it.  When a lease file already exists, it is
        honoured while its deadline is in the future; a stale or corrupt
        lease is taken over by winning an atomic ``rename`` (exactly one
        reclaimer can move the file away), carrying the attempt counter
        forward.  A point whose attempts exceed ``max_attempts`` is
        quarantined instead of re-issued.
        """
        if self.is_quarantined(task.key):
            return None
        now = self.clock()
        lease = Lease(
            key=task.key, owner=self.owner, deadline=now + self.lease_ttl,
            attempt=1,
        )
        if self._write_new_lease(lease):
            self._claimed.inc()
            self._journal("claim", task.key, attempt=1, index=task.index)
            with _trace.span("dse.queue.claim", key=task.key, attempt=1):
                pass
            return lease
        path = self._lease_path(task.key)
        current = self._read_lease(path)
        if current is not None and current.deadline > now:
            return None  # live lease held by somebody else
        # Stale (deadline passed) or corrupt (unparsable) lease: exactly one
        # reclaimer wins the rename; everyone else loses the race cleanly.
        token = self.leases_dir / f"{task.key}.takeover.{self.owner}"
        try:
            os.rename(path, token)
        except OSError:
            return None
        try:
            token.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        attempt = (current.attempt if current is not None else 1) + 1
        self._reclaimed.inc()
        with _trace.span(
            "dse.queue.reclaim", key=task.key, attempt=attempt,
            corrupt=current is None,
        ):
            pass
        self._journal(
            "reclaim", task.key, attempt=attempt, corrupt=current is None,
            previous_owner=None if current is None else current.owner,
        )
        if attempt > self.max_attempts:
            self.quarantine(task, attempt)
            return None
        lease = Lease(
            key=task.key, owner=self.owner,
            deadline=self.clock() + self.lease_ttl, attempt=attempt,
        )
        if not self._write_new_lease(lease):
            return None  # a fresh claimant slipped in after our rename
        self._claimed.inc()
        self._journal("claim", task.key, attempt=attempt, index=task.index)
        return lease

    def heartbeat(self, lease: Lease) -> bool:
        """Extend the lease deadline; ``False`` when ownership was lost."""
        path = self._lease_path(lease.key)
        current = self._read_lease(path)
        if current is None or current.owner != lease.owner:
            return False
        lease.deadline = self.clock() + self.lease_ttl
        tmp = path.with_suffix(f".hb.{os.getpid()}")
        tmp.write_text(json.dumps(lease.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, path)
        return True

    def complete(self, lease: Lease, point: DesignPoint, store: ResultStore) -> Path:
        """Persist *point* and retire the lease; returns the store entry path."""
        entry = store.put(lease.key, point)
        try:
            self._lease_path(lease.key).unlink()
        except OSError:  # pragma: no cover - lease already reclaimed
            pass
        self._completed.inc()
        self._journal("complete", lease.key, attempt=lease.attempt)
        return entry

    def release(self, lease: Lease, failed: bool = False,
                error: Optional[str] = None) -> None:
        """Give the lease back without a result.

        A *failed* release (the evaluator raised) leaves behind an
        already-expired lease file carrying the attempt counter, so the next
        claimer goes through the reclaim path and the retry budget keeps
        counting across owners; a clean release simply deletes the file.
        """
        path = self._lease_path(lease.key)
        if failed:
            expired = Lease(
                key=lease.key, owner=lease.owner, deadline=0.0,
                attempt=lease.attempt,
            )
            tmp = path.with_suffix(f".rel.{os.getpid()}")
            tmp.write_text(json.dumps(expired.to_dict(), sort_keys=True) + "\n")
            os.replace(tmp, path)
            self._journal("fail", lease.key, attempt=lease.attempt, error=error)
            return
        try:
            path.unlink()
        except OSError:  # pragma: no cover - lease already reclaimed
            pass
        self._journal("release", lease.key, attempt=lease.attempt)

    # -------------------------------------------------------------- quarantine
    def _quarantine_path(self, key: str) -> Path:
        return self.quarantine_dir / f"{key}.json"

    def is_quarantined(self, key: str) -> bool:
        """Whether *key* has exhausted its retry budget."""
        return self._quarantine_path(key).exists()

    def quarantine(self, task: QueueTask, attempts: int,
                   reason: str = "retry budget exhausted") -> None:
        """Poison-pill *task*: record it and never re-issue it."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": task.key,
            "label": task.spec.label(),
            "attempts": attempts,
            "reason": reason,
        }
        self._quarantine_path(task.key).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        self._quarantined.inc()
        with _trace.span(
            "dse.queue.quarantine", key=task.key, label=task.spec.label(),
            attempts=attempts,
        ):
            pass
        self._journal("quarantine", task.key, attempts=attempts, reason=reason)

    def quarantined(self) -> List[dict]:
        """Every quarantine record, sorted by spec label."""
        if not self.quarantine_dir.exists():
            return []
        records = [
            json.loads(path.read_text())
            for path in sorted(self.quarantine_dir.glob("*.json"))
        ]
        return sorted(records, key=lambda r: r.get("label", ""))

    # ---------------------------------------------------------------- progress
    def is_done(self, key: str, store: Optional[ResultStore] = None) -> bool:
        """Whether *key* already has a (healthy) store entry.

        With a *store*, the entry is actually loaded — which heals corrupt
        entries (they read as "not done" and get re-evaluated); without one
        this is a cheap existence check for progress reports.
        """
        if store is not None:
            return store.get(key) is not None
        return (self.store_dir / f"{key}.json").exists()

    def progress(self, tasks: Optional[Sequence[QueueTask]] = None) -> QueueProgress:
        """Census the queue; updates the ``dse_queue_depth`` gauge."""
        tasks = self.tasks() if tasks is None else list(tasks)
        completed = sum(1 for task in tasks if self.is_done(task.key))
        quarantined = sum(1 for task in tasks if self.is_quarantined(task.key))
        now = self.clock()
        leased = 0
        if self.leases_dir.exists():
            for path in self.leases_dir.glob("*.json"):
                lease = self._read_lease(path)
                if lease is not None and lease.deadline > now:
                    leased += 1
        progress = QueueProgress(
            total=len(tasks), completed=completed, quarantined=quarantined,
            leased=leased,
        )
        self._depth.set(progress.pending)
        return progress

    # ------------------------------------------------------- cooperative fetch
    def load_or_compute(
        self,
        task: QueueTask,
        compute: Callable[[DesignPointSpec], DesignPoint],
        store: ResultStore,
        poll_interval: float = 0.02,
        timeout: Optional[float] = None,
    ) -> Tuple[DesignPoint, bool]:
        """Serve *task* from the store, or claim-and-compute it exactly once.

        Racing callers (any number of processes) converge without double
        evaluation: one wins the lease and computes; the rest poll the store
        until the result lands (or the winner dies and its lease expires, at
        which point a poller takes over).  Returns ``(point, computed)``.
        """
        start = time.monotonic()
        while True:
            point = store.get(task.key)
            if point is not None:
                return point, False
            lease = self.try_claim(task)
            if lease is not None:
                try:
                    point = compute(task.spec)
                except Exception as err:
                    self.release(lease, failed=True, error=repr(err))
                    raise
                self.complete(lease, point, store)
                return point, True
            if self.is_quarantined(task.key):
                raise RuntimeError(
                    f"design point {task.spec.label()} is quarantined"
                )
            if timeout is not None and time.monotonic() - start > timeout:
                raise TimeoutError(
                    f"timed out waiting for {task.spec.label()} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_interval)


# ------------------------------------------------------------------ the worker


class _HeartbeatThread:
    """Background renewal of one active lease while an evaluation runs."""

    def __init__(self, queue: WorkQueue, lease: Lease, interval: float) -> None:
        self._queue = queue
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_HeartbeatThread":
        if self._interval > 0:
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._queue.heartbeat(self._lease):
                return  # ownership lost; stop renewing, let the claim expire


@dataclass
class WorkerReport:
    """What one :class:`DseWorker` run did (per-process provenance)."""

    owner: str
    completed: int = 0
    failures: int = 0
    wall_seconds: float = 0.0
    shard: Optional[Tuple[int, int]] = None

    def to_dict(self) -> dict:
        """Plain-JSON form (shipped back from worker processes)."""
        record = asdict(self)
        record["shard"] = None if self.shard is None else list(self.shard)
        return record


@dataclass
class DseWorker:
    """A claim → evaluate → store loop over one store directory.

    Runnable as any number of concurrent processes (or hosts) pointing at
    the same store: coordination happens entirely through the lease files.
    *shard* restricts the worker to manifest indices ``i (mod n)``;
    *reverse* flips its claim-scan order (results are order-invariant — the
    sharding determinism test relies on this knob); *heartbeat_interval*
    ``0`` disables renewal (used by the stale-lease tests), ``None`` picks
    ``lease_ttl / 3``; *evaluator* overrides the manifest's dotted path
    with an in-process callable (fault-injection tests).
    """

    store_dir: Union[str, Path]
    owner: Optional[str] = None
    lease_ttl: float = DEFAULT_LEASE_TTL
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    heartbeat_interval: Optional[float] = None
    poll_interval: float = 0.05
    shard: Optional[Tuple[int, int]] = None
    reverse: bool = False
    max_points: Optional[int] = None
    evaluator: Optional[Callable] = None
    clock: Callable[[], float] = field(default=time.time)

    def run(self) -> WorkerReport:
        """Drain the queue (or this worker's shard of it) and report."""
        start = time.monotonic()
        queue = WorkQueue(
            self.store_dir, owner=self.owner, lease_ttl=self.lease_ttl,
            max_attempts=self.max_attempts, clock=self.clock,
        )
        store = ResultStore(self.store_dir)
        config = queue.manifest()
        settings = EvaluationSettings(**config["settings"])
        evaluator = self.evaluator or resolve_evaluator(config["evaluator"])
        tasks = queue.tasks()
        if self.shard is not None:
            index, count = self.shard
            tasks = [task for task in tasks if task.index % count == index]
        if self.reverse:
            tasks = list(reversed(tasks))
        interval = (
            self.lease_ttl / 3.0
            if self.heartbeat_interval is None
            else self.heartbeat_interval
        )
        report = WorkerReport(owner=queue.owner, shard=self.shard)
        while True:
            progressed = False
            open_tasks = 0
            for task in tasks:
                if queue.is_quarantined(task.key):
                    continue
                if queue.is_done(task.key, store):
                    continue
                open_tasks += 1
                lease = queue.try_claim(task)
                if lease is None:
                    continue
                progressed = True
                failed = False
                with _HeartbeatThread(queue, lease, interval):
                    try:
                        with _trace.span(
                            "dse.queue.evaluate", label=task.spec.label(),
                            attempt=lease.attempt,
                        ):
                            point = evaluator(
                                task.spec,
                                settings,
                                config["backend"],
                                config["timing_backend"],
                                program_cache=config.get("program_cache"),
                            )
                    except Exception as err:
                        queue.release(lease, failed=True, error=repr(err))
                        report.failures += 1
                        failed = True
                if not failed:
                    queue.complete(lease, point, store)
                    report.completed += 1
                if (
                    self.max_points is not None
                    and report.completed >= self.max_points
                ):
                    open_tasks = 0
                    break
            queue.progress(tasks)
            if open_tasks == 0:
                break
            if not progressed:
                # Everything still open is leased by somebody else: wait for
                # them to finish (or for their lease to expire and be
                # reclaimed above).
                time.sleep(self.poll_interval)
        report.wall_seconds = time.monotonic() - start
        return report


def worker_main(
    store_dir: Union[str, Path],
    owner: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    shard: Optional[Tuple[int, int]] = None,
    reverse: bool = False,
    poll_interval: float = 0.05,
) -> dict:
    """Process entry point: run one :class:`DseWorker` to completion.

    Importable by ``multiprocessing`` under both fork and spawn start
    methods (everything it needs is serialisable), and usable from another
    host against a shared store directory.
    """
    worker = DseWorker(
        store_dir=store_dir, owner=owner, lease_ttl=lease_ttl,
        max_attempts=max_attempts, shard=shard, reverse=reverse,
        poll_interval=poll_interval,
    )
    return worker.run().to_dict()


# ------------------------------------------------------------------ the driver


def journal_events(store_dir: Union[str, Path]) -> List[dict]:
    """Every journal record of a store directory, in append order."""
    path = Path(store_dir) / _QUEUE_DIR / _JOURNAL
    if not path.exists():
        return []
    events = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def journal_stats(events: Sequence[dict]) -> Dict[str, int]:
    """Aggregate journal counters: claims, completes, reclaims, duplicates.

    ``duplicate_completes`` counts completions beyond the first per key —
    the fault-injection suite pins it at zero; ``extra_claims`` counts
    claims beyond the first per key (in-flight work redone after a crash or
    failure) — the numerator of the resume-overhead metric.
    """
    claims: Dict[str, int] = {}
    completes: Dict[str, int] = {}
    reclaims = 0
    quarantines = 0
    for event in events:
        kind = event.get("event")
        key = event.get("key", "")
        if kind == "claim":
            claims[key] = claims.get(key, 0) + 1
        elif kind == "complete":
            completes[key] = completes.get(key, 0) + 1
        elif kind == "reclaim":
            reclaims += 1
        elif kind == "quarantine":
            quarantines += 1
    return {
        "claims": sum(claims.values()),
        "claimed_keys": len(claims),
        "completes": sum(completes.values()),
        "completed_keys": len(completes),
        "duplicate_completes": sum(n - 1 for n in completes.values()),
        "extra_claims": sum(n - 1 for n in claims.values()),
        "reclaims": reclaims,
        "quarantines": quarantines,
    }


@dataclass
class QueueSweepResult(SweepResult):
    """A :class:`SweepResult` plus the distributed run's provenance."""

    complete: bool = True
    quarantined: Tuple[str, ...] = ()
    reclaims: int = 0
    total_claims: int = 0
    duplicate_completes: int = 0
    resume_overhead_pct: float = 0.0
    workers: int = 0
    worker_reports: Tuple[dict, ...] = ()


def _chaos_monitor(
    store_dir: Path,
    processes: Sequence,
    kill_after: int,
    kill_worker: int,
    poll_interval: float = 0.05,
) -> bool:
    """SIGKILL one worker once *kill_after* points have completed.

    Returns ``True`` when the kill was delivered (the journal reached the
    threshold before the workers drained the queue).
    """
    target = processes[kill_worker]
    while any(process.is_alive() for process in processes):
        stats = journal_stats(journal_events(store_dir))
        if stats["completes"] >= kill_after:
            if target.is_alive() and target.pid is not None:
                os.kill(target.pid, signal.SIGKILL)
                return True
            return False
        time.sleep(poll_interval)
    return False


def run_queue_sweep(
    grid,
    settings: EvaluationSettings = SMOKE_SETTINGS,
    backend: str = "batch",
    workers: int = 2,
    store: Union[ResultStore, str, Path, None] = None,
    timing_backend: str = "event",
    program_cache: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    sharded: bool = True,
    grid_name: str = "custom",
    evaluator: str = DEFAULT_EVALUATOR,
    chaos_kill_after: Optional[int] = None,
    chaos_kill_worker: int = 0,
) -> QueueSweepResult:
    """Evaluate a grid through *workers* coordinated worker processes.

    The driver freezes the manifest, spawns the workers (sharded ``i/n``
    partitions when *sharded*, all competing for the whole queue
    otherwise), waits for them, and assembles the completed points from the
    store in grid-expansion order — so a finished queue sweep returns
    exactly what :func:`~repro.explore.evaluate.run_sweep` would.  Crashed
    or killed runs resume for free: re-invoking with the same arguments
    skips every completed point and re-issues only expired leases.

    ``chaos_kill_after=N`` is the built-in fault injector: once the journal
    shows *N* completions, worker ``chaos_kill_worker`` is SIGKILLed — the
    CI ``dse-distributed`` job uses it to prove crash-resume on every push.
    ``complete`` is ``False`` on the returned result when pending points
    remain (their leases expire and the next invocation picks them up).
    """
    import multiprocessing as mp

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if store is None:
        raise ValueError("run_queue_sweep needs a store (the shared substrate)")
    store = store if isinstance(store, ResultStore) else ResultStore(store)
    specs, dropped_dup, dropped_inf = expand_grid(grid)
    write_manifest(
        store.directory, specs, settings, backend=backend,
        timing_backend=timing_backend, program_cache=program_cache,
        grid_name=grid_name, evaluator=evaluator,
    )
    queue = WorkQueue(
        store.directory, lease_ttl=lease_ttl, max_attempts=max_attempts
    )
    tasks = queue.tasks()
    before = journal_stats(journal_events(store.directory))
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    with _trace.span(
        "dse.queue.sweep", workers=workers, points=len(tasks), sharded=sharded
    ):
        processes = [
            ctx.Process(
                target=worker_main,
                kwargs={
                    "store_dir": str(store.directory),
                    "owner": f"{default_owner()}-w{index}",
                    "lease_ttl": lease_ttl,
                    "max_attempts": max_attempts,
                    "shard": (index, workers) if sharded else None,
                },
                daemon=False,
            )
            for index in range(workers)
        ]
        for process in processes:
            process.start()
        if chaos_kill_after is not None:
            _chaos_monitor(
                store.directory, processes, chaos_kill_after, chaos_kill_worker
            )
        for process in processes:
            process.join()
    resolved: Dict[int, DesignPoint] = {}
    for task in tasks:
        point = store.get(task.key)
        if point is not None:
            resolved[task.index] = point
    after = journal_stats(journal_events(store.directory))
    evaluated = after["completes"] - before["completes"]
    quarantined = tuple(
        record.get("label", record.get("key", "?"))
        for record in queue.quarantined()
    )
    total = len(tasks)
    overhead = 100.0 * after["extra_claims"] / total if total else 0.0
    progress = queue.progress(tasks)
    return QueueSweepResult(
        points=[resolved[i] for i in sorted(resolved)],
        evaluated=evaluated,
        cached=len(resolved) - evaluated,
        dropped_duplicates=dropped_dup,
        dropped_infeasible=dropped_inf,
        complete=progress.done and not quarantined,
        quarantined=quarantined,
        reclaims=after["reclaims"],
        total_claims=after["claims"],
        duplicate_completes=after["duplicate_completes"],
        resume_overhead_pct=overhead,
        workers=workers,
        worker_reports=(),
    )
