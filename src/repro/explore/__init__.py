"""Design-space exploration over the paper's architecture family.

The evaluation harnesses reproduce the paper's *figures*; this package
explores the *family* those figures sample: it enumerates configurations
over a declarative grid (dataset × clause count × booleanizer resolution ×
cell library × datapath style × supply voltage), evaluates every point end
to end (train → map → simulate → report) into typed :class:`DesignPoint`
records, caches results in a content-hash keyed on-disk store, and extracts
Pareto frontiers across any metric pair.

Typical use (see ``examples/explore_design_space.py`` for the CLI)::

    from repro.explore import (
        ResultStore, named_grid, parse_metric, pareto_front, run_sweep,
    )

    result = run_sweep(named_grid("smoke"), jobs=4,
                       store=ResultStore(".dse_store"))
    front = pareto_front(result.points,
                         [parse_metric("accuracy"), parse_metric("energy")])

* :mod:`repro.explore.grid` — specs, grids, named grids;
* :mod:`repro.explore.evaluate` — the end-to-end evaluator and sweep driver;
* :mod:`repro.explore.store` — the content-hash result store;
* :mod:`repro.explore.pareto` — front extraction, ranking, CSV emission;
* :mod:`repro.explore.queue` — the distributed, crash-resumable work queue
  (``run_sweep(workers=N)`` routes through it);
* :mod:`repro.explore.fronts` — cross-run Pareto-front history and the
  static HTML dashboard.
"""

from .evaluate import (
    DesignPoint,
    EvaluationSettings,
    SMOKE_SETTINGS,
    SWEEP_BACKENDS,
    SweepResult,
    build_spec_workload,
    evaluate_point,
    run_sweep,
)
from .fronts import (
    FrontDelta,
    FrontHistory,
    FrontView,
    pair_slug,
    render_dashboard,
)
from .grid import (
    DesignPointSpec,
    FULL_GRID,
    GridExpansion,
    NOMINAL_GRID,
    ParameterGrid,
    SMOKE_GRID,
    grid_names,
    named_grid,
)
from .pareto import (
    METRIC_ALIASES,
    Metric,
    dominates,
    format_front_csv,
    front_csv,
    pareto_front,
    pareto_ranks,
    parse_metric,
    parse_metric_pair,
)
from .queue import (
    DseWorker,
    QueueSweepResult,
    QueueTask,
    WorkQueue,
    journal_events,
    journal_stats,
    parse_shard,
    run_queue_sweep,
    worker_main,
    write_manifest,
)
from .store import EVALUATOR_VERSION, ResultStore, library_fingerprint, point_key

__all__ = [
    "DesignPoint",
    "DesignPointSpec",
    "DseWorker",
    "EVALUATOR_VERSION",
    "EvaluationSettings",
    "FULL_GRID",
    "FrontDelta",
    "FrontHistory",
    "FrontView",
    "GridExpansion",
    "METRIC_ALIASES",
    "Metric",
    "NOMINAL_GRID",
    "ParameterGrid",
    "QueueSweepResult",
    "QueueTask",
    "ResultStore",
    "SMOKE_GRID",
    "SMOKE_SETTINGS",
    "SWEEP_BACKENDS",
    "SweepResult",
    "WorkQueue",
    "build_spec_workload",
    "dominates",
    "evaluate_point",
    "format_front_csv",
    "front_csv",
    "grid_names",
    "journal_events",
    "journal_stats",
    "library_fingerprint",
    "named_grid",
    "pair_slug",
    "pareto_front",
    "pareto_ranks",
    "parse_metric",
    "parse_metric_pair",
    "parse_shard",
    "point_key",
    "render_dashboard",
    "run_queue_sweep",
    "run_sweep",
    "worker_main",
    "write_manifest",
]
