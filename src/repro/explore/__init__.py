"""Design-space exploration over the paper's architecture family.

The evaluation harnesses reproduce the paper's *figures*; this package
explores the *family* those figures sample: it enumerates configurations
over a declarative grid (dataset × clause count × booleanizer resolution ×
cell library × datapath style × supply voltage), evaluates every point end
to end (train → map → simulate → report) into typed :class:`DesignPoint`
records, caches results in a content-hash keyed on-disk store, and extracts
Pareto frontiers across any metric pair.

Typical use (see ``examples/explore_design_space.py`` for the CLI)::

    from repro.explore import (
        ResultStore, named_grid, parse_metric, pareto_front, run_sweep,
    )

    result = run_sweep(named_grid("smoke"), jobs=4,
                       store=ResultStore(".dse_store"))
    front = pareto_front(result.points,
                         [parse_metric("accuracy"), parse_metric("energy")])

* :mod:`repro.explore.grid` — specs, grids, named grids;
* :mod:`repro.explore.evaluate` — the end-to-end evaluator and sweep driver;
* :mod:`repro.explore.store` — the content-hash result store;
* :mod:`repro.explore.pareto` — front extraction, ranking, CSV emission.
"""

from .evaluate import (
    DesignPoint,
    EvaluationSettings,
    SMOKE_SETTINGS,
    SWEEP_BACKENDS,
    SweepResult,
    build_spec_workload,
    evaluate_point,
    run_sweep,
)
from .grid import (
    DesignPointSpec,
    FULL_GRID,
    GridExpansion,
    NOMINAL_GRID,
    ParameterGrid,
    SMOKE_GRID,
    grid_names,
    named_grid,
)
from .pareto import (
    METRIC_ALIASES,
    Metric,
    dominates,
    format_front_csv,
    front_csv,
    pareto_front,
    pareto_ranks,
    parse_metric,
    parse_metric_pair,
)
from .store import EVALUATOR_VERSION, ResultStore, library_fingerprint, point_key

__all__ = [
    "DesignPoint",
    "DesignPointSpec",
    "EVALUATOR_VERSION",
    "EvaluationSettings",
    "FULL_GRID",
    "GridExpansion",
    "METRIC_ALIASES",
    "Metric",
    "NOMINAL_GRID",
    "ParameterGrid",
    "ResultStore",
    "SMOKE_GRID",
    "SMOKE_SETTINGS",
    "SWEEP_BACKENDS",
    "SweepResult",
    "build_spec_workload",
    "dominates",
    "evaluate_point",
    "format_front_csv",
    "front_csv",
    "grid_names",
    "library_fingerprint",
    "named_grid",
    "pareto_front",
    "pareto_ranks",
    "parse_metric",
    "parse_metric_pair",
    "point_key",
    "run_sweep",
]
