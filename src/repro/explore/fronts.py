"""Cross-run Pareto-front tracking and the static DSE dashboard.

A sweep's primary artefact is its Pareto front — but a *single* front
cannot answer the question CI actually asks: **did this change move the
accuracy × energy trade-off?**  :class:`FrontHistory` keeps a byte-stable
``front_history.json`` of every distinct front ever observed per
``(grid, metric-pair)``: recording a front appends an entry only when its
content digest differs from the last one, so the file is diffable in CI —
an unchanged trade-off produces an unchanged file, and a moved front shows
up as one appended entry whose :class:`FrontDelta` names exactly the
design points that entered and left the frontier.

Byte stability rules (the file is compared verbatim across runs):

* rows carry metric values pre-formatted with ``%.6g`` — the same
  formatting as the Pareto CSV, so equal fronts serialize equally;
* entries are appended in deterministic order and serialized with sorted
  keys and fixed indentation;
* no timestamps, hostnames or other run-local noise.

:func:`render_dashboard` turns the completed store's fronts plus the
queue's progress census into a **single self-contained HTML page** (inline
SVG, inline CSS, no external assets or scripts) published by the docs job
and uploaded from the ``dse-distributed`` CI job: stat tiles for run
progress, one scatter per metric pair (dominated points recessive, the
non-dominated frontier emphasised with a step line), per-mark hover
tooltips, and the front tables as the accessible data view.  Colors follow
the repo-wide visualization palette with light and dark modes.
"""

from __future__ import annotations

import hashlib
import html
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from .pareto import Metric, pareto_front

__all__ = [
    "FRONT_HISTORY_VERSION",
    "FrontDelta",
    "FrontHistory",
    "FrontView",
    "front_digest",
    "front_rows",
    "pair_slug",
    "render_dashboard",
]

#: Bump when the history entry schema changes incompatibly.
FRONT_HISTORY_VERSION = 1


def pair_slug(metrics: Sequence[Metric]) -> str:
    """Stable identifier for a metric pair: ``"accuracy_vs_energy..."``."""
    return "_vs_".join(metric.name for metric in metrics)


def front_rows(front: Sequence, metrics: Sequence[Metric]) -> List[dict]:
    """Canonical row dicts for an already-extracted front.

    Values are ``%.6g``-formatted strings (the Pareto-CSV formatting), so
    equal fronts always produce byte-equal rows regardless of float noise
    in their in-memory representation.
    """
    rows = []
    for point in front:
        row = {"label": point.spec.label()}
        for metric in metrics:
            row[metric.name] = f"{metric.value(point):.6g}"
        rows.append(row)
    return rows


def front_digest(rows: Sequence[Mapping]) -> str:
    """Content hash of a front's canonical rows (entry identity)."""
    canon = json.dumps(list(rows), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FrontDelta:
    """What changed between two successive fronts of one ``(grid, pair)``."""

    grid: str
    pair: str
    changed: bool
    first: bool = False
    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()

    def describe(self) -> str:
        """One human-readable line for sweep logs and CI output."""
        if self.first:
            return f"{self.grid}/{self.pair}: first recorded front"
        if not self.changed:
            return f"{self.grid}/{self.pair}: front unchanged"
        parts = []
        if self.added:
            parts.append(f"+{len(self.added)} ({', '.join(self.added)})")
        if self.removed:
            parts.append(f"-{len(self.removed)} ({', '.join(self.removed)})")
        detail = "; ".join(parts) if parts else "metric values moved"
        return f"{self.grid}/{self.pair}: front MOVED — {detail}"


class FrontHistory:
    """Append-only, byte-stable record of every distinct front observed."""

    def __init__(self, entries: Optional[List[dict]] = None) -> None:
        self.entries: List[dict] = list(entries or [])

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FrontHistory":
        """Read a history file; a missing file is an empty history."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != FRONT_HISTORY_VERSION:
            raise ValueError(
                f"front history {path} has version {payload.get('version')!r}; "
                f"this code reads version {FRONT_HISTORY_VERSION}"
            )
        return cls(payload.get("entries", []))

    def latest(self, grid: str, pair: str) -> Optional[dict]:
        """The most recent entry for ``(grid, pair)``, or ``None``."""
        for entry in reversed(self.entries):
            if entry["grid"] == grid and entry["pair"] == pair:
                return entry
        return None

    def record(
        self, grid: str, metrics: Sequence[Metric], front: Sequence
    ) -> FrontDelta:
        """Append *front* if it differs from the last recorded one.

        Returns the :class:`FrontDelta` versus the previous entry — the
        "did this PR move the front?" answer.  Recording an unchanged
        front is a no-op, which is what keeps the file diff-stable.
        """
        pair = pair_slug(metrics)
        rows = front_rows(front, metrics)
        digest = front_digest(rows)
        previous = self.latest(grid, pair)
        if previous is not None and previous["digest"] == digest:
            return FrontDelta(grid=grid, pair=pair, changed=False)
        old_rows = [] if previous is None else previous["rows"]
        old_ids = {json.dumps(row, sort_keys=True) for row in old_rows}
        new_ids = {json.dumps(row, sort_keys=True) for row in rows}
        added = tuple(
            row["label"] for row in rows
            if json.dumps(row, sort_keys=True) not in old_ids
        )
        removed = tuple(
            row["label"] for row in old_rows
            if json.dumps(row, sort_keys=True) not in new_ids
        )
        self.entries.append({
            "seq": len(self.entries) + 1,
            "grid": grid,
            "pair": pair,
            "metrics": [
                {"name": metric.name, "goal": metric.goal} for metric in metrics
            ],
            "digest": digest,
            "rows": rows,
        })
        return FrontDelta(
            grid=grid, pair=pair, changed=True, first=previous is None,
            added=added, removed=removed,
        )

    def to_dict(self) -> dict:
        """The serialized form (see :meth:`save`)."""
        return {"version": FRONT_HISTORY_VERSION, "entries": self.entries}

    def save(self, path: Union[str, Path]) -> Path:
        """Write the byte-stable history file and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path


# ---------------------------------------------------------------- dashboard


@dataclass
class FrontView:
    """One chart of the dashboard: a metric pair over the swept points."""

    metrics: Tuple[Metric, Metric]
    points: Sequence
    front: Sequence = ()
    delta: Optional[FrontDelta] = None

    def __post_init__(self) -> None:
        if not self.front:
            self.front = pareto_front(self.points, list(self.metrics))

    @property
    def title(self) -> str:
        """Chart heading, e.g. ``accuracy (max) vs energy... (min)``."""
        a, b = self.metrics
        return f"{a.name} ({a.goal}) vs {b.name} ({b.goal})"


_DASHBOARD_CSS = """
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb; --surface-2: #f0efec;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --line: #d9d8d2;
    --series-1: #2a78d6;      /* front */
    --series-rest: #a8a69d;   /* dominated points */
    font: 14px/1.45 system-ui, sans-serif;
    background: var(--surface-1); color: var(--text-primary);
    margin: 0 auto; max-width: 980px; padding: 24px;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --surface-2: #262624;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --line: #3a3a37; --series-1: #3987e5; --series-rest: #6f6e66;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #262624;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --line: #3a3a37; --series-1: #3987e5; --series-rest: #6f6e66;
  }
  .viz-root h1 { font-size: 20px; margin: 0 0 4px; }
  .viz-root h2 { font-size: 16px; margin: 28px 0 8px; }
  .viz-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
  .tile {
    background: var(--surface-2); border-radius: 8px;
    padding: 10px 16px; min-width: 110px;
  }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .k { color: var(--text-secondary); font-size: 12px; }
  .meter {
    height: 6px; border-radius: 3px; background: var(--surface-2);
    overflow: hidden; margin-top: 6px;
  }
  .meter span { display: block; height: 100%; background: var(--series-1); }
  .legend { color: var(--text-secondary); font-size: 12px; margin: 4px 0 8px; }
  .legend .mark {
    display: inline-block; width: 9px; height: 9px; border-radius: 50%;
    vertical-align: -1px; margin: 0 4px 0 12px;
  }
  .legend .mark:first-child { margin-left: 0; }
  svg text { fill: var(--text-secondary); font-size: 11px; }
  svg .grid { stroke: var(--line); stroke-width: 1; }
  svg .frontline {
    stroke: var(--series-1); stroke-width: 2; fill: none;
    stroke-linejoin: round;
  }
  svg .dom { fill: var(--series-rest); }
  svg .front {
    fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2;
  }
  svg circle:hover { r: 7; }
  table { border-collapse: collapse; margin: 8px 0 24px; width: 100%; }
  th, td {
    text-align: left; padding: 4px 10px; font-size: 12px;
    border-bottom: 1px solid var(--line);
  }
  th { color: var(--text-secondary); font-weight: 600; }
  .delta { font-size: 12px; color: var(--text-secondary); margin: 4px 0; }
"""


def _ticks(lo: float, hi: float, count: int = 4) -> List[float]:
    if hi <= lo:
        return [lo]
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def _scatter_svg(view: FrontView, width: int = 440, height: int = 300) -> str:
    """One scatter chart: dominated points recessive, front emphasised."""
    a, b = view.metrics
    xs = [a.value(p) for p in view.points]
    ys = [b.value(p) for p in view.points]
    if not xs:
        return "<p class='sub'>no points</p>"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_pad = (x_hi - x_lo) * 0.08 or max(abs(x_hi), 1.0) * 0.05
    y_pad = (y_hi - y_lo) * 0.08 or max(abs(y_hi), 1.0) * 0.05
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad
    left, right, top, bottom = 58, 12, 10, 40

    def sx(v: float) -> float:
        return left + (v - x_lo) / (x_hi - x_lo) * (width - left - right)

    def sy(v: float) -> float:
        return height - bottom - (v - y_lo) / (y_hi - y_lo) * (height - top - bottom)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{html.escape(view.title)}" '
        f'style="width:100%;max-width:{width}px">'
    ]
    for tick in _ticks(x_lo + x_pad, x_hi - x_pad):
        x = sx(tick)
        parts.append(
            f'<line class="grid" x1="{x:.1f}" y1="{top}" '
            f'x2="{x:.1f}" y2="{height - bottom}"/>'
            f'<text x="{x:.1f}" y="{height - bottom + 16}" '
            f'text-anchor="middle">{tick:.4g}</text>'
        )
    for tick in _ticks(y_lo + y_pad, y_hi - y_pad):
        y = sy(tick)
        parts.append(
            f'<line class="grid" x1="{left}" y1="{y:.1f}" '
            f'x2="{width - right}" y2="{y:.1f}"/>'
            f'<text x="{left - 6}" y="{y:.1f}" dy="0.32em" '
            f'text-anchor="end">{tick:.4g}</text>'
        )
    arrow = {"max": "↑", "min": "↓"}
    parts.append(
        f'<text x="{(left + width - right) / 2:.1f}" y="{height - 6}" '
        f'text-anchor="middle">{html.escape(a.name)} {arrow[a.goal]}</text>'
    )
    parts.append(
        f'<text x="12" y="{(top + height - bottom) / 2:.1f}" '
        f'text-anchor="middle" transform="rotate(-90 12 '
        f'{(top + height - bottom) / 2:.1f})">'
        f'{html.escape(b.name)} {arrow[b.goal]}</text>'
    )
    front_ids = {id(p) for p in view.front}
    front_sorted = sorted(view.front, key=lambda p: (a.value(p), b.value(p)))
    if len(front_sorted) > 1:
        path = " ".join(
            f"{'M' if i == 0 else 'L'} {sx(a.value(p)):.1f} {sy(b.value(p)):.1f}"
            for i, p in enumerate(front_sorted)
        )
        parts.append(f'<path class="frontline" d="{path}"/>')
    for point in view.points:  # dominated first, so the front draws on top
        if id(point) in front_ids:
            continue
        parts.append(
            f'<circle class="dom" cx="{sx(a.value(point)):.1f}" '
            f'cy="{sy(b.value(point)):.1f}" r="3.5">'
            f"<title>{html.escape(point.spec.label())}\n"
            f"{a.name}={a.value(point):.6g}  {b.name}={b.value(point):.6g}"
            f"</title></circle>"
        )
    for point in front_sorted:
        parts.append(
            f'<circle class="front" cx="{sx(a.value(point)):.1f}" '
            f'cy="{sy(b.value(point)):.1f}" r="4.5">'
            f"<title>{html.escape(point.spec.label())}\n"
            f"{a.name}={a.value(point):.6g}  {b.name}={b.value(point):.6g}"
            f"</title></circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _front_table(view: FrontView) -> str:
    a, b = view.metrics
    head = (
        f"<tr><th>design point</th><th>{html.escape(a.name)}</th>"
        f"<th>{html.escape(b.name)}</th></tr>"
    )
    rows = "".join(
        f"<tr><td>{html.escape(p.spec.label())}</td>"
        f"<td>{a.value(p):.6g}</td><td>{b.value(p):.6g}</td></tr>"
        for p in view.front
    )
    return f"<table>{head}{rows}</table>"


def _tile(value: str, label: str, meter: Optional[float] = None) -> str:
    bar = ""
    if meter is not None:
        pct = max(0.0, min(1.0, meter)) * 100.0
        bar = f'<div class="meter"><span style="width:{pct:.1f}%"></span></div>'
    return (
        f'<div class="tile"><div class="v">{html.escape(value)}</div>'
        f'<div class="k">{html.escape(label)}</div>{bar}</div>'
    )


def render_dashboard(
    title: str,
    progress: Mapping,
    views: Sequence[FrontView],
    subtitle: str = "",
) -> str:
    """The complete, self-contained dashboard page as an HTML string.

    *progress* carries the run census (``total``, ``completed``,
    ``evaluated``, ``cached``, ``reclaims``, ``quarantined`` — a sequence
    of labels); missing keys render as zero.  *views* is one chart + table
    per metric pair.  The page embeds everything (styles, SVG), so it can
    be dropped into the mkdocs site or uploaded as a CI artifact verbatim.
    """
    total = int(progress.get("total", 0))
    completed = int(progress.get("completed", 0))
    quarantined = list(progress.get("quarantined", ()))
    tiles = [
        _tile(
            f"{completed}/{total}", "points completed",
            meter=(completed / total if total else 0.0),
        ),
        _tile(str(int(progress.get("evaluated", 0))), "evaluated this run"),
        _tile(str(int(progress.get("cached", 0))), "served from store"),
        _tile(str(int(progress.get("reclaims", 0))), "leases reclaimed"),
        _tile(str(len(quarantined)), "quarantined"),
    ]
    sections: List[str] = []
    for view in views:
        delta_line = ""
        if view.delta is not None:
            delta_line = (
                f'<p class="delta">{html.escape(view.delta.describe())}</p>'
            )
        sections.append(
            f"<h2>{html.escape(view.title)}</h2>"
            + delta_line
            + '<p class="legend">'
            '<span class="mark" style="background:var(--series-1)"></span>'
            "Pareto front"
            '<span class="mark" style="background:var(--series-rest)"></span>'
            "dominated</p>"
            + _scatter_svg(view)
            + _front_table(view)
        )
    quarantine_html = ""
    if quarantined:
        items = "".join(f"<li>{html.escape(label)}</li>" for label in quarantined)
        quarantine_html = f"<h2>Quarantined points</h2><ul>{items}</ul>"
    sub = f'<p class="sub">{html.escape(subtitle)}</p>' if subtitle else ""
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_DASHBOARD_CSS}</style></head>"
        '<body class="viz-root">'
        f"<h1>{html.escape(title)}</h1>{sub}"
        f'<div class="tiles">{"".join(tiles)}</div>'
        f'{"".join(sections)}{quarantine_html}'
        "</body></html>\n"
    )
