"""End-to-end evaluation of design points: train → map → simulate → report.

:func:`evaluate_point` turns one :class:`~repro.explore.grid.DesignPointSpec`
into a typed :class:`DesignPoint` record carrying every trade-off axis the
paper argues about:

* **accuracy** — the trained Tsetlin machine's test-split accuracy (a
  function of clause count and booleanizer resolution, not of the circuit);
* **hardware correctness** — simulated decisions vs the golden
  :class:`~repro.tm.inference.InferenceModel` over the operand stream;
* **latency** — mean / p95 / max spacer→valid latency from the event-driven
  simulation (the synchronous baseline's latency is its clock period);
* **energy per inference** — switching activity priced through the library's
  per-cell energies (batch backend) or the event transition log;
* **area** — mapped cell area, with the sequential-cell breakdown.

Backends
--------
``backend="batch"`` (the sweep default) sources every functional quantity
from the vectorized batch backend over the full operand stream and runs the
event-driven simulation only on a short timing prefix
(``settings.timing_operands``); ``backend="bitpack"`` does the same through
the bit-packed 64-lane engine (fastest on long streams);
``backend="event"`` simulates the full stream event-driven, exactly like
the Table-I measurement.  All paths share :mod:`repro.analysis.measure`, so
a DSE point is measured the same way the paper-reproduction harnesses
measure.

:func:`run_sweep` fans a grid out through
:func:`repro.analysis.runner.run_parallel` under the pinned determinism
contract — every point is seeded from its spec and settings alone, so
``jobs=1`` and ``jobs=N`` produce bit-identical records — and consults a
:class:`~repro.explore.store.ResultStore` so unchanged points are never
re-evaluated.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.latency import summarize_latencies
from repro.analysis.measure import (
    Workload,
    batch_functional_pass,
    build_mapped_dual_rail,
    check_timing_backend,
    make_dual_rail_environment,
    truncate_workload,
)
from repro.analysis.experiments import measure_dual_rail, measure_single_rail
from repro.analysis.runner import run_parallel
from repro.analysis.throughput import dual_rail_throughput
from repro.circuits.library import CellLibrary, default_libraries
from repro.datapath.datapath import DatapathConfig
from repro.datapath.styles import check_style, is_dual_rail, style_config
from repro.obs import trace as _trace
from repro.tm.datasets import make_dataset
from repro.tm.inference import InferenceModel
from repro.tm.machine import TsetlinMachine

from .grid import DesignPointSpec, GridExpansion, ParameterGrid
from .store import ResultStore, library_fingerprint, point_key

#: Simulation backends the evaluator accepts.  The vectorized pair
#: ("batch", "bitpack") source functional quantities from one whole-stream
#: pass and event-simulate only the timing prefix; "event" times everything.
SWEEP_BACKENDS = ("batch", "event", "bitpack")


@dataclass(frozen=True)
class EvaluationSettings:
    """Everything held constant across one sweep (part of the store key).

    Attributes
    ----------
    num_features:
        Boolean feature count for Boolean datasets; raw sensor-channel count
        for continuous ones (the Boolean width is then
        ``num_features × booleanizer_levels``).
    train_samples / epochs / s:
        Training budget and specificity of the Tsetlin machine.
    operands:
        Length of the hardware operand stream (resampled from the test
        split) that functional quantities are measured over.
    timing_operands:
        Event-simulated prefix used for the latency columns under
        ``backend="batch"`` (the event backend times the full stream).
    seed:
        Root seed: dataset generation, training and operand resampling all
        derive from it, which is what makes a point a pure function of
        ``(spec, settings, backend)``.
    """

    num_features: int = 3
    train_samples: int = 240
    epochs: int = 10
    s: float = 3.0
    operands: int = 32
    timing_operands: int = 6
    seed: int = 2021

    def validate(self) -> "EvaluationSettings":
        """Raise :class:`ValueError` for unusable settings."""
        if self.num_features < 2:
            raise ValueError("num_features must be >= 2 (noisy-xor needs two)")
        if self.operands < 1 or self.timing_operands < 1:
            raise ValueError("operands and timing_operands must be >= 1")
        if self.epochs < 1 or self.train_samples < 10:
            raise ValueError("training budget too small to be meaningful")
        return self


#: The settings the CI smoke sweep pins.
SMOKE_SETTINGS = EvaluationSettings()


@dataclass
class DesignPoint:
    """One fully evaluated configuration — a row of the design space.

    ``metric(name)`` provides uniform access for the Pareto machinery; the
    ``to_dict``/``from_dict`` pair is the store and artifact serialization
    (plain JSON types only).  ``timing_backend`` records where the latency
    and energy columns came from: the event-driven environment (``"event"``,
    the seed behaviour) or the vectorized timing engine (``"batch"`` /
    ``"bitpack"`` — which also raises ``timed_operands`` to the full stream,
    since timing the whole stream is then as cheap as the functional pass).
    """

    spec: DesignPointSpec
    backend: str
    vdd: float
    num_features: int
    accuracy: float
    hardware_correctness: float
    mean_latency_ps: float
    p95_latency_ps: float
    max_latency_ps: float
    energy_per_inference_fj: float
    area_um2: float
    sequential_area_um2: float
    leakage_nw: float
    cell_count: int
    throughput_mops: float
    timed_operands: int
    timing_backend: str = "event"

    def metric(self, name: str) -> float:
        """Numeric metric by attribute name (raises for unknown names)."""
        value = getattr(self, name, None)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise KeyError(f"{name!r} is not a numeric metric of DesignPoint")
        return float(value)

    def to_dict(self) -> dict:
        """Plain-JSON representation (specs nested as a dict)."""
        record = asdict(self)
        record["spec"] = asdict(self.spec)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "DesignPoint":
        """Inverse of :meth:`to_dict` (raises on malformed records)."""
        data = dict(record)
        data["spec"] = DesignPointSpec(**data["spec"])
        return cls(**data)


# Per-process memo: workload construction (dataset + training) is by far the
# most expensive stage and is shared by every (library, style, vdd) variant
# of the same architecture, so each worker process trains it once.
_WORKLOAD_CACHE: Dict[Tuple, Tuple[Workload, float]] = {}


def build_spec_workload(
    spec: DesignPointSpec, settings: EvaluationSettings
) -> Tuple[Workload, float]:
    """Dataset + training + operand stream for *spec*; returns (workload, accuracy).

    The returned accuracy is the trained model's test-split accuracy — the
    "accuracy" axis of every design point sharing this architecture.
    Results are memoised per process on ``(dataset, clauses, levels,
    settings)``; the cache is transparent to determinism because the value
    is a pure function of the key.
    """
    key = (spec.dataset, spec.clauses_per_polarity, spec.booleanizer_levels, settings)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        return cached
    with _trace.span("dse.train", dataset=spec.dataset,
                     clauses=spec.clauses_per_polarity):
        dataset = make_dataset(
            spec.dataset,
            num_samples=settings.train_samples,
            num_features=settings.num_features,
            booleanizer_levels=spec.booleanizer_levels,
            seed=settings.seed,
        )
        num_features = dataset.num_features
        config = DatapathConfig(
            num_features=num_features,
            clauses_per_polarity=spec.clauses_per_polarity,
        )
        machine = TsetlinMachine(
            num_features=num_features,
            num_clauses=config.num_clauses,
            threshold=spec.clauses_per_polarity,
            s=settings.s,
            seed=settings.seed,
        )
        machine.fit(dataset.train_x, dataset.train_y, epochs=settings.epochs)
        model = InferenceModel.from_machine(machine)
        decisions = np.array(
            [model.decision(row) for row in dataset.test_x], dtype=np.int8
        )
        accuracy = (
            float(np.mean(decisions == dataset.test_y)) if decisions.size else 0.0
        )
        rng = np.random.default_rng(settings.seed)
        indices = rng.integers(0, dataset.test_x.shape[0], size=settings.operands)
        workload = Workload(
            config=config,
            exclude=model.exclude,
            feature_vectors=dataset.test_x[indices],
            model=model,
            description=(
                f"{spec.dataset} ({num_features} Boolean features, "
                f"{spec.clauses_per_polarity} clauses per polarity)"
            ),
        )
    _WORKLOAD_CACHE[key] = (workload, accuracy)
    return workload, accuracy


def _check_sweep_backend(backend: str) -> None:
    if backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of {SWEEP_BACKENDS}"
        )


def _resolved_vdd(spec: DesignPointSpec, library: CellLibrary) -> float:
    return float(
        spec.vdd if spec.vdd is not None else library.voltage_model.nominal_vdd
    )


def _evaluate_dual_rail(
    spec: DesignPointSpec,
    settings: EvaluationSettings,
    workload: Workload,
    accuracy: float,
    library: CellLibrary,
    backend: str,
    timing_backend: str,
    program_cache: Optional[str] = None,
) -> DesignPoint:
    config = style_config(spec.style, workload.config)
    timed = truncate_workload(workload, settings.timing_operands)
    with _trace.span("dse.simulate", backend=backend,
                     timing_backend=timing_backend):
        if timing_backend != "event" or backend == "event":
            # Both the fully-vectorized path (one timed pass over the *full*
            # stream — no prefix truncation) and the fully-event path are the
            # Table-I measurement itself: route through measure_dual_rail so
            # DSE axes cannot drift from the paper-artefact harness.
            timed = workload
            measurement = measure_dual_rail(
                replace_config(workload, config), library, vdd=spec.vdd,
                check_monotonic=False, backend="event",
                timing_backend=timing_backend, program_cache=program_cache,
            )
            correctness = measurement.correctness
            energy = measurement.power.energy_per_operation_fj
            latency = measurement.latency
            throughput = measurement.throughput_millions
            synthesis_metrics = measurement.synthesis.metrics()
        else:
            mapped = build_mapped_dual_rail(config, library, vdd=spec.vdd)
            functional = batch_functional_pass(
                mapped.datapath, mapped.circuit, replace_config(workload, config),
                library, vdd=spec.vdd, with_activity=True, backend=backend,
                program_cache=program_cache,
            )
            correctness = functional.correctness
            energy = functional.energy_per_inference_fj
            bench = make_dual_rail_environment(mapped)
            results = []
            for features in timed.feature_vectors:
                assignments = mapped.datapath.operand_assignments(
                    features, workload.exclude
                )
                results.append(bench.environment.infer(assignments))
            latency = summarize_latencies(results)
            throughput = dual_rail_throughput(
                results, grace_period=mapped.grace.td
            ).millions_per_second
            synthesis_metrics = mapped.synthesis.metrics()
    return DesignPoint(
        spec=spec,
        backend=backend,
        vdd=_resolved_vdd(spec, library),
        num_features=workload.config.num_features,
        accuracy=accuracy,
        hardware_correctness=correctness,
        mean_latency_ps=latency.average,
        p95_latency_ps=latency.p95,
        max_latency_ps=latency.maximum,
        energy_per_inference_fj=energy,
        area_um2=synthesis_metrics["area_um2"],
        sequential_area_um2=synthesis_metrics["sequential_area_um2"],
        leakage_nw=synthesis_metrics["leakage_nw"],
        cell_count=synthesis_metrics["cell_count"],
        throughput_mops=throughput,
        timed_operands=timed.num_operands,
        timing_backend=timing_backend,
    )


def replace_config(workload: Workload, config: DatapathConfig) -> Workload:
    """A view of *workload* carrying *config* (same operands and model)."""
    if config is workload.config:
        return workload
    return replace(workload, config=config)


def _evaluate_synchronous(
    spec: DesignPointSpec,
    settings: EvaluationSettings,
    workload: Workload,
    accuracy: float,
    library: CellLibrary,
    backend: str,
) -> DesignPoint:
    # The clocked baseline has no batch evaluator (flip-flop state is
    # inherently sequential), so all backends share the event measurement;
    # its latency is the STA clock period by definition, which is also why
    # timing_backend does not apply (the point records "event").
    measurement = measure_single_rail(workload, library, vdd=spec.vdd)
    period = measurement.clock_period_ps
    metrics = measurement.synthesis.metrics()
    return DesignPoint(
        spec=spec,
        backend=backend,
        vdd=_resolved_vdd(spec, library),
        num_features=workload.config.num_features,
        accuracy=accuracy,
        hardware_correctness=measurement.correctness,
        mean_latency_ps=period,
        p95_latency_ps=period,
        max_latency_ps=period,
        energy_per_inference_fj=measurement.power.energy_per_operation_fj,
        area_um2=metrics["area_um2"],
        sequential_area_um2=metrics["sequential_area_um2"],
        leakage_nw=metrics["leakage_nw"],
        cell_count=metrics["cell_count"],
        throughput_mops=measurement.throughput_millions,
        timed_operands=workload.num_operands,
    )


def evaluate_point(
    spec: DesignPointSpec,
    settings: EvaluationSettings = SMOKE_SETTINGS,
    backend: str = "batch",
    timing_backend: str = "event",
    program_cache: Optional[str] = None,
) -> DesignPoint:
    """Evaluate one design point end to end: train → map → simulate → report.

    ``timing_backend="batch"``/``"bitpack"`` sources the latency, energy and
    throughput axes from the vectorized timing engine over the *full*
    operand stream (the ``settings.timing_operands`` prefix only applies to
    the event-timed paths); ``"event"`` keeps the seed behaviour and is the
    equivalence oracle the timed axes are validated against.  Under a
    vectorized *timing_backend* the functional quantities come from the
    timed engine's own value planes, so *backend* is normalized to
    *timing_backend* — the recorded provenance (and the store key) name
    the engine that actually ran.

    ``program_cache`` (a directory path) serves the point's compiled
    program from the on-disk
    :class:`~repro.sim.program_cache.ProgramCache` instead of recompiling
    the netlist; it never changes what is measured (cached programs are
    bit-identical), so it is deliberately *not* part of the store key.
    """
    spec = spec.validate().normalized()
    settings.validate()
    _check_sweep_backend(backend)
    check_timing_backend(timing_backend)
    if timing_backend != "event":
        backend = timing_backend
    check_style(spec.style)
    if not spec.is_feasible():
        raise ValueError(
            f"{spec.label()} is infeasible: {spec.vdd} V is below the "
            f"functional floor of {spec.library}"
        )
    with _trace.span("dse.point", label=spec.label(), backend=backend):
        library = default_libraries()[spec.library]
        workload, accuracy = build_spec_workload(spec, settings)
        if is_dual_rail(spec.style):
            return _evaluate_dual_rail(
                spec, settings, workload, accuracy, library, backend,
                timing_backend, program_cache=program_cache,
            )
        return _evaluate_synchronous(
            spec, settings, workload, accuracy, library, backend
        )


def _sweep_worker(
    item: Tuple[DesignPointSpec, EvaluationSettings, str, str, Optional[str]]
) -> dict:
    """Process-pool work unit of :func:`run_sweep` (pickle-friendly dicts)."""
    spec, settings, backend, timing_backend, program_cache = item
    return evaluate_point(
        spec, settings, backend, timing_backend, program_cache=program_cache
    ).to_dict()


@dataclass
class SweepResult:
    """Everything :func:`run_sweep` produced, plus provenance counters."""

    points: List[DesignPoint]
    evaluated: int
    cached: int
    dropped_duplicates: int = 0
    dropped_infeasible: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requested points served from the result store."""
        total = self.evaluated + self.cached
        return self.cached / total if total else 0.0


def expand_grid(
    grid: Union[ParameterGrid, GridExpansion, Sequence[DesignPointSpec]],
) -> Tuple[List[DesignPointSpec], int, int]:
    """Normalize any sweep input into ``(specs, dropped_dup, dropped_inf)``.

    Accepts a declarative :class:`~repro.explore.grid.ParameterGrid`, an
    already-expanded :class:`~repro.explore.grid.GridExpansion`, or an
    explicit spec sequence — the shared front door of :func:`run_sweep` and
    the distributed queue driver, so both enumerate identical work lists.
    """
    if isinstance(grid, ParameterGrid):
        expansion = grid.expand()
        return (
            list(expansion.points),
            expansion.dropped_duplicates,
            expansion.dropped_infeasible,
        )
    if isinstance(grid, GridExpansion):
        return list(grid.points), grid.dropped_duplicates, grid.dropped_infeasible
    return [spec.validate().normalized() for spec in grid], 0, 0


def run_sweep(
    grid: Union[ParameterGrid, Sequence[DesignPointSpec]],
    settings: EvaluationSettings = SMOKE_SETTINGS,
    backend: str = "batch",
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    timing_backend: str = "event",
    program_cache: Optional[str] = None,
    workers: Optional[int] = None,
    **queue_options,
) -> SweepResult:
    """Evaluate a grid (or explicit spec list), cached and in parallel.

    Store lookups happen up front in the calling process; only misses are
    fanned out through :func:`~repro.analysis.runner.run_parallel` (one spec
    per work unit — chunk boundaries therefore cannot affect results), and
    fresh results are written back before returning.  The returned points
    are in grid-expansion order regardless of ``jobs`` or cache state.
    *timing_backend* is part of the store key (a timed point and an
    event-timed point are different measurements of the same spec); under a
    vectorized *timing_backend* the functional *backend* is normalized to
    it, exactly as :func:`evaluate_point` does, so equivalent sweeps share
    cache entries.

    ``program_cache`` (a directory path) is handed to every evaluated
    point; workers then load each unique design's compiled program from
    the shared :class:`~repro.sim.program_cache.ProgramCache` instead of
    recompiling it per process.  It is an execution knob, not a
    measurement parameter, so it is deliberately kept out of
    :class:`EvaluationSettings` (and hence out of the result-store key).

    ``workers=N`` switches execution to the distributed lease-based work
    queue (:func:`repro.explore.queue.run_queue_sweep`): *N* worker
    processes coordinate through the *store* directory (required in that
    mode), crash-resume comes for free, and extra ``queue_options``
    (``lease_ttl``, ``max_attempts``, ``sharded``, …) pass through.  The
    in-process ``jobs`` fan-out is ignored in queue mode.
    """
    _check_sweep_backend(backend)
    check_timing_backend(timing_backend)
    if timing_backend != "event":
        backend = timing_backend
    settings.validate()
    if workers is not None:
        from .queue import run_queue_sweep  # local: queue imports this module

        return run_queue_sweep(
            grid, settings=settings, backend=backend, workers=workers,
            store=store, timing_backend=timing_backend,
            program_cache=program_cache, **queue_options,
        )
    specs, dropped_dup, dropped_inf = expand_grid(grid)

    resolved: Dict[int, DesignPoint] = {}
    keys: List[Optional[str]] = [None] * len(specs)
    if store is not None:
        libraries = default_libraries()
        digests = {
            name: library_fingerprint(library) for name, library in libraries.items()
        }
        for index, spec in enumerate(specs):
            keys[index] = point_key(
                spec, settings, libraries[spec.library], backend,
                library_digest=digests[spec.library],
                timing_backend=timing_backend,
            )
            hit = store.get(keys[index])
            if hit is not None:
                resolved[index] = hit
    todo = [i for i in range(len(specs)) if i not in resolved]
    fresh = run_parallel(
        _sweep_worker,
        [
            (specs[i], settings, backend, timing_backend, program_cache)
            for i in todo
        ],
        jobs=jobs,
    )
    for index, record in zip(todo, fresh):
        point = DesignPoint.from_dict(record)
        resolved[index] = point
        if store is not None:
            store.put(keys[index], point)
    return SweepResult(
        points=[resolved[i] for i in range(len(specs))],
        evaluated=len(todo),
        cached=len(specs) - len(todo),
        dropped_duplicates=dropped_dup,
        dropped_infeasible=dropped_inf,
    )
