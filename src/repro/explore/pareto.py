"""Pareto-front extraction and ranking over evaluated design points.

The paper's claim is a *trade-off*, so the primary artefact of a sweep is
not a single winner but the non-dominated frontier.  This module is
metric-agnostic: a :class:`Metric` names any numeric :class:`DesignPoint`
attribute and a direction, and :func:`pareto_front` /
:func:`pareto_ranks` work over any metric tuple — two for the classic
accuracy/energy curve, more for a full multi-objective ranking.

Determinism: fronts and ranks are returned in a canonical order (sorted by
the metric values, ties broken by the spec itself), which is what lets CI
byte-compare the Pareto CSV between ``jobs=1`` and ``jobs=N`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Shorthand metric names accepted by :func:`parse_metric`.
METRIC_ALIASES = {
    "accuracy": ("accuracy", "max"),
    "correctness": ("hardware_correctness", "max"),
    "latency": ("mean_latency_ps", "min"),
    "tail-latency": ("p95_latency_ps", "min"),
    "max-latency": ("max_latency_ps", "min"),
    "energy": ("energy_per_inference_fj", "min"),
    "area": ("area_um2", "min"),
    "leakage": ("leakage_nw", "min"),
    "throughput": ("throughput_mops", "max"),
}


@dataclass(frozen=True)
class Metric:
    """One objective: a numeric DesignPoint attribute plus its direction."""

    name: str
    goal: str = "min"

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise ValueError(f"metric goal must be 'min' or 'max', got {self.goal!r}")

    def value(self, point) -> float:
        """The point's raw value of this metric."""
        return point.metric(self.name)

    def cost(self, point) -> float:
        """Minimisation-form value (negated for ``max`` metrics)."""
        raw = self.value(point)
        return -raw if self.goal == "max" else raw


def parse_metric(text: str) -> Metric:
    """Parse ``"alias"``, ``"attribute:min"`` or ``"attribute:max"``.

    Bare aliases come from :data:`METRIC_ALIASES` (``"energy"`` →
    ``energy_per_inference_fj`` minimised); explicit ``name:goal`` reaches
    any numeric attribute.
    """
    text = text.strip()
    if ":" in text:
        name, goal = text.rsplit(":", 1)
        return Metric(name=name.strip(), goal=goal.strip())
    if text in METRIC_ALIASES:
        name, goal = METRIC_ALIASES[text]
        return Metric(name=name, goal=goal)
    raise KeyError(
        f"unknown metric {text!r}; use an alias {sorted(METRIC_ALIASES)} "
        f"or an explicit 'attribute:min|max'"
    )


def parse_metric_pair(text: str) -> Tuple[Metric, Metric]:
    """Parse ``"accuracy,energy"``-style objective pairs for the CLI."""
    parts = [p for p in text.split(",") if p.strip()]
    if len(parts) != 2:
        raise ValueError(f"expected 'metric,metric', got {text!r}")
    return parse_metric(parts[0]), parse_metric(parts[1])


def dominates(a, b, metrics: Sequence[Metric]) -> bool:
    """``True`` when *a* is at least as good as *b* everywhere, better somewhere."""
    better_somewhere = False
    for metric in metrics:
        ca, cb = metric.cost(a), metric.cost(b)
        if ca > cb:
            return False
        if ca < cb:
            better_somewhere = True
    return better_somewhere


def _canonical_order(points: Iterable, metrics: Sequence[Metric]) -> List:
    # Ties break on the spec label (a unique string): comparing specs
    # directly would raise for mixed vdd=None / float values.
    return sorted(
        points,
        key=lambda p: (tuple(m.cost(p) for m in metrics), p.spec.label()),
    )


def pareto_front(points: Sequence, metrics: Sequence[Metric]) -> List:
    """The non-dominated subset of *points*, in canonical order.

    Duplicate metric vectors all survive (they dominate nothing and nothing
    dominates them), so equally-good alternatives stay visible.
    """
    if not metrics:
        raise ValueError("pareto_front needs at least one metric")
    candidates = list(points)
    front = [
        p for p in candidates
        if not any(dominates(q, p, metrics) for q in candidates)
    ]
    return _canonical_order(front, metrics)


def pareto_ranks(points: Sequence, metrics: Sequence[Metric]) -> List[int]:
    """Non-dominated sorting rank of every point (front = 0), input order.

    Rank *k* is the Pareto front of what remains after removing ranks
    ``< k`` — the standard NSGA-style layering, useful for "best 10
    configurations" style reports beyond the frontier itself.
    """
    if not metrics:
        raise ValueError("pareto_ranks needs at least one metric")
    remaining = list(range(len(points)))
    ranks = [0] * len(points)
    rank = 0
    while remaining:
        layer = [
            i for i in remaining
            if not any(
                dominates(points[j], points[i], metrics) for j in remaining if j != i
            )
        ]
        if not layer:  # pragma: no cover - only reachable with NaN metrics
            layer = list(remaining)
        for i in layer:
            ranks[i] = rank
        remaining = [i for i in remaining if i not in set(layer)]
        rank += 1
    return ranks


def format_front_csv(front: Sequence, metrics: Sequence[Metric]) -> str:
    """CSV text for an already-extracted (canonically ordered) front.

    Columns: the spec axes, then every requested metric.  The byte-stable
    output is the CI artifact compared across ``jobs`` values.
    """
    spec_fields = [
        "dataset", "clauses_per_polarity", "booleanizer_levels",
        "library", "style", "vdd",
    ]
    header = spec_fields + [m.name for m in metrics]
    lines = [",".join(header)]
    for point in front:
        row = []
        for field in spec_fields:
            value = getattr(point.spec, field)
            value = "nominal" if value is None else value
            row.append(str(value))
        for metric in metrics:
            row.append(f"{metric.value(point):.6g}")
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def front_csv(points: Sequence, metrics: Sequence[Metric]) -> str:
    """Deterministic CSV of the Pareto front of *points* over *metrics*."""
    return format_front_csv(pareto_front(points, metrics), metrics)
