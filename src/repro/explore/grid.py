"""Declarative parameter grids over the architecture family.

A :class:`ParameterGrid` names value lists for the six explored axes —
dataset × clause count × booleanizer resolution × cell library × datapath
style × supply voltage — and :meth:`ParameterGrid.expand` turns the cross
product into concrete, deduplicated, feasibility-filtered
:class:`DesignPointSpec` work units in a deterministic order (the order is
part of the jobs-invariance contract of the sweep).

Normalisation and filtering during expansion:

* Boolean datasets produce bits natively, so their ``booleanizer_levels``
  axis is normalised to 1 — the would-be duplicates are counted in
  :attr:`GridExpansion.dropped_duplicates` rather than silently evaluated
  twice;
* supply points below a library's minimum functional voltage are dropped as
  infeasible (:attr:`GridExpansion.dropped_infeasible`) — e.g. 0.4 V on the
  UMC LL library, which the paper's Figure 3 shows failing below 0.5 V.

Named grids (:func:`named_grid`) pin the configurations CI and the examples
use: ``smoke`` (the CI sweep, 72 points), ``nominal`` (a quick
nominal-voltage slice) and ``full`` (the overnight exploration).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.library import default_libraries
from repro.datapath.styles import DATAPATH_STYLES, check_style
from repro.tm.datasets import dataset_names, uses_booleanizer


@dataclass(frozen=True)
class DesignPointSpec:
    """One point of the design space — everything that varies across a sweep.

    Attributes
    ----------
    dataset:
        Registered dataset name (see :func:`repro.tm.datasets.dataset_names`).
    clauses_per_polarity:
        Tsetlin-machine capacity: clauses per vote polarity.
    booleanizer_levels:
        Thermometer-code resolution for continuous datasets (normalised to 1
        for Boolean datasets, whose generators produce bits natively).
    library:
        Cell library name (``"UMC LL"`` / ``"FULL DIFFUSION"``).
    style:
        Datapath style (see :data:`repro.datapath.styles.DATAPATH_STYLES`).
    vdd:
        Supply voltage in volts; ``None`` means the library's nominal supply.
    """

    dataset: str
    clauses_per_polarity: int
    booleanizer_levels: int
    library: str
    style: str
    vdd: Optional[float] = None

    def validate(self) -> "DesignPointSpec":
        """Raise :class:`ValueError`/:class:`KeyError` for unusable specs."""
        if self.dataset not in dataset_names():
            raise KeyError(
                f"unknown dataset {self.dataset!r}; expected one of {dataset_names()}"
            )
        if self.clauses_per_polarity < 1:
            raise ValueError("clauses_per_polarity must be >= 1")
        if self.booleanizer_levels < 1:
            raise ValueError("booleanizer_levels must be >= 1")
        if self.library not in default_libraries():
            raise KeyError(
                f"unknown library {self.library!r}; "
                f"expected one of {sorted(default_libraries())}"
            )
        check_style(self.style)
        if self.vdd is not None and self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        return self

    def normalized(self) -> "DesignPointSpec":
        """Canonical form: booleanizer resolution collapses for Boolean data."""
        if not uses_booleanizer(self.dataset) and self.booleanizer_levels != 1:
            return replace(self, booleanizer_levels=1)
        return self

    def is_feasible(self) -> bool:
        """``False`` when the supply is below the library's functional floor."""
        if self.vdd is None:
            return True
        model = default_libraries()[self.library].voltage_model
        return model.is_functional(self.vdd)

    def label(self) -> str:
        """Compact, unique, filesystem-safe identifier for reports and CSV."""
        vdd = "nom" if self.vdd is None else f"{self.vdd:g}V"
        lib = self.library.replace(" ", "-")
        return (
            f"{self.dataset}/c{self.clauses_per_polarity}"
            f"/b{self.booleanizer_levels}/{lib}/{self.style}/{vdd}"
        )


@dataclass(frozen=True)
class GridExpansion:
    """The outcome of expanding a grid: work units plus what was dropped.

    Nothing is dropped silently: the CLI logs both counters, so "covered
    the grid" always means exactly the points listed here.
    """

    points: Tuple[DesignPointSpec, ...]
    dropped_duplicates: int = 0
    dropped_infeasible: int = 0

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class ParameterGrid:
    """Value lists for every axis of the design space (a declarative sweep).

    ``expand()`` is deterministic: the cross product is walked in axis order
    (dataset, clauses, levels, library, style, vdd) with each axis's values
    in the order given here, then normalised and filtered.
    """

    datasets: Tuple[str, ...] = ("noisy-xor",)
    clauses_per_polarity: Tuple[int, ...] = (4,)
    booleanizer_levels: Tuple[int, ...] = (1,)
    libraries: Tuple[str, ...] = ("UMC LL", "FULL DIFFUSION")
    styles: Tuple[str, ...] = DATAPATH_STYLES
    vdds: Tuple[Optional[float], ...] = (None,)
    name: str = "custom"

    def axes(self) -> Dict[str, Sequence]:
        """The axis name → values mapping (for reports and hashing)."""
        return {
            "datasets": self.datasets,
            "clauses_per_polarity": self.clauses_per_polarity,
            "booleanizer_levels": self.booleanizer_levels,
            "libraries": self.libraries,
            "styles": self.styles,
            "vdds": self.vdds,
        }

    def expand(self) -> GridExpansion:
        """Enumerate the deduplicated, feasible design points of this grid."""
        seen = set()
        points: List[DesignPointSpec] = []
        duplicates = 0
        infeasible = 0
        for dataset, clauses, levels, library, style, vdd in product(
            self.datasets,
            self.clauses_per_polarity,
            self.booleanizer_levels,
            self.libraries,
            self.styles,
            self.vdds,
        ):
            spec = DesignPointSpec(
                dataset=dataset,
                clauses_per_polarity=clauses,
                booleanizer_levels=levels,
                library=library,
                style=style,
                vdd=vdd,
            ).validate().normalized()
            if spec in seen:
                duplicates += 1
                continue
            seen.add(spec)
            if not spec.is_feasible():
                infeasible += 1
                continue
            points.append(spec)
        return GridExpansion(
            points=tuple(points),
            dropped_duplicates=duplicates,
            dropped_infeasible=infeasible,
        )


#: The CI sweep: 72 feasible points (both libraries, all three styles, two
#: supplies) small enough to evaluate end to end in a couple of minutes.
SMOKE_GRID = ParameterGrid(
    name="smoke",
    datasets=("noisy-xor", "sensor-blobs"),
    clauses_per_polarity=(2, 4),
    booleanizer_levels=(1, 2),
    libraries=("UMC LL", "FULL DIFFUSION"),
    styles=DATAPATH_STYLES,
    vdds=(None, 0.8),
)

#: A quick nominal-voltage slice: the architecture axes only.
NOMINAL_GRID = ParameterGrid(
    name="nominal",
    datasets=("noisy-xor", "sensor-blobs"),
    clauses_per_polarity=(2, 4, 8),
    booleanizer_levels=(1, 2),
    libraries=("UMC LL", "FULL DIFFUSION"),
    styles=DATAPATH_STYLES,
    vdds=(None,),
)

#: The overnight exploration: every registered dataset, deep voltage scaling
#: (sub-0.5 V points are feasibility-filtered per library).
FULL_GRID = ParameterGrid(
    name="full",
    datasets=("noisy-xor", "parity", "majority", "sensor-blobs"),
    clauses_per_polarity=(2, 4, 8),
    booleanizer_levels=(1, 2, 4),
    libraries=("UMC LL", "FULL DIFFUSION"),
    styles=DATAPATH_STYLES,
    vdds=(None, 1.0, 0.8, 0.6, 0.4, 0.3),
)

_NAMED_GRIDS = {grid.name: grid for grid in (SMOKE_GRID, NOMINAL_GRID, FULL_GRID)}


def grid_names() -> List[str]:
    """The registered named grids, sorted."""
    return sorted(_NAMED_GRIDS)


def named_grid(name: str) -> ParameterGrid:
    """Look up a named grid (``smoke`` / ``nominal`` / ``full``)."""
    try:
        return _NAMED_GRIDS[name]
    except KeyError:
        raise KeyError(f"unknown grid {name!r}; expected one of {grid_names()}")
