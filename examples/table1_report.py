"""Regenerate Table I: single-rail vs dual-rail on both libraries.

Builds the synchronous baseline and the proposed dual-rail datapath for the
same trained Tsetlin-machine workload, synthesises both onto the UMC LL and
FULL DIFFUSION library stand-ins, simulates them, and prints the Table-I
columns (cell area, sequential area, average power, leakage, latencies,
reset time, throughput).

Run with:  python examples/table1_report.py [--backend batch]
           [--timing-backend batch] [--jobs N]

The four library × design measurements are independent work units, so
``--jobs 4`` runs them concurrently.  ``--backend batch`` sources the
dual-rail correctness figures from the vectorized batch backend (timing and
power stay event-driven).  ``--timing-backend batch`` goes further: the
dual-rail latency, power and throughput columns come from the vectorized
data-dependent timing engine — the whole-table wall-clock lever — and match
the event-driven run within float re-association accuracy (see
docs/guides/timing-and-energy-model.md).
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    EXPERIMENT_BACKENDS,
    TIMING_BACKENDS,
    default_workload,
    format_table1,
    run_table1,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=EXPERIMENT_BACKENDS, default="event",
                        help="simulation backend for dual-rail functional checks")
    parser.add_argument("--timing-backend", choices=TIMING_BACKENDS, default="event",
                        help="timing source for the dual-rail latency/power "
                             "columns (batch/bitpack = vectorized timing engine)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel measurements (0 = CPU count)")
    args = parser.parse_args()

    workload = default_workload(num_features=4, clauses_per_polarity=8, num_operands=10)
    print(f"Workload: {workload.description}\n")
    rows, raw = run_table1(workload, backend=args.backend, jobs=args.jobs,
                           timing_backend=args.timing_backend)
    print(format_table1(rows))

    print("\nDerived comparisons:")
    for library in ("UMC LL", "FULL DIFFUSION"):
        single = raw[f"{library}/single-rail"]
        dual = raw[f"{library}/dual-rail"]
        print(f"  {library}:")
        print(f"    dual/single cell area ratio : "
              f"{dual.synthesis.area.total / single.synthesis.area.total:.2f}")
        print(f"    single clock period / dual avg latency : "
              f"{single.clock_period_ps / dual.latency.average:.2f}x")
        print(f"    dual energy per inference  : "
              f"{dual.power.energy_per_operation_fj:.0f} fJ")
        print(f"    single energy per inference: "
              f"{single.power.energy_per_operation_fj:.0f} fJ")
        print(f"    reduced-CD grace period td : {dual.grace.td:.0f} ps")


if __name__ == "__main__":
    main()
