"""Quickstart: train a Tsetlin machine, generate the dual-rail datapath, run one inference.

This walks the full flow of the reproduction in miniature:

1. train a Tsetlin machine on the noisy-XOR dataset (software),
2. extract its exclude actions (the ``e`` inputs of the paper's datapath),
3. generate the self-timed dual-rail inference datapath with reduced
   completion detection,
4. simulate a handful of operands through the spacer/valid protocol and
   compare the hardware verdicts against the software golden model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import default_workload, measure_dual_rail
from repro.circuits import umc_ll_library


def main() -> None:
    library = umc_ll_library()
    print("Training a Tsetlin machine on noisy-XOR and building its datapath...")
    workload = default_workload(num_features=4, clauses_per_polarity=8, num_operands=6)
    print(f"  workload: {workload.description}")

    measurement = measure_dual_rail(workload, library)
    area = measurement.synthesis.area
    print(f"\nDual-rail datapath on {library.name}:")
    print(f"  cells            : {area.cell_count}")
    print(f"  cell area        : {area.total:.0f} um^2 "
          f"(sequential {area.sequential:.0f}, CD {area.completion_detection:.0f})")
    print(f"  grace period td  : {measurement.grace.td:.1f} ps")
    print(f"  avg latency      : {measurement.latency.average:.0f} ps")
    print(f"  max latency      : {measurement.latency.maximum:.0f} ps")
    print(f"  t(V->S)          : {measurement.latency.reset_time:.0f} ps")
    print(f"  throughput       : {measurement.throughput_millions:.0f} M inferences/s")
    print(f"  avg power        : {measurement.power.total_uw:.0f} uW")

    print("\nPer-operand verdicts (hardware vs software golden model):")
    for features, verdict, latency in zip(
        workload.feature_vectors, measurement.verdicts, measurement.latencies_ps
    ):
        golden = workload.model.trace(features)
        print(f"  f={list(map(int, features))}  hardware={verdict:>7}  "
              f"golden={golden.comparator_verdict:>7}  latency={latency:6.0f} ps")

    status = "MATCH" if measurement.correctness == 1.0 else "MISMATCH"
    print(f"\nFunctional comparison against the golden model: {status} "
          f"({measurement.correctness * 100:.0f}% of operands)")


if __name__ == "__main__":
    main()
