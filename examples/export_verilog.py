"""End-to-end HDL export: train, build, map, emit, round-trip verify.

The full pipeline from software model to verified RTL:

1. train a Tsetlin machine on noisy-XOR and extract its exclude masks,
2. generate the self-timed dual-rail inference datapath,
3. technology-map it onto the UMC LL library,
4. emit structural Verilog (flat + per-block hierarchical) with behavioral
   primitives and a self-checking spacer/valid handshake testbench,
5. prove the emission correct by re-parsing the RTL and batch-equivalence
   checking it gate-for-gate against the mapped netlist (plus byte-stable
   re-emission).

Run with:  python examples/export_verilog.py [--out DIR] [--operands N]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import default_workload, run_hdl_export
from repro.circuits import umc_ll_library


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="hdl_export",
                        help="directory for the generated RTL (default: hdl_export)")
    parser.add_argument("--operands", type=int, default=12,
                        help="testbench operand count (default: 12)")
    parser.add_argument("--vectors", type=int, default=256,
                        help="round-trip equivalence vectors (default: 256)")
    args = parser.parse_args(argv)

    library = umc_ll_library()
    print("Training a Tsetlin machine on noisy-XOR and building its datapath...")
    workload = default_workload(num_features=4, clauses_per_polarity=8,
                                num_operands=args.operands)
    print(f"  workload: {workload.description}")

    print(f"Mapping onto {library.name} and exporting Verilog to {args.out!r}...")
    report = run_hdl_export(
        workload=workload,
        library=library,
        directory=args.out,
        testbench_operands=args.operands,
        roundtrip_vectors=args.vectors,
    )

    print()
    print(report.summary())
    print()
    roundtrip = report.export.roundtrip
    print("Round-trip proof:")
    print(f"  parsed netlist equivalent : {roundtrip.equivalence.equivalent} "
          f"({roundtrip.equivalence.mode}, {roundtrip.equivalence.vectors} vectors, "
          f"{roundtrip.equivalence.compared_nets} nets compared)")
    print(f"  re-emission byte-identical: {roundtrip.byte_stable}")
    print()
    if not report.ok:
        print("HDL EXPORT FAILED")
        return 1
    print("HDL EXPORT OK — RTL, primitives and testbench written to", args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
