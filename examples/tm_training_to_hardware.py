"""End-to-end edge-inference scenario: sensor data → trained TM → self-timed hardware.

Models the paper's motivating application (always-on inference on a
battery-powered sensing device):

1. generate a booleanised sensor-like dataset (Gaussian feature frames
   through a thermometer encoder),
2. train a Tsetlin machine classifier on it,
3. generate the dual-rail inference datapath from the learnt clause
   composition,
4. compare the self-timed implementation against the synchronous baseline
   for the same workload (latency, energy per inference, area).

Run with:  python examples/tm_training_to_hardware.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Workload, measure_dual_rail, measure_single_rail
from repro.circuits import umc_ll_library
from repro.datapath import DatapathConfig
from repro.tm import InferenceModel, TsetlinMachine, sensor_blobs


def main() -> None:
    library = umc_ll_library()

    print("Generating a booleanised sensor dataset (thermometer-encoded blobs)...")
    dataset = sensor_blobs(num_samples=240, num_raw_features=2, num_classes=2,
                           thermometer_levels=2, seed=9)
    print(f"  {dataset.summary()}")

    print("\nTraining a Tsetlin machine classifier...")
    machine = TsetlinMachine(num_features=dataset.num_features, num_clauses=16,
                             threshold=8, s=3.0, seed=9)
    history = machine.fit(dataset.train_x, dataset.train_y, epochs=20)
    print(f"  training accuracy: {history.final_accuracy * 100:.1f}%")
    print(f"  test accuracy    : {machine.accuracy(dataset.test_x, dataset.test_y) * 100:.1f}%")
    print(f"  included literals: {machine.team.include_count()} "
          f"of {machine.num_clauses * machine.num_literals}")

    print("\nGenerating the inference hardware from the learnt clause composition...")
    model = InferenceModel.from_machine(machine)
    config = DatapathConfig(num_features=dataset.num_features, clauses_per_polarity=8)
    operands = dataset.test_x[:8]
    workload = Workload(config=config, exclude=model.exclude,
                        feature_vectors=np.asarray(operands), model=model,
                        description="sensor-blobs classifier")

    dual = measure_dual_rail(workload, library)
    single = measure_single_rail(workload, library)

    print(f"\n{'':28}{'Single-rail':>14}{'Dual-rail':>14}")
    print(f"{'cell area (um^2)':28}{single.synthesis.area.total:14.0f}"
          f"{dual.synthesis.area.total:14.0f}")
    print(f"{'sequential area (um^2)':28}{single.synthesis.area.sequential:14.0f}"
          f"{dual.synthesis.area.sequential:14.0f}")
    print(f"{'latency (ps)':28}{single.clock_period_ps:14.0f}"
          f"{dual.latency.average:14.0f}")
    print(f"{'energy / inference (fJ)':28}{single.power.energy_per_operation_fj:14.0f}"
          f"{dual.power.energy_per_operation_fj:14.0f}")
    print(f"{'throughput (M inf/s)':28}{single.throughput_millions:14.0f}"
          f"{dual.throughput_millions:14.0f}")
    print(f"{'correct vs golden model':28}{single.correctness * 100:13.0f}%"
          f"{dual.correctness * 100:13.0f}%")

    print("\nThe dual-rail datapath answers in "
          f"{single.clock_period_ps / dual.latency.average:.2f}x less time per average "
          "inference than the synchronous clock period, at a comparable cell area.")


if __name__ == "__main__":
    main()
