"""Operand and delay probability distributions (the paper's contribution 2).

Shows how the distribution of Tsetlin-machine vote counts translates into
the data-dependent latency of the early-propagating comparator: operands
whose positive/negative counts differ at a high-order bit finish earlier
than operands that must be compared all the way down to the LSB.

Run with:  python examples/latency_distribution.py [--timing-backend batch]
           [--operands N]

``--timing-backend batch`` (or ``bitpack``) measures the per-operand
latencies through the vectorized data-dependent timing engine instead of
event-simulating every handshake — the lever that makes 10k-operand
distribution studies practical (see docs/guides/timing-and-energy-model.md).
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    TIMING_BACKENDS,
    default_workload,
    format_histogram,
    latency_histogram,
    latency_vs_decision_depth,
    mean_latency_by_depth,
    measure_dual_rail,
    operand_distributions,
)
from repro.circuits import umc_ll_library
from repro.obs.profile import tracing_session


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timing-backend", choices=TIMING_BACKENDS, default="event",
                        help="timing source for the per-operand latencies "
                             "(batch/bitpack = vectorized timing engine)")
    parser.add_argument("--operands", type=int, default=16,
                        help="operand-stream length to measure")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome/Perfetto trace of the measurement "
                             "to this path")
    args = parser.parse_args()

    library = umc_ll_library()
    workload = default_workload(num_features=4, clauses_per_polarity=8,
                                num_operands=args.operands)
    print(f"Workload: {workload.description}\n")

    width = workload.config.count_width
    dists = operand_distributions(workload.model, workload.feature_vectors, width)
    print("Positive-vote distribution:")
    print(format_histogram(dists["positive_votes"].counts, label="votes"))
    print("\nVote-difference (positive - negative) distribution:")
    print(format_histogram(dists["vote_difference"].counts, label="diff"))
    print("\nComparator decision-depth distribution (1 = decided at the MSB):")
    print(format_histogram(dists["decision_depth"].counts, label="depth"))

    print(f"\nMeasuring per-operand latency "
          f"(timing_backend={args.timing_backend})...")
    with tracing_session(args.trace_out):
        measurement = measure_dual_rail(workload, library,
                                        timing_backend=args.timing_backend)
    if args.trace_out:
        print(f"Trace -> {args.trace_out}")

    class _R:  # minimal adapter for latency_histogram / depth correlation
        def __init__(self, latency):
            self.t_s_to_v = latency

    results = [_R(latency) for latency in measurement.latencies_ps]
    print("\nLatency histogram (50 ps bins):")
    print(format_histogram(latency_histogram(results, 50.0).counts, label="bin"))

    pairs = latency_vs_decision_depth(results, workload.model,
                                      list(workload.feature_vectors), width)
    print("\nMean latency by comparator decision depth:")
    for depth, latency in mean_latency_by_depth(pairs).items():
        print(f"  depth {depth}: {latency:7.1f} ps")

    print(f"\nAverage latency {measurement.latency.average:.0f} ps, "
          f"worst case {measurement.latency.maximum:.0f} ps "
          f"(early-propagation gain {measurement.latency.early_propagation_gain:.2f}x)")


if __name__ == "__main__":
    main()
