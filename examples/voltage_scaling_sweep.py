"""Figure 3: dual-rail datapath latency versus supply voltage (0.25 V – 1.2 V).

Sweeps the supply of the subthreshold-capable FULL DIFFUSION library
stand-in and simulates the self-timed datapath at every point.  Because the
circuit is quasi-delay-insensitive with the reduced-CD timing assumption
derived per voltage, it keeps working without modification across the whole
range — only its latency scales with gate delay, exploding exponentially
below ~0.6 V exactly as in the paper's Figure 3.

Run with:  python examples/voltage_scaling_sweep.py [--backend batch]
           [--timing-backend batch] [--jobs N]

``--jobs N`` sweeps N voltage points in parallel.  ``--backend batch``
sources the per-point correctness checks from the vectorized batch backend
(latencies stay event-driven).  ``--timing-backend batch`` makes each point
itself cheap: the latencies the figure plots come from the vectorized
data-dependent timing engine, matching the event-driven sweep within float
re-association accuracy (see docs/guides/timing-and-energy-model.md).
"""

from __future__ import annotations

import argparse
import math

from repro.analysis import (
    EXPERIMENT_BACKENDS,
    TIMING_BACKENDS,
    default_workload,
    format_figure3,
    run_figure3,
)
from repro.circuits import full_diffusion_library
from repro.obs.profile import tracing_session

VOLTAGES = (0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=EXPERIMENT_BACKENDS, default="event",
                        help="simulation backend for the functional checks")
    parser.add_argument("--timing-backend", choices=TIMING_BACKENDS, default="event",
                        help="timing source for the plotted latencies "
                             "(batch/bitpack = vectorized timing engine)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel voltage points (0 = CPU count)")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome/Perfetto trace of the sweep to this path")
    args = parser.parse_args()

    library = full_diffusion_library()
    workload = default_workload(num_features=4, clauses_per_polarity=8, num_operands=6)
    print(f"Workload: {workload.description}")
    print(f"Library : {library.name} ({library.description})")
    print(f"Runner  : backend={args.backend}, "
          f"timing_backend={args.timing_backend}, jobs={args.jobs}\n")

    with tracing_session(args.trace_out):
        points = run_figure3(workload, voltages=VOLTAGES, library=library,
                             operands_per_point=3, backend=args.backend,
                             jobs=args.jobs, timing_backend=args.timing_backend)
    if args.trace_out:
        print(f"Trace -> {args.trace_out}")
    print(format_figure3(points))

    nominal = next(p for p in points if abs(p.vdd - 1.2) < 1e-9)
    lowest = next(p for p in points if abs(p.vdd - 0.25) < 1e-9)
    print(f"\nLatency at 0.25 V is {lowest.avg_latency_ps / nominal.avg_latency_ps:.0f}x "
          f"the nominal-voltage latency; functional correctness held at every point: "
          f"{all(p.correct for p in points if p.functional)}")

    print("\nLog-scale latency curve (ASCII):")
    for p in points:
        if not p.functional:
            continue
        bar = "#" * int(round(8 * (math.log10(p.avg_latency_ps) - 2)))
        print(f"  {p.vdd:4.2f} V  {p.avg_latency_ps:12.0f} ps  {bar}")


if __name__ == "__main__":
    main()
