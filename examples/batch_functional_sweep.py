"""Vectorized functional sweep: thousands of inferences in one batch pass.

Demonstrates the vectorized simulation backends (see
:mod:`repro.sim.backends`): the whole operand stream is evaluated through
the levelized ``batch`` engine — or the bit-packed 64-lane ``bitpack``
engine — in a single pass, returning per-operand verdicts, correctness
against the software golden model, and cycle-level switching activity
priced into an energy-per-inference estimate — no event-driven simulation
anywhere on the path.

Run with:  python examples/batch_functional_sweep.py [--samples 5000] \
               [--backend bitpack]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import FUNCTIONAL_BACKENDS, functional_sweep, random_workload
from repro.circuits import umc_ll_library


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=5000,
                        help="operands to push through the vectorized backend")
    parser.add_argument("--backend", choices=FUNCTIONAL_BACKENDS, default="batch",
                        help="vectorized backend (bitpack = 64 samples per word)")
    args = parser.parse_args()

    library = umc_ll_library()
    workload = random_workload(num_features=4, clauses_per_polarity=8,
                               num_operands=args.samples, seed=11)
    print(f"Workload: {workload.description} ({args.samples} operands)")
    print(f"Library : {library.name}\n")

    start = time.perf_counter()
    sweep = functional_sweep(workload, library, backend=args.backend)
    elapsed = time.perf_counter() - start

    counts = {label: sweep.verdicts.count(label) for label in ("less", "equal", "greater")}
    print(f"Backend            : {sweep.backend}")
    print(f"Samples            : {sweep.samples}")
    print(f"Correctness        : {sweep.correctness:.4f} (vs InferenceModel)")
    print(f"Verdict histogram  : {counts}")
    print(f"Energy / inference : {sweep.energy_per_inference_fj:.1f} fJ (estimated)")
    print(f"Wall clock         : {elapsed * 1e3:.1f} ms "
          f"-> {sweep.samples / elapsed:,.0f} inferences/sec")


if __name__ == "__main__":
    main()
