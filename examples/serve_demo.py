"""Serve a trained datapath model through the micro-batching gateway.

Spins up :class:`repro.serve.MicroBatchGateway` over a random-composition
workload, drives it with the built-in load generator (open-loop Poisson or
closed-loop), and prints the SLO report: achieved throughput, batching
efficiency, and p50/p95/p99/max end-to-end latency.  Optionally verifies
that every gateway classification is bit-identical to a direct
:func:`repro.analysis.batch_functional_pass` over the same operands
(``--check-determinism``) and writes a ``BENCH_serve.json`` record for the
CI regression gate (``--bench-json``).

Run with:  python examples/serve_demo.py [--requests 512] [--mode closed] \
               [--backend bitpack] [--check-determinism]
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.analysis import (
    FUNCTIONAL_BACKENDS,
    batch_functional_pass,
    random_workload,
    resolve_library,
)
from repro.datapath.datapath import DualRailDatapath
from repro.obs.profile import tracing_session
from repro.serve import (
    GatewayConfig,
    LOAD_MODES,
    LoadConfig,
    LoadReport,
    MicroBatchGateway,
    ModelSpec,
    run_load,
)


def build_parser() -> argparse.ArgumentParser:
    """The demo's CLI (flags are pinned by ``tests/docs/test_serving_guide.py``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=512,
                        help="total requests to issue")
    parser.add_argument("--mode", choices=LOAD_MODES, default="closed",
                        help="arrival process: open (Poisson) or closed loop")
    parser.add_argument("--rate", type=float, default=1000.0,
                        help="open-loop offered rate in requests/sec")
    parser.add_argument("--concurrency", type=int, default=64,
                        help="closed-loop virtual clients (one request in flight each)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="lanes per micro-batch (64 = one full bitpack word)")
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="flush deadline after the request that opens a word")
    parser.add_argument("--queue-depth", type=int, default=256,
                        help="bounded admission queue; beyond it requests are rejected")
    parser.add_argument("--backend", choices=FUNCTIONAL_BACKENDS, default="bitpack",
                        help="vectorized backend the workers classify with")
    parser.add_argument("--workers", type=int, default=0,
                        help="0 = in-process worker; N = compile-once process pool")
    parser.add_argument("--attribution", action="store_true",
                        help="attach simulated per-request hardware latency/energy")
    parser.add_argument("--features", type=int, default=4,
                        help="datapath feature count of the served model")
    parser.add_argument("--clauses", type=int, default=8,
                        help="clauses per polarity of the served model")
    parser.add_argument("--seed", type=int, default=2021,
                        help="seeds the model, operands and Poisson clock")
    parser.add_argument("--bench-json", type=str, default=None,
                        help="write a BENCH_serve.json record to this path")
    parser.add_argument("--trace-out", type=str, default=None,
                        help="write a Chrome/Perfetto trace of the run to this path "
                             "(.json = trace_event, .jsonl = raw span records)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="verify gateway replies == direct batch_functional_pass")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="exit non-zero if achieved req/s falls below this")
    return parser


async def serve_and_measure(args: argparse.Namespace):
    """Start the gateway, drive it, stop it; returns (report, workload)."""
    workload = random_workload(
        num_features=args.features,
        clauses_per_polarity=args.clauses,
        num_operands=min(args.requests, 256),
        seed=args.seed,
    )
    spec = ModelSpec.from_workload(
        workload, backend=args.backend, attribution=args.attribution
    )
    config = GatewayConfig(
        max_batch=args.max_batch,
        max_delay_ms=args.deadline_ms,
        queue_depth=args.queue_depth,
        workers=args.workers,
    )
    load = LoadConfig(
        mode=args.mode,
        requests=args.requests,
        rate_rps=args.rate,
        concurrency=args.concurrency,
        seed=args.seed,
    )
    gateway = MicroBatchGateway(spec, config)
    await gateway.start()
    try:
        report = await run_load(gateway, workload.feature_vectors, load)
    finally:
        await gateway.stop()
    return report, workload


def check_determinism(report: LoadReport, workload, backend: str) -> bool:
    """Compare every completed reply against a direct vectorized batch pass."""
    datapath = DualRailDatapath(workload.config)
    sweep = batch_functional_pass(
        datapath,
        datapath.circuit,
        workload,
        resolve_library(None),
        with_activity=False,
        backend=backend,
    )
    operands = workload.feature_vectors.shape[0]
    mismatches = sum(
        1
        for verdict, decision, index in zip(
            report.verdicts, report.decisions, report.request_indices
        )
        if (verdict, decision)
        != (sweep.verdicts[index % operands], sweep.decisions[index % operands])
    )
    if mismatches:
        print(f"determinism         : FAIL ({mismatches} mismatched replies)")
        return False
    print(
        "determinism         : OK "
        f"(gateway == batch_functional_pass on {len(report.verdicts)} replies)"
    )
    return True


def main(argv=None) -> int:
    """Run the demo; returns a process exit code."""
    args = build_parser().parse_args(argv)
    with tracing_session(args.trace_out):
        report, workload = asyncio.run(serve_and_measure(args))
    if args.trace_out:
        print(f"trace               : wrote {args.trace_out}")
    for line in report.summary_lines():
        print(line)
    ok = True
    if args.check_determinism:
        ok = check_determinism(report, workload, args.backend) and ok
    if args.bench_json:
        report.write_bench_json(args.bench_json)
        print(f"bench record        : wrote {args.bench_json}")
    if args.min_throughput is not None and report.achieved_rps < args.min_throughput:
        print(
            f"throughput gate     : FAIL ({report.achieved_rps:,.0f} < "
            f"{args.min_throughput:,.0f} req/s)"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
