"""Summarize or convert a trace written by ``--trace-out``.

Every example CLI (and anything wrapped in
:func:`repro.obs.profile.tracing_session`) can dump the spans of a run
either as a Chrome/Perfetto ``trace_event`` JSON (``.json``) or as raw
span records, one JSON object per line (``.jsonl``).  This tool answers
the two follow-up questions:

* *where did the time go?* — ``--top N`` prints a self-time table
  (duration minus direct children, aggregated per span name), which is the
  flame-graph question without leaving the terminal;
* *can I look at it in Perfetto?* — ``--to-perfetto out.json`` converts a
  raw ``.jsonl`` span dump into the ``trace_event`` format that
  https://ui.perfetto.dev and ``chrome://tracing`` open directly.

Run with:  python examples/trace_report.py prof.json [--top 10]
           python examples/trace_report.py prof.jsonl --to-perfetto prof.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.profile import format_table, self_time_table, to_trace_events
from repro.obs.schema import validate_trace_events
from repro.obs.trace import SpanRecord, load_jsonl


def load_records(path: Path):
    """Load span records from a ``.jsonl`` span dump or a trace_event JSON."""
    if path.suffix == ".jsonl":
        return load_jsonl(path)
    payload = json.loads(path.read_text())
    validate_trace_events(payload)
    records = []
    for event in payload["traceEvents"]:
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", "")
        parent_id = args.pop("parent_id", None)
        records.append(
            SpanRecord(
                name=event["name"],
                span_id=span_id,
                parent_id=parent_id,
                start_us=float(event["ts"]),
                duration_us=float(event["dur"]),
                pid=int(event["pid"]),
                tid=int(event["tid"]),
                attrs=args,
            )
        )
    return records


def main(argv=None) -> int:
    """Run the report; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path,
                        help="trace file from --trace-out (.json or .jsonl)")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the self-time table (0 = all)")
    parser.add_argument("--to-perfetto", type=Path, default=None,
                        help="also write a Chrome/Perfetto trace_event JSON here")
    args = parser.parse_args(argv)

    records = load_records(args.trace)
    if not records:
        print(f"{args.trace}: no span records", file=sys.stderr)
        return 1

    pids = {record.pid for record in records}
    total_us = sum(r.duration_us for r in records if r.parent_id is None)
    print(f"{args.trace}: {len(records)} spans across {len(pids)} process(es), "
          f"{total_us / 1e3:.2f} ms in root spans\n")
    rows = self_time_table(records, top=args.top if args.top > 0 else None)
    print("\n".join(format_table(rows)))

    if args.to_perfetto is not None:
        payload = to_trace_events(records)
        validate_trace_events(payload)
        args.to_perfetto.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nPerfetto trace -> {args.to_perfetto} "
              f"(open at https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
