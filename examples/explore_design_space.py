"""Design-space exploration driver: Pareto sweeps over the architecture family.

Expands a named parameter grid (dataset × clauses × booleanizer resolution ×
library × datapath style × supply voltage), evaluates every point end to end
(train → map → simulate → report) through ``repro.explore``, and emits:

* ``<out>/dse_points.json``  — every evaluated :class:`DesignPoint`;
* ``<out>/pareto_<a>_vs_<b>.csv`` — one deterministic Pareto-front CSV per
  requested metric pair;
* ``BENCH_dse.json`` (``--bench-json``) — the sweep provenance record CI
  uploads as an artifact (point counts, cache hit rate, front sizes).

Results are cached in a content-hash keyed store (``--store``), so re-runs
only evaluate new or invalidated points; ``--expect-cached`` turns a re-run
into an assertion that *everything* was served from the store.
``--check-determinism`` re-evaluates the grid serially without the store and
fails unless every point and every front is bit-identical — the jobs=1 ≡
jobs=N contract CI enforces.

``--workers N`` switches from the in-process pool to the distributed work
queue (``repro.explore.queue``): N worker processes coordinate through
lease files in the store, so a killed run resumes where it stopped
(``--resume`` asserts a previous run's manifest is actually there) and the
same store directory can be drained from several hosts with
``--shard i/n``.  ``--chaos-kill-after M`` SIGKILLs one worker after M
completions (the CI crash-resume drill); an incomplete queue exits with
code 3 — rerun the same command to finish.  ``--front-history`` appends
changed Pareto fronts to a byte-stable cross-run history file and
``--dashboard`` renders the whole run as a static HTML page.

Run with:  python examples/explore_design_space.py --grid smoke --jobs 4
     or:   python examples/explore_design_space.py --grid smoke --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.explore import (
    DseWorker,
    FrontHistory,
    FrontView,
    ResultStore,
    SWEEP_BACKENDS,
    format_front_csv,
    grid_names,
    named_grid,
    pareto_front,
    parse_metric_pair,
    parse_shard,
    render_dashboard,
    run_sweep,
    write_manifest,
)
from repro.explore.grid import GridExpansion
from repro.obs.profile import tracing_session

#: Exit code for a queue sweep that stopped before draining (killed worker,
#: quarantined points): rerun the same command to resume.
EXIT_INCOMPLETE = 3

#: Metric pairs swept by default: the paper's headline trade-offs.
DEFAULT_PARETO_PAIRS = ("accuracy,energy", "accuracy,latency", "latency,area")


def _front_filename(pair) -> str:
    a, b = pair
    return f"pareto_{a.name}_vs_{b.name}.csv"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--grid", default="smoke", choices=grid_names(),
                        help="named parameter grid to expand (default: smoke)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel evaluation processes (results are jobs-invariant)")
    parser.add_argument("--backend", default="batch", choices=SWEEP_BACKENDS,
                        help="functional evaluation backend (default: batch)")
    parser.add_argument("--timing-backend", default="event", choices=SWEEP_BACKENDS,
                        help="timing source for the latency/energy axes: 'event' "
                             "(per-operand event simulation, the oracle) or "
                             "'batch'/'bitpack' (vectorized timing engine over "
                             "the full operand stream)")
    parser.add_argument("--store", default=".dse_store",
                        help="result-store directory; 'none' disables caching")
    parser.add_argument("--program-cache", default=None,
                        help="compiled-program cache directory shared by all "
                             "evaluation workers (each unique netlist is "
                             "compiled once and served from disk afterwards)")
    parser.add_argument("--out", default="dse_out",
                        help="artifact directory for dse_points.json + Pareto CSVs")
    parser.add_argument("--bench-json", default=None,
                        help="also write the BENCH_dse.json provenance record here")
    parser.add_argument("--pareto", action="append", default=None,
                        metavar="METRIC,METRIC",
                        help="metric pair to extract a front for (repeatable; "
                             f"default: {', '.join(DEFAULT_PARETO_PAIRS)})")
    parser.add_argument("--min-points", type=int, default=0,
                        help="fail unless at least this many design points were swept")
    parser.add_argument("--max-points", type=int, default=0,
                        help="evaluate only the first N expanded design points "
                             "(0 = all); handy for profiling smoke runs")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome/Perfetto trace of the sweep to this "
                             "path (.json = trace_event, .jsonl = raw spans)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-evaluate serially without the store and require "
                             "bit-identical points and fronts")
    parser.add_argument("--expect-cached", action="store_true",
                        help="fail unless every point was served from the store")
    parser.add_argument("--workers", type=int, default=0,
                        help="drain the grid through N queue-coordinated worker "
                             "processes instead of the in-process pool "
                             "(0 = in-process; requires --store)")
    parser.add_argument("--resume", action="store_true",
                        help="require an existing queue manifest in the store "
                             "(fail fast when there is no crashed run to resume)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="run ONE in-process queue worker owning manifest "
                             "indices congruent to i mod n, then exit (multi-host "
                             "mode: every host points at the same --store)")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        help="seconds a queue lease survives without a heartbeat "
                             "before other workers may reclaim it")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="claims a design point is allowed before quarantine")
    parser.add_argument("--chaos-kill-after", type=int, default=None, metavar="M",
                        help="fault injection: SIGKILL one worker once M points "
                             "completed (exits %d; rerun to resume)" % EXIT_INCOMPLETE)
    parser.add_argument("--front-history", default=None, metavar="PATH",
                        help="append changed Pareto fronts to this byte-stable "
                             "cross-run history file")
    parser.add_argument("--dashboard", default=None, metavar="PATH",
                        help="render the sweep as a self-contained HTML dashboard")
    args = parser.parse_args(argv)

    pair_texts = args.pareto if args.pareto else list(DEFAULT_PARETO_PAIRS)
    pairs = [parse_metric_pair(text) for text in pair_texts]
    grid = named_grid(args.grid)
    if args.max_points > 0:
        expansion = grid.expand()
        grid = GridExpansion(
            points=tuple(expansion.points[: args.max_points]),
            dropped_duplicates=expansion.dropped_duplicates,
            dropped_infeasible=expansion.dropped_infeasible,
        )
    store = None if args.store.lower() == "none" else ResultStore(args.store)

    distributed = args.workers > 0 or args.shard is not None
    if distributed and store is None:
        print("error: --workers/--shard need a --store (the shared substrate)",
              file=sys.stderr)
        return 2
    if args.resume and not (
        Path(args.store) / "queue" / "manifest.json"
    ).exists():
        print(f"error: --resume: no queue manifest under {args.store}; "
              f"nothing to resume", file=sys.stderr)
        return 2

    if args.shard is not None:
        # Multi-host mode: be one worker over one shard, then exit.  The
        # driver artifacts (points, fronts, bench record) come from a final
        # --workers run once every shard has drained.
        shard = parse_shard(args.shard)
        from repro.explore.evaluate import expand_grid
        specs, _, _ = expand_grid(grid)
        write_manifest(store.directory, specs, backend=args.backend,
                       timing_backend=args.timing_backend,
                       program_cache=args.program_cache, grid_name=args.grid)
        worker = DseWorker(
            store_dir=store.directory, lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts, shard=shard,
        )
        report = worker.run()
        print(f"Shard {args.shard} of grid '{args.grid}': worker {report.owner} "
              f"completed {report.completed} point(s) "
              f"({report.failures} failure(s)) in {report.wall_seconds:.1f}s")
        return 0

    start = time.perf_counter()
    with tracing_session(args.trace_out):
        if args.workers > 0:
            result = run_sweep(
                grid, backend=args.backend, store=store,
                timing_backend=args.timing_backend,
                program_cache=args.program_cache,
                workers=args.workers, lease_ttl=args.lease_ttl,
                max_attempts=args.max_attempts, grid_name=args.grid,
                chaos_kill_after=args.chaos_kill_after,
            )
        else:
            result = run_sweep(grid, backend=args.backend, jobs=args.jobs,
                               store=store,
                               timing_backend=args.timing_backend,
                               program_cache=args.program_cache)
    elapsed = time.perf_counter() - start
    if args.trace_out:
        print(f"Trace -> {args.trace_out}")

    print(f"Grid '{args.grid}': {len(result.points)} design points "
          f"({result.dropped_duplicates} duplicate and "
          f"{result.dropped_infeasible} infeasible combinations dropped)")
    print(f"Evaluated {result.evaluated}, served {result.cached} from the store "
          f"(hit rate {result.cache_hit_rate:.0%}) in {elapsed:.1f}s "
          f"with jobs={args.jobs}, backend={args.backend}, "
          f"timing_backend={args.timing_backend}")

    if args.workers > 0:
        print(f"Queue: {result.workers} workers, {result.total_claims} claim(s), "
              f"{result.reclaims} reclaim(s), {result.duplicate_completes} "
              f"duplicate completion(s), resume overhead "
              f"{result.resume_overhead_pct:.2f}%")
        if result.quarantined:
            print(f"Quarantined point(s): {', '.join(result.quarantined)}")
        if not result.complete:
            print(f"\nQueue incomplete ({len(result.points)} points stored) — "
                  f"rerun the same command to resume", file=sys.stderr)
            return EXIT_INCOMPLETE

    failures = []
    if len(result.points) < args.min_points:
        failures.append(
            f"--min-points: swept only {len(result.points)} design points, "
            f"expected at least {args.min_points}"
        )
    if args.expect_cached and result.evaluated:
        failures.append(
            f"--expect-cached: {result.evaluated} points were re-evaluated "
            f"instead of served from the store"
        )

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    points_payload = {
        "grid": args.grid,
        "backend": args.backend,
        "points": [p.to_dict() for p in result.points],
    }
    (out_dir / "dse_points.json").write_text(
        json.dumps(points_payload, indent=2, sort_keys=True) + "\n"
    )

    fronts = {}
    front_texts = {}
    for pair in pairs:
        metrics = list(pair)
        front = pareto_front(result.points, metrics)
        csv_text = format_front_csv(front, metrics)
        csv_path = out_dir / _front_filename(pair)
        csv_path.write_text(csv_text)
        fronts[_front_filename(pair)] = front
        front_texts[_front_filename(pair)] = csv_text
        print(f"\nPareto front {pair[0].name} ({pair[0].goal}) vs "
              f"{pair[1].name} ({pair[1].goal}) — {len(front)} points "
              f"-> {csv_path}")
        for point in front:
            print(f"  {point.spec.label():55s} "
                  f"{pair[0].name}={pair[0].value(point):.4g} "
                  f"{pair[1].name}={pair[1].value(point):.4g}")
        if not front:
            failures.append(f"empty Pareto front for {_front_filename(pair)}")

    deltas = {}
    if args.front_history:
        history = FrontHistory.load(args.front_history)
        for pair in pairs:
            delta = history.record(
                args.grid, list(pair), fronts[_front_filename(pair)]
            )
            deltas[pair] = delta
            print(f"Front history: {delta.describe()}")
        history.save(args.front_history)
        print(f"Front history -> {args.front_history}")

    if args.dashboard:
        views = [
            FrontView(metrics=tuple(pair), points=result.points,
                      front=fronts[_front_filename(pair)],
                      delta=deltas.get(pair))
            for pair in pairs
        ]
        progress = {
            "total": len(result.points),
            "completed": len(result.points),
            "evaluated": result.evaluated,
            "cached": result.cached,
            "reclaims": getattr(result, "reclaims", 0),
            "quarantined": getattr(result, "quarantined", ()),
        }
        dash_path = Path(args.dashboard)
        dash_path.parent.mkdir(parents=True, exist_ok=True)
        dash_path.write_text(render_dashboard(
            f"Design-space exploration — grid '{args.grid}'", progress, views,
            subtitle=f"{len(result.points)} design points, backend "
                     f"{args.backend}, timing {args.timing_backend}",
        ))
        print(f"Dashboard -> {dash_path}")

    if args.check_determinism:
        print("\nDeterminism check: re-evaluating serially without the store ...")
        check_start = time.perf_counter()
        serial = run_sweep(grid, backend=args.backend, jobs=1, store=None,
                           timing_backend=args.timing_backend)
        check_elapsed = time.perf_counter() - check_start
        same_points = (
            [p.to_dict() for p in serial.points]
            == [p.to_dict() for p in result.points]
        )
        same_fronts = all(
            format_front_csv(pareto_front(serial.points, list(pair)), list(pair))
            == front_texts[_front_filename(pair)]
            for pair in pairs
        )
        if same_points and same_fronts:
            print(f"  OK: jobs=1 reproduced all {len(serial.points)} points and "
                  f"every front bit-for-bit ({check_elapsed:.1f}s)")
        else:
            failures.append(
                f"determinism violation: jobs=1 differs from jobs={args.jobs} "
                f"(points identical: {same_points}, fronts identical: {same_fronts})"
            )

    bench = {
        "grid": args.grid,
        "backend": args.backend,
        "timing_backend": args.timing_backend,
        "jobs": args.jobs,
        "design_points": len(result.points),
        "evaluated": result.evaluated,
        "cached": result.cached,
        "cache_hit_rate": result.cache_hit_rate,
        "dropped_duplicates": result.dropped_duplicates,
        "dropped_infeasible": result.dropped_infeasible,
        "wall_seconds": elapsed,
        "pareto_fronts": {
            name: [p.spec.label() for p in front] for name, front in fronts.items()
        },
        "store": store.stats() if store is not None else None,
    }
    if args.workers > 0:
        bench["workers"] = result.workers
        bench["queue"] = {
            "total_claims": result.total_claims,
            "reclaims": result.reclaims,
            "duplicate_completes": result.duplicate_completes,
            "quarantined": list(result.quarantined),
        }
        # The gated metric family (benchmarks/check_regression.py
        # --only-prefix dse_): how much of the grid was re-claimed across
        # crashes and resumes, cumulative over this store's journal.
        bench["metrics"] = {
            "dse_resume_overhead_pct": result.resume_overhead_pct,
        }
    if args.bench_json:
        Path(args.bench_json).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
        print(f"\nProvenance record -> {args.bench_json}")

    if failures:
        print("\nFAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
