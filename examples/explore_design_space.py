"""Design-space exploration driver: Pareto sweeps over the architecture family.

Expands a named parameter grid (dataset × clauses × booleanizer resolution ×
library × datapath style × supply voltage), evaluates every point end to end
(train → map → simulate → report) through ``repro.explore``, and emits:

* ``<out>/dse_points.json``  — every evaluated :class:`DesignPoint`;
* ``<out>/pareto_<a>_vs_<b>.csv`` — one deterministic Pareto-front CSV per
  requested metric pair;
* ``BENCH_dse.json`` (``--bench-json``) — the sweep provenance record CI
  uploads as an artifact (point counts, cache hit rate, front sizes).

Results are cached in a content-hash keyed store (``--store``), so re-runs
only evaluate new or invalidated points; ``--expect-cached`` turns a re-run
into an assertion that *everything* was served from the store.
``--check-determinism`` re-evaluates the grid serially without the store and
fails unless every point and every front is bit-identical — the jobs=1 ≡
jobs=N contract CI enforces.

Run with:  python examples/explore_design_space.py --grid smoke --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.explore import (
    ResultStore,
    SWEEP_BACKENDS,
    format_front_csv,
    grid_names,
    named_grid,
    pareto_front,
    parse_metric_pair,
    run_sweep,
)
from repro.explore.grid import GridExpansion
from repro.obs.profile import tracing_session

#: Metric pairs swept by default: the paper's headline trade-offs.
DEFAULT_PARETO_PAIRS = ("accuracy,energy", "accuracy,latency", "latency,area")


def _front_filename(pair) -> str:
    a, b = pair
    return f"pareto_{a.name}_vs_{b.name}.csv"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--grid", default="smoke", choices=grid_names(),
                        help="named parameter grid to expand (default: smoke)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel evaluation processes (results are jobs-invariant)")
    parser.add_argument("--backend", default="batch", choices=SWEEP_BACKENDS,
                        help="functional evaluation backend (default: batch)")
    parser.add_argument("--timing-backend", default="event", choices=SWEEP_BACKENDS,
                        help="timing source for the latency/energy axes: 'event' "
                             "(per-operand event simulation, the oracle) or "
                             "'batch'/'bitpack' (vectorized timing engine over "
                             "the full operand stream)")
    parser.add_argument("--store", default=".dse_store",
                        help="result-store directory; 'none' disables caching")
    parser.add_argument("--program-cache", default=None,
                        help="compiled-program cache directory shared by all "
                             "evaluation workers (each unique netlist is "
                             "compiled once and served from disk afterwards)")
    parser.add_argument("--out", default="dse_out",
                        help="artifact directory for dse_points.json + Pareto CSVs")
    parser.add_argument("--bench-json", default=None,
                        help="also write the BENCH_dse.json provenance record here")
    parser.add_argument("--pareto", action="append", default=None,
                        metavar="METRIC,METRIC",
                        help="metric pair to extract a front for (repeatable; "
                             f"default: {', '.join(DEFAULT_PARETO_PAIRS)})")
    parser.add_argument("--min-points", type=int, default=0,
                        help="fail unless at least this many design points were swept")
    parser.add_argument("--max-points", type=int, default=0,
                        help="evaluate only the first N expanded design points "
                             "(0 = all); handy for profiling smoke runs")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome/Perfetto trace of the sweep to this "
                             "path (.json = trace_event, .jsonl = raw spans)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-evaluate serially without the store and require "
                             "bit-identical points and fronts")
    parser.add_argument("--expect-cached", action="store_true",
                        help="fail unless every point was served from the store")
    args = parser.parse_args(argv)

    pair_texts = args.pareto if args.pareto else list(DEFAULT_PARETO_PAIRS)
    pairs = [parse_metric_pair(text) for text in pair_texts]
    grid = named_grid(args.grid)
    if args.max_points > 0:
        expansion = grid.expand()
        grid = GridExpansion(
            points=tuple(expansion.points[: args.max_points]),
            dropped_duplicates=expansion.dropped_duplicates,
            dropped_infeasible=expansion.dropped_infeasible,
        )
    store = None if args.store.lower() == "none" else ResultStore(args.store)

    start = time.perf_counter()
    with tracing_session(args.trace_out):
        result = run_sweep(grid, backend=args.backend, jobs=args.jobs, store=store,
                           timing_backend=args.timing_backend,
                           program_cache=args.program_cache)
    elapsed = time.perf_counter() - start
    if args.trace_out:
        print(f"Trace -> {args.trace_out}")

    print(f"Grid '{args.grid}': {len(result.points)} design points "
          f"({result.dropped_duplicates} duplicate and "
          f"{result.dropped_infeasible} infeasible combinations dropped)")
    print(f"Evaluated {result.evaluated}, served {result.cached} from the store "
          f"(hit rate {result.cache_hit_rate:.0%}) in {elapsed:.1f}s "
          f"with jobs={args.jobs}, backend={args.backend}, "
          f"timing_backend={args.timing_backend}")

    failures = []
    if len(result.points) < args.min_points:
        failures.append(
            f"--min-points: swept only {len(result.points)} design points, "
            f"expected at least {args.min_points}"
        )
    if args.expect_cached and result.evaluated:
        failures.append(
            f"--expect-cached: {result.evaluated} points were re-evaluated "
            f"instead of served from the store"
        )

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    points_payload = {
        "grid": args.grid,
        "backend": args.backend,
        "points": [p.to_dict() for p in result.points],
    }
    (out_dir / "dse_points.json").write_text(
        json.dumps(points_payload, indent=2, sort_keys=True) + "\n"
    )

    fronts = {}
    front_texts = {}
    for pair in pairs:
        metrics = list(pair)
        front = pareto_front(result.points, metrics)
        csv_text = format_front_csv(front, metrics)
        csv_path = out_dir / _front_filename(pair)
        csv_path.write_text(csv_text)
        fronts[_front_filename(pair)] = front
        front_texts[_front_filename(pair)] = csv_text
        print(f"\nPareto front {pair[0].name} ({pair[0].goal}) vs "
              f"{pair[1].name} ({pair[1].goal}) — {len(front)} points "
              f"-> {csv_path}")
        for point in front:
            print(f"  {point.spec.label():55s} "
                  f"{pair[0].name}={pair[0].value(point):.4g} "
                  f"{pair[1].name}={pair[1].value(point):.4g}")
        if not front:
            failures.append(f"empty Pareto front for {_front_filename(pair)}")

    if args.check_determinism:
        print("\nDeterminism check: re-evaluating serially without the store ...")
        check_start = time.perf_counter()
        serial = run_sweep(grid, backend=args.backend, jobs=1, store=None,
                           timing_backend=args.timing_backend)
        check_elapsed = time.perf_counter() - check_start
        same_points = (
            [p.to_dict() for p in serial.points]
            == [p.to_dict() for p in result.points]
        )
        same_fronts = all(
            format_front_csv(pareto_front(serial.points, list(pair)), list(pair))
            == front_texts[_front_filename(pair)]
            for pair in pairs
        )
        if same_points and same_fronts:
            print(f"  OK: jobs=1 reproduced all {len(serial.points)} points and "
                  f"every front bit-for-bit ({check_elapsed:.1f}s)")
        else:
            failures.append(
                f"determinism violation: jobs=1 differs from jobs={args.jobs} "
                f"(points identical: {same_points}, fronts identical: {same_fronts})"
            )

    bench = {
        "grid": args.grid,
        "backend": args.backend,
        "timing_backend": args.timing_backend,
        "jobs": args.jobs,
        "design_points": len(result.points),
        "evaluated": result.evaluated,
        "cached": result.cached,
        "cache_hit_rate": result.cache_hit_rate,
        "dropped_duplicates": result.dropped_duplicates,
        "dropped_infeasible": result.dropped_infeasible,
        "wall_seconds": elapsed,
        "pareto_fronts": {
            name: [p.spec.label() for p in front] for name, front in fronts.items()
        },
        "store": store.stats() if store is not None else None,
    }
    if args.bench_json:
        Path(args.bench_json).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
        print(f"\nProvenance record -> {args.bench_json}")

    if failures:
        print("\nFAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
