"""Benchmark regression gate: compare BENCH_sim.json against the baseline.

The bench-smoke CI job runs the benchmark suite (which writes
``BENCH_sim.json``) and then this gate; any tracked throughput metric that
falls outside its tolerance band fails the job — regressions break the
build instead of only being visible in the uploaded artifact.

Usage::

    python benchmarks/check_regression.py \
        --bench BENCH_sim.json --baseline benchmarks/baseline.json

    # After an intentional perf change, refresh the committed figures
    # (directions and tolerances of existing entries are preserved):
    python benchmarks/check_regression.py --bench BENCH_sim.json --update

One baseline file tracks several bench records (``BENCH_sim.json`` from
bench-smoke, ``BENCH_serve.json`` from serve-smoke).  Each gate invocation
scopes the baseline to its own metric family, so one record is never
failed for "missing" the other family's metrics::

    python benchmarks/check_regression.py --bench BENCH_sim.json \
        --skip-prefix serve_ --skip-prefix dse_
    python benchmarks/check_regression.py --bench BENCH_serve.json \
        --only-prefix serve_
    python benchmarks/check_regression.py --bench BENCH_dse.json \
        --only-prefix dse_

Both prefix flags are repeatable; ``--update`` honours the same flags:
entries outside the scope are preserved verbatim instead of being pruned
as stale.

The comparison semantics (directions, per-metric tolerance bands, missing
tracked metrics failing the gate) live in
:mod:`repro.analysis.regression` so they are unit-tested like any other
library code; this file is only the CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.analysis.regression import (
        compare_to_baseline,
        filter_baseline,
        load_baseline,
        regressions,
    )
except ImportError:  # pragma: no cover - direct invocation without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.regression import (
        compare_to_baseline,
        filter_baseline,
        load_baseline,
        regressions,
    )

#: Keys in BENCH_sim.json's metrics block that are run configuration, not
#: performance figures; never gated or baselined.
CONFIG_KEYS = ("batch_backend_batch_size",)


def load_bench_metrics(path: Path) -> dict:
    """The ``metrics`` block of a BENCH_sim.json, config keys stripped."""
    payload = json.loads(path.read_text())
    metrics = payload.get("metrics", {})
    return {k: v for k, v in metrics.items() if k not in CONFIG_KEYS}


def _in_scope(name: str, only_prefix, skip_prefix) -> bool:
    """Whether *name* belongs to this gate invocation's metric families.

    Both arguments are ``None``, one prefix string, or a list of prefixes
    (the CLI flags are repeatable).
    """
    only = [only_prefix] if isinstance(only_prefix, str) else (only_prefix or [])
    skip = [skip_prefix] if isinstance(skip_prefix, str) else (skip_prefix or [])
    if only and not any(name.startswith(p) for p in only):
        return False
    if any(name.startswith(p) for p in skip):
        return False
    return True


def update_baseline(
    bench_path: Path,
    baseline_path: Path,
    only_prefix=None,
    skip_prefix=None,
) -> None:
    """Rewrite the baseline's values from a fresh run, keeping its policy.

    Existing entries keep their direction and tolerance; metrics new to the
    run are added as plain higher-is-better entries with the default band,
    and in-scope entries for metrics the run no longer produces are pruned
    (they would otherwise fail the gate forever as "missing").  Entries
    outside the ``--only-prefix`` / ``--skip-prefix`` scope belong to a
    different bench record and are preserved verbatim.
    """
    current = {
        name: value
        for name, value in load_bench_metrics(bench_path).items()
        if _in_scope(name, only_prefix, skip_prefix)
    }
    raw = json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    old_entries = raw.get("metrics", {})
    entries = {
        name: entry
        for name, entry in old_entries.items()
        if not _in_scope(name, only_prefix, skip_prefix)
    }
    for name, value in sorted(current.items()):
        entry = dict(old_entries.get(name, {"direction": "higher-is-better"}))
        entry["value"] = round(float(value), 2)
        entries[name] = entry
    stale = sorted(set(old_entries) - set(entries))
    if stale:
        print(f"pruned stale baseline metrics: {', '.join(stale)}")
    raw["metrics"] = dict(sorted(entries.items()))
    raw.setdefault("default_tolerance", 0.3)
    baseline_path.write_text(json.dumps(raw, indent=2, sort_keys=True) + "\n")
    print(f"baseline updated from {bench_path} -> {baseline_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--bench", default="BENCH_sim.json",
                        help="BENCH_sim.json produced by the benchmark run")
    parser.add_argument("--baseline",
                        default=str(Path(__file__).resolve().parent / "baseline.json"),
                        help="committed baseline file")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the default tolerance band (fraction)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline values from --bench and exit")
    parser.add_argument("--only-prefix", action="append", default=None,
                        help="scope the gate to baseline metrics with this "
                             "prefix (repeatable)")
    parser.add_argument("--skip-prefix", action="append", default=None,
                        help="exclude baseline metrics with this prefix from "
                             "the gate (repeatable)")
    args = parser.parse_args(argv)

    bench_path = Path(args.bench)
    baseline_path = Path(args.baseline)
    if not bench_path.exists():
        print(f"error: benchmark record {bench_path} does not exist", file=sys.stderr)
        return 2
    if args.update:
        update_baseline(
            bench_path, baseline_path,
            only_prefix=args.only_prefix, skip_prefix=args.skip_prefix,
        )
        return 0

    baseline = filter_baseline(
        load_baseline(baseline_path),
        only_prefix=args.only_prefix,
        skip_prefix=args.skip_prefix,
    )
    current = load_bench_metrics(bench_path)
    comparisons = compare_to_baseline(current, baseline, default_tolerance=args.tolerance)
    print(f"Benchmark regression gate: {bench_path} vs {baseline_path}")
    for comparison in comparisons:
        print(f"  {comparison.describe()}")
    failing = regressions(comparisons)
    if failing:
        print(f"\n{len(failing)} metric(s) regressed beyond the tolerance band",
              file=sys.stderr)
        return 1
    print("\nAll tracked metrics within their tolerance bands")
    return 0


if __name__ == "__main__":
    sys.exit(main())
