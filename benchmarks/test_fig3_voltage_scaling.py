"""Benchmark: Figure 3 — dual-rail datapath latency versus supply voltage.

Sweeps the supply of the FULL DIFFUSION library stand-in from 0.25 V to
1.2 V, simulating the dual-rail datapath at each point, and checks the
paper's claims:

* functional correctness is maintained across the whole range (the circuit
  needs no modification — it is self-timed);
* latency is roughly flat in the superthreshold region and increases
  exponentially as the supply drops below ~0.6 V;
* the latency at 0.25 V is orders of magnitude above the nominal latency.
"""

from __future__ import annotations

import os

from repro.analysis import format_figure3, run_figure3
from repro.sim import exponential_region_slope
from repro.sim.voltage import VoltagePoint

#: Reduced voltage grid (a subset of the paper's sweep) to keep runtime low.
SWEEP_VOLTAGES = (0.25, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2)

#: Voltage points are independent work units; REPRO_SIM_JOBS sweeps them in
#: parallel (results are identical for every value, so CI may raise it).
SWEEP_JOBS = int(os.environ.get("REPRO_SIM_JOBS", "1"))


def test_figure3_voltage_sweep(benchmark, small_workload, full_diffusion):
    points = benchmark.pedantic(
        run_figure3,
        kwargs={
            "workload": small_workload,
            "voltages": SWEEP_VOLTAGES,
            "library": full_diffusion,
            "operands_per_point": 4,
            "backend": "batch",
            "jobs": SWEEP_JOBS,
        },
        rounds=1,
        iterations=1,
    )
    print("\nFigure 3 (latency vs supply voltage, FULL DIFFUSION):")
    print(format_figure3(points))

    functional = [p for p in points if p.functional]
    assert len(functional) == len(SWEEP_VOLTAGES)

    # Functional correctness maintained at every supply point, including 0.25 V.
    assert all(p.correct for p in functional)

    by_vdd = {round(p.vdd, 2): p.avg_latency_ps for p in functional}

    # Latency increases monotonically as the supply is lowered.
    ordered = [by_vdd[v] for v in sorted(by_vdd)]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))

    # Exponential blow-up below 0.6 V: more than 100x between 0.6 V and 0.25 V.
    assert by_vdd[0.25] / by_vdd[0.6] > 100.0
    # Mild scaling above 0.8 V: less than 4x between 1.2 V and 0.8 V.
    assert by_vdd[0.8] / by_vdd[1.2] < 4.0

    # The subthreshold region is exponential: ln(latency) vs VDD is a steep
    # negative slope.
    slope = exponential_region_slope(
        [VoltagePoint(vdd=p.vdd, value=p.avg_latency_ps) for p in functional],
        v_max=0.6,
    )
    assert slope < -10.0
