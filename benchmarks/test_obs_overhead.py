"""Benchmark: tracing must be (near) zero-cost when disabled.

Every hot stage of the simulation and serving stack carries
``repro.obs.trace.span`` calls.  With the default tracer disabled those
calls reduce to one attribute read, a branch, and the shared no-op span —
this benchmark pins that property by running the bit-packed backend (the
fastest, most span-dense path) with tracing disabled and enabled-but-idle,
and gating the relative slowdown:

* ``obs_overhead_pct`` — percentage slowdown of a bitpack ``run_arrays``
  pass with the real (disabled) tracer at the call sites, relative to the
  same pass with the backend's ``_trace`` module swapped for a do-nothing
  stub — i.e. the closest measurable stand-in for "the spans were never
  added".

The <3% acceptance bound is asserted directly at the bench-smoke sample
budget and additionally tracked through ``benchmarks/baseline.json`` so a
future accidental de-optimisation (e.g. building attr dicts eagerly on the
disabled path) fails CI with a number attached.
"""

from __future__ import annotations

import os
import time

from repro.analysis import random_workload, workload_input_planes
from repro.datapath.datapath import DualRailDatapath
from repro.obs import trace
from repro.sim.backends import BitpackBackend
from repro.sim.backends import bitpack as bitpack_module

#: Operand count of the overhead measurement (matches the bitpack bench).
OVERHEAD_SAMPLES = int(os.environ.get("BENCH_BITPACK_SAMPLES", "10000"))
#: Acceptance bound: disabled-tracing overhead on bitpack throughput.
MAX_OVERHEAD_PCT = 3.0
#: Repetitions per arm; the best time of each arm is compared, which
#: filters scheduler noise far better than single-shot timing.
ROUNDS = int(os.environ.get("BENCH_OBS_ROUNDS", "5"))


def _best_run_seconds(backend, planes, rounds: int) -> float:
    """Minimum wall-clock of *rounds* ``run_arrays`` passes."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        backend.run_arrays(planes)
        best = min(best, time.perf_counter() - start)
    return best


class _StubSpan:
    """The cheapest possible span: supports with/add and does nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, **attrs):
        return None


_STUB_SPAN = _StubSpan()


class _StubTrace:
    """Stand-in for the ``_trace`` module: spans with zero machinery."""

    @staticmethod
    def span(name, **attrs):
        return _STUB_SPAN


def test_disabled_tracing_overhead_is_negligible(umc, bench_records):
    """Span calls on the bitpack hot path cost <3% with tracing off."""
    workload = random_workload(
        num_features=4, clauses_per_polarity=8,
        num_operands=OVERHEAD_SAMPLES, seed=5,
    )
    datapath = DualRailDatapath(workload.config)
    backend = BitpackBackend(datapath.circuit.netlist, umc)
    planes = workload_input_planes(datapath.circuit, datapath, workload)
    backend.run_arrays(planes)  # warm the levelized program + caches

    was_enabled = trace.enabled()
    trace.disable()
    real_trace = bitpack_module._trace
    try:
        bitpack_module._trace = _StubTrace()
        baseline_s = _best_run_seconds(backend, planes, ROUNDS)
        bitpack_module._trace = real_trace
        instrumented_s = _best_run_seconds(backend, planes, ROUNDS)
    finally:
        bitpack_module._trace = real_trace
        trace.reset()
        if was_enabled:
            trace.enable()

    overhead_pct = max(0.0, (instrumented_s / baseline_s - 1.0) * 100.0)
    rate = OVERHEAD_SAMPLES / instrumented_s
    print(
        f"\nObs overhead: baseline={baseline_s * 1e3:.2f} ms, "
        f"instrumented={instrumented_s * 1e3:.2f} ms "
        f"({rate:,.0f} samples/s) -> {overhead_pct:.2f}% overhead"
    )
    bench_records["obs_overhead_pct"] = overhead_pct

    # Only gate at a meaningful sample budget; at tiny smoke budgets the
    # measurement is dominated by per-call fixed costs and noise.
    if OVERHEAD_SAMPLES >= 10000:
        assert overhead_pct < MAX_OVERHEAD_PCT


def test_enabled_tracing_records_without_wrecking_throughput(umc, bench_records):
    """Tracing *on* stays within 2x — spans are cheap even when recording."""
    workload = random_workload(
        num_features=4, clauses_per_polarity=8,
        num_operands=OVERHEAD_SAMPLES, seed=5,
    )
    datapath = DualRailDatapath(workload.config)
    backend = BitpackBackend(datapath.circuit.netlist, umc)
    planes = workload_input_planes(datapath.circuit, datapath, workload)
    backend.run_arrays(planes)  # warm-up

    trace.disable()
    off_s = _best_run_seconds(backend, planes, ROUNDS)
    trace.reset()
    trace.enable()
    try:
        on_s = _best_run_seconds(backend, planes, ROUNDS)
        spans = len(trace.records())
    finally:
        trace.reset()
        trace.disable()

    assert spans >= 2 * ROUNDS  # at least pack + levels per traced pass
    slowdown = on_s / off_s
    bench_records["obs_enabled_slowdown_x"] = slowdown
    print(f"\nObs enabled slowdown: {slowdown:.3f}x over {spans} spans")
    assert slowdown < 2.0
