"""Shared fixtures for the benchmark harnesses.

The benchmarks reproduce the paper's evaluation artefacts (Table I, Figure 3
and the operand/latency distribution analysis).  They use a reduced operand
count so the whole suite completes in minutes on a laptop; the experiment
functions in :mod:`repro.analysis.experiments` accept larger streams for
higher-fidelity runs.
"""

from __future__ import annotations

import pytest

from repro.analysis import default_workload
from repro.circuits import full_diffusion_library, umc_ll_library


@pytest.fixture(scope="session")
def table1_workload():
    """The paper-scale workload: 8 clauses per polarity, trained on noisy-XOR."""
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=12)


@pytest.fixture(scope="session")
def small_workload():
    """A reduced workload for the CD-overhead and distribution benches."""
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=8)


@pytest.fixture(scope="session")
def umc():
    return umc_ll_library()


@pytest.fixture(scope="session")
def full_diffusion():
    return full_diffusion_library()
