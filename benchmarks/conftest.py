"""Shared fixtures for the benchmark harnesses.

The benchmarks reproduce the paper's evaluation artefacts (Table I, Figure 3
and the operand/latency distribution analysis).  They use a reduced operand
count so the whole suite completes in minutes on a laptop; the experiment
functions in :mod:`repro.analysis.experiments` accept larger streams for
higher-fidelity runs.

Benchmark regression tracking
-----------------------------
Benchmarks may record throughput figures into the session-scoped
``bench_records`` fixture; at session end they are written as JSON to
``BENCH_sim.json`` (override the path with the ``BENCH_SIM_OUT`` environment
variable).  CI uploads the file as an artifact, so every PR leaves a perf
trajectory — currently events/sec for the event-driven backend and
samples/sec for the vectorized batch backend — that future changes can be
compared against.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.analysis import default_workload
from repro.circuits import full_diffusion_library, umc_ll_library

#: Session-wide accumulator behind the ``bench_records`` fixture.
_BENCH_RECORDS = {}


@pytest.fixture(scope="session")
def bench_records():
    """Mutable mapping benchmarks drop ``metric name -> value`` entries into."""
    return _BENCH_RECORDS


def pytest_sessionfinish(session, exitstatus):
    """Write the collected benchmark records to ``BENCH_sim.json``."""
    if not _BENCH_RECORDS:
        return
    out_path = Path(os.environ.get(
        "BENCH_SIM_OUT", Path(__file__).resolve().parent / "BENCH_sim.json"
    ))
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": dict(sorted(_BENCH_RECORDS.items())),
    }
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def table1_workload():
    """The paper-scale workload: 8 clauses per polarity, trained on noisy-XOR."""
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=12)


@pytest.fixture(scope="session")
def small_workload():
    """A reduced workload for the CD-overhead and distribution benches."""
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=8)


@pytest.fixture(scope="session")
def umc():
    return umc_ll_library()


@pytest.fixture(scope="session")
def full_diffusion():
    return full_diffusion_library()
