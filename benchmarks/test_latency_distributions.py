"""Benchmark: operand and delay probability distributions (contribution 2).

The paper's second contribution is the analysis of operand and delay
probability distributions in the inference circuit: the early-propagating
comparator turns the *distribution of vote differences* into a distribution
of latencies.  This bench regenerates that analysis for the trained
noisy-XOR workload:

* vote-count / vote-difference / comparator-decision-depth histograms,
* the per-operand latency histogram of the simulated dual-rail datapath,
* the correlation between decision depth and measured latency (operands
  decided at a higher-order bit must not be slower than operands that need
  the full comparison).
"""

from __future__ import annotations

from repro.analysis import (
    format_histogram,
    latency_histogram,
    latency_vs_decision_depth,
    mean_latency_by_depth,
    operand_distributions,
    run_latency_distribution,
)


def test_operand_and_latency_distributions(benchmark, small_workload, umc):
    workload = small_workload
    results = benchmark.pedantic(
        run_latency_distribution, args=(workload, umc), rounds=1, iterations=1
    )

    width = workload.config.count_width
    dists = operand_distributions(workload.model, workload.feature_vectors, width)
    print("\nVote-difference distribution:")
    print(format_histogram(dists["vote_difference"].counts, label="diff"))
    print("\nComparator decision-depth distribution:")
    print(format_histogram(dists["decision_depth"].counts, label="depth"))

    hist = latency_histogram(results, bin_width_ps=50.0)
    print("\nLatency histogram (50 ps bins):")
    print(format_histogram(hist.counts, label="bin"))

    pairs = latency_vs_decision_depth(results, workload.model,
                                      list(workload.feature_vectors), width)
    by_depth = mean_latency_by_depth(pairs)
    print("\nMean latency by comparator decision depth (ps):")
    for depth, latency in by_depth.items():
        print(f"  depth {depth}: {latency:.1f}")

    # Histograms cover every simulated operand.
    assert dists["decision_depth"].total == workload.num_operands
    assert hist.total == workload.num_operands

    # Latency is data dependent and correlates with the decision depth:
    # shallow decisions must not be slower than the deepest ones.
    if len(by_depth) > 1:
        shallowest = min(by_depth)
        deepest = max(by_depth)
        assert by_depth[shallowest] <= by_depth[deepest] + 1e-9

    # All measured latencies fall within the worst-case bound from STA-style
    # reasoning (the maximum observed latency).
    assert max(r.t_s_to_v for r in results) >= min(r.t_s_to_v for r in results)
