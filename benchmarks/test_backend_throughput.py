"""Benchmark: event-driven vs vectorized vs bit-packed backend throughput.

Pushes the paper-scale datapath's full operand encoding through the
simulation backends and records the regression-tracking figures that end up
in ``BENCH_sim.json``:

* ``event_backend_events_per_sec`` / ``event_backend_samples_per_sec`` —
  the event-driven reference, measured over a small operand subset (it is
  the slow path; extrapolating its rate keeps the bench fast);
* ``batch_backend_samples_per_sec`` — the levelized NumPy engine over the
  full 1000-sample batch;
* ``batch_vs_event_speedup`` — the headline ratio, asserted to be >= 10x
  (in practice it is two to three orders of magnitude);
* ``bitpack_backend_samples_per_sec`` / ``bitpack_vs_batch_speedup`` — the
  bit-packed 64-lane engine vs the batch engine on the same 10k-sample
  stream, asserted to be >= 5x (in practice ~10x);
* ``fused_bitpack_samples_per_sec`` / ``fused_vs_looped_speedup`` — the
  fused grouped-kernel engine vs the looped per-cell bitpack interpreter
  on the same compiled program (run-only, spacer activity baseline),
  asserted to be >= 3x at 10k samples (in practice ~4x);
* ``timed_backend_samples_per_sec`` / ``timed_vs_event_speedup`` — the
  vectorized data-dependent timing engine (full handshake cycles: latency,
  reset and energy per sample) vs per-operand event-driven handshakes on a
  10k-operand stream, asserted to be >= 10x (in practice two to three
  orders of magnitude).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis import random_workload
from repro.analysis import workload_input_planes
from repro.analysis.measure import (
    build_mapped_dual_rail,
    make_dual_rail_environment,
    spacer_assignments,
)
from repro.core.dual_rail import encode_bit
from repro.datapath.datapath import DualRailDatapath
from repro.sim.backends import BatchBackend, BitpackBackend, EventBackend

#: Batch size of the vectorized measurement (the acceptance criterion's 1k).
BATCH_SAMPLES = int(os.environ.get("BENCH_BATCH_SAMPLES", "1000"))
#: Operands pushed through the (slow) event backend to estimate its rate.
EVENT_SAMPLES = int(os.environ.get("BENCH_EVENT_SAMPLES", "8"))
#: Batch size of the bitpack-vs-batch comparison (the acceptance criterion's
#: 10k; deliberately ragged would also work — tails are masked).
BITPACK_SAMPLES = int(os.environ.get("BENCH_BITPACK_SAMPLES", "10000"))
#: Operand count of the timed-engine measurement (the acceptance
#: criterion's 10k timed samples).
TIMED_SAMPLES = int(os.environ.get("BENCH_TIMED_SAMPLES", "10000"))


def _rail_assignments(circuit, operand):
    assignments = {}
    for sig in circuit.inputs:
        pos, neg = encode_bit(operand[sig.name])
        assignments[sig.pos] = pos
        assignments[sig.neg] = neg
    return assignments


def test_batch_backend_speedup(benchmark, umc, bench_records):
    workload = random_workload(
        num_features=4, clauses_per_polarity=8, num_operands=BATCH_SAMPLES, seed=5
    )
    datapath = DualRailDatapath(workload.config)
    netlist = datapath.circuit.netlist

    # Event backend rate over a subset of the stream.
    event = EventBackend(netlist, umc)
    event_batch = [
        _rail_assignments(
            datapath.circuit, datapath.operand_assignments(f, workload.exclude)
        )
        for f in workload.feature_vectors[:EVENT_SAMPLES]
    ]
    start = time.perf_counter()
    event_result = event.run_batch(event_batch)
    event_elapsed = time.perf_counter() - start
    event_rate = event_result.samples / event_elapsed
    events_rate = event_result.transitions / event_elapsed

    # Batch backend over the full 1000-sample stream (compile + run, via
    # pytest-benchmark so the timing lands in the benchmark report too).
    planes = workload_input_planes(datapath.circuit, datapath, workload)

    def run_batch():
        backend = BatchBackend(netlist, umc)
        return backend.run_arrays(planes)

    start = time.perf_counter()
    batch_result = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    batch_elapsed = time.perf_counter() - start
    batch_rate = batch_result.samples / batch_elapsed

    speedup = batch_rate / event_rate
    print(
        f"\nBackend throughput: event={event_rate:.1f} samples/s "
        f"({events_rate:.0f} events/s), batch={batch_rate:.0f} samples/s "
        f"({batch_result.samples} samples) -> {speedup:.0f}x"
    )
    bench_records["event_backend_samples_per_sec"] = event_rate
    bench_records["event_backend_events_per_sec"] = events_rate
    bench_records["batch_backend_samples_per_sec"] = batch_rate
    bench_records["batch_backend_batch_size"] = batch_result.samples
    bench_records["batch_vs_event_speedup"] = speedup

    assert batch_result.samples == BATCH_SAMPLES
    # Acceptance criterion: >= 10x samples/sec on the batch backend at 1k
    # samples.  Real measurements sit around 100-1000x; 10x leaves headroom
    # for slow CI machines.
    assert speedup >= 10.0

    # The two backends agree on the verdict rails for the shared subset.
    verdict = datapath.circuit.one_of_n_outputs[0]
    for k in range(event_result.samples):
        for rail in verdict.rails:
            assert event_result.net_values[rail][k] == batch_result.value_of(rail, k)


def test_bitpack_backend_speedup(benchmark, umc, bench_records):
    """Bit-packed 64-lane engine vs the byte-per-sample batch engine at 10k."""
    workload = random_workload(
        num_features=4, clauses_per_polarity=8, num_operands=BITPACK_SAMPLES, seed=5
    )
    datapath = DualRailDatapath(workload.config)
    netlist = datapath.circuit.netlist
    planes = workload_input_planes(datapath.circuit, datapath, workload)

    def run_batch():
        return BatchBackend(netlist, umc).run_arrays(planes)

    def run_bitpack():
        return BitpackBackend(netlist, umc).run_arrays(planes)

    def best_of_two(fn):
        # Both measurements include compile + run; best-of-two smooths out
        # scheduler noise so the gated ratio is stable on loaded CI runners.
        best, result = float("inf"), None
        for _ in range(2):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    batch_elapsed, batch_result = best_of_two(run_batch)
    batch_rate = batch_result.samples / batch_elapsed

    bitpack_elapsed, bitpack_result = best_of_two(run_bitpack)
    bitpack_rate = bitpack_result.samples / bitpack_elapsed
    # One more pass through pytest-benchmark so the timing lands in the
    # benchmark report alongside the other backends.
    benchmark.pedantic(run_bitpack, rounds=1, iterations=1)

    speedup = bitpack_rate / batch_rate
    print(
        f"\nBitpack throughput: batch={batch_rate:,.0f} samples/s, "
        f"bitpack={bitpack_rate:,.0f} samples/s "
        f"({bitpack_result.samples} samples) -> {speedup:.1f}x"
    )
    bench_records["bitpack_backend_samples_per_sec"] = bitpack_rate
    bench_records["bitpack_vs_batch_speedup"] = speedup

    assert bitpack_result.samples == BITPACK_SAMPLES
    # Acceptance criterion: >= 5x the batch backend's samples/sec at 10k
    # samples.  Real measurements sit around 10x; 5x leaves headroom for
    # slow or noisy CI machines.  Both timings include backend compile,
    # which only amortizes over a long enough stream, so the assertion is
    # scoped to the acceptance budget — shrinking BENCH_BITPACK_SAMPLES
    # still records the metrics without a spurious red.
    if BITPACK_SAMPLES >= 10000:
        assert speedup >= 5.0

    # The two vectorized backends agree on the verdict rails for the whole
    # stream (gate-for-gate equivalence lives in the tier-1 tests).
    verdict = datapath.circuit.one_of_n_outputs[0]
    for rail in verdict.rails:
        assert np.array_equal(bitpack_result.values[rail], batch_result.values[rail])


def test_fused_bitpack_speedup(benchmark, umc, bench_records):
    """Fused grouped-kernel engine vs the looped per-cell bitpack interpreter.

    Both backends execute the *same* compiled program on the same 10k-sample
    stream with the spacer activity baseline, so the comparison isolates the
    kernel engine (grouped gather/scatter vs per-cell Python loop), not the
    compile step: each engine is warmed once (plan build / codegen happens
    there) and then timed run-only, best-of-three.
    """
    workload = random_workload(
        num_features=4, clauses_per_polarity=8, num_operands=BITPACK_SAMPLES, seed=5
    )
    datapath = DualRailDatapath(workload.config)
    netlist = datapath.circuit.netlist
    planes = workload_input_planes(datapath.circuit, datapath, workload)
    spacer = spacer_assignments(datapath.circuit)

    looped = BitpackBackend(netlist, umc, fused="off")
    fused = BitpackBackend(netlist, umc, fused="grouped")

    def run_looped():
        return looped.run_arrays(planes, baseline=spacer)

    def run_fused():
        return fused.run_arrays(planes, baseline=spacer)

    looped_result = run_looped()  # warm-up: bound ops, settled-baseline memo
    fused_result = run_fused()  # warm-up: grouped plan build, rest memo

    # Interleaved best-of-five: alternating the two engines inside each
    # round means a load spike on a noisy runner penalizes both rather
    # than biasing whichever engine it landed on.
    looped_elapsed = fused_elapsed = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        looped_result = run_looped()
        looped_elapsed = min(looped_elapsed, time.perf_counter() - start)
        start = time.perf_counter()
        fused_result = run_fused()
        fused_elapsed = min(fused_elapsed, time.perf_counter() - start)
    # One more pass through pytest-benchmark for the benchmark report.
    benchmark.pedantic(run_fused, rounds=1, iterations=1)

    looped_rate = looped_result.samples / looped_elapsed
    fused_rate = fused_result.samples / fused_elapsed
    speedup = fused_rate / looped_rate
    print(
        f"\nFused kernel throughput: looped={looped_rate:,.0f} samples/s, "
        f"fused={fused_rate:,.0f} samples/s "
        f"({fused_result.samples} samples) -> {speedup:.1f}x"
    )
    bench_records["fused_bitpack_samples_per_sec"] = fused_rate
    bench_records["fused_vs_looped_speedup"] = speedup

    assert fused_result.samples == BITPACK_SAMPLES
    # Acceptance criterion: the fused engine delivers >= 3x the looped
    # bitpack samples/sec at 10k samples.  Real measurements sit around
    # 3.8-4.5x; the assertion is scoped to the acceptance budget so a
    # shrunken BENCH_BITPACK_SAMPLES smoke run still records the metrics
    # without a spurious red.
    if BITPACK_SAMPLES >= 10000:
        assert speedup >= 3.0

    # Bit-identity alongside the speed claim: same verdict planes and the
    # same switching-activity accounting (the fuzz suite covers the full
    # net set; this pins the benchmark configuration itself).
    verdict = datapath.circuit.one_of_n_outputs[0]
    for rail in verdict.rails:
        assert np.array_equal(fused_result.values[rail], looped_result.values[rail])
    assert fused_result.activity_by_cell == looped_result.activity_by_cell
    assert fused_result.activity_by_cell_type == looped_result.activity_by_cell_type


def test_timed_backend_speedup(benchmark, umc, bench_records):
    """Vectorized timing engine vs event-driven handshakes at 10k operands.

    The timed engine produces the *full* per-operand measurement set —
    spacer→valid latency, reset times, internal settle, done edges and
    switching energy — so its event-driven counterpart is a complete
    handshake cycle per operand (the ``measure_dual_rail`` hot loop), not a
    bare functional settle.  The event rate is measured over a small
    operand prefix and extrapolated, exactly like the batch-vs-event
    comparison above.
    """
    workload = random_workload(
        num_features=4, clauses_per_polarity=8, num_operands=TIMED_SAMPLES, seed=5
    )
    mapped = build_mapped_dual_rail(workload.config, umc)

    # Event-driven timing rate: full handshake cycles over a prefix.
    bench = make_dual_rail_environment(mapped)
    event_operands = [
        mapped.datapath.operand_assignments(f, workload.exclude)
        for f in workload.feature_vectors[:EVENT_SAMPLES]
    ]
    start = time.perf_counter()
    event_results = [bench.environment.infer(op) for op in event_operands]
    event_elapsed = time.perf_counter() - start
    event_rate = len(event_results) / event_elapsed

    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    spacer = spacer_assignments(mapped.circuit)

    def run_timed():
        # Compile + run, like the other backend measurements: a fresh
        # backend per round so program caching cannot flatter the figure.
        backend = BatchBackend(mapped.circuit.netlist, umc)
        return backend.run_timed(planes, spacer)

    start = time.perf_counter()
    timed_result = benchmark.pedantic(run_timed, rounds=1, iterations=1)
    timed_elapsed = time.perf_counter() - start
    timed_rate = timed_result.samples / timed_elapsed

    speedup = timed_rate / event_rate
    print(
        f"\nTimed throughput: event={event_rate:.1f} cycles/s, "
        f"timed={timed_rate:,.0f} cycles/s "
        f"({timed_result.samples} operands) -> {speedup:.0f}x"
    )
    bench_records["timed_backend_samples_per_sec"] = timed_rate
    bench_records["timed_vs_event_speedup"] = speedup

    assert timed_result.samples == TIMED_SAMPLES
    # Acceptance criterion: >= 10x timed samples/sec over the event
    # environment at 10k operands.  Real measurements sit at two to three
    # orders of magnitude; 10x leaves headroom for slow CI machines.  The
    # assertion is scoped to the acceptance budget so a shrunken
    # BENCH_TIMED_SAMPLES smoke run still records metrics without a
    # spurious red.
    if TIMED_SAMPLES >= 10000:
        assert speedup >= 10.0

    # Cross-check: the timed latencies agree with the event prefix.
    rails = mapped.circuit.all_output_rails()
    timed_latency = timed_result.max_arrival(rails, "valid")
    for k, result in enumerate(event_results):
        assert abs(timed_latency[k] - result.t_s_to_v) <= 1e-6 * result.t_s_to_v
