"""Benchmark: Table I — single-rail vs dual-rail on both libraries.

Regenerates the paper's Table I columns (cell area, sequential area, average
power, leakage, average/max latency, valid→spacer time, inferences per
second) for the clocked single-rail baseline and the proposed dual-rail
datapath on the UMC LL and FULL DIFFUSION library stand-ins, and checks the
relative relationships the paper reports:

* dual-rail cell area within a small factor of single-rail (not 2×);
* dual-rail *average* latency below the single-rail clock period, with the
  maximum latency of the same order;
* similar sequential area despite twice as many sequential cells;
* dual-rail switching power higher, leakage comparable;
* throughput (inferences/s) of the same order for both designs.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    dual_rail_table_row,
    format_table1,
    measure_dual_rail,
    measure_single_rail,
    single_rail_table_row,
)


def _rows_for_library(workload, library):
    single = measure_single_rail(workload, library)
    # backend="batch": verdicts/correctness come from the vectorized batch
    # backend, timing quantities from the event simulation — numerically
    # identical to the all-event path (asserted by the equivalence tests).
    dual = measure_dual_rail(workload, library, backend="batch")
    return single, dual


@pytest.mark.parametrize("library_fixture", ["umc", "full_diffusion"])
def test_table1_rows(benchmark, table1_workload, library_fixture, request):
    library = request.getfixturevalue(library_fixture)

    single, dual = benchmark.pedantic(
        _rows_for_library, args=(table1_workload, library), rounds=1, iterations=1
    )

    rows = [single_rail_table_row(single), dual_rail_table_row(dual)]
    print(f"\nTable I rows ({library.name}):")
    print(format_table1(rows))

    # Functional correctness of both implementations against the golden model.
    assert single.correctness == 1.0
    assert dual.correctness == 1.0
    assert dual.monotonic

    # Area: dual-rail cell area is similar to single-rail (within 2x, not the
    # naive 2x-plus of unoptimised dual-rail logic).
    area_ratio = dual.synthesis.area.total / single.synthesis.area.total
    assert 0.8 < area_ratio < 2.0

    # Sequential area is similar despite the dual-rail design having twice
    # the number of sequential cells (C-elements vs flip-flops).
    seq_ratio = dual.synthesis.area.sequential / single.synthesis.area.sequential
    assert 0.5 < seq_ratio < 2.0
    assert dual.synthesis.area.sequential_cell_count > single.synthesis.area.sequential_cell_count

    # Latency: the dual-rail average beats the single-rail clock period; the
    # worst case stays in the same order of magnitude.
    assert dual.latency.average < single.clock_period_ps
    assert dual.latency.maximum < 3.0 * single.clock_period_ps

    # Power: higher switching activity for dual-rail, comparable leakage.
    assert dual.power.dynamic_uw > single.power.dynamic_uw
    leak_ratio = dual.power.leakage_nw / single.power.leakage_nw
    assert 0.3 < leak_ratio < 3.0

    # Throughput: same order of magnitude (single-rail is pipelined per cycle,
    # dual-rail pays the return-to-spacer phase).
    thr_ratio = dual.throughput_millions / single.throughput_millions
    assert 0.2 < thr_ratio < 5.0


def test_table1_full_report(benchmark, table1_workload, umc, full_diffusion):
    """Print the complete four-row Table I for the record."""
    def build_rows():
        rows = []
        for library in (umc, full_diffusion):
            single, dual = _rows_for_library(table1_workload, library)
            rows.append(single_rail_table_row(single))
            rows.append(dual_rail_table_row(dual))
        return rows
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = format_table1(rows)
    print("\n" + text)
    assert len(rows) == 4
    assert {r.technology for r in rows} == {"UMC LL", "FULL DIFFUSION"}
