"""Benchmark: cold program compile vs warm program-cache load.

Records the regression-tracking figures for the compiled-IR cache:

* ``program_compile_ms`` — wall-clock of one cold ``compile_program`` of
  the paper-scale datapath (levelize + dispatch validation + per-cell STA
  resolution);
* ``program_cache_warm_ms`` — wall-clock of one warm
  :meth:`ProgramCache.get` of the same artifact (a JSON load, no netlist
  walk);
* ``program_cache_speedup`` — the cold/warm ratio, asserted to clear a
  modest floor (the machine-independent figure the baseline gates).

Warm loads must also be *bit-identical* to the cold compile — the cache is
an execution knob, never a measurement change — so the equality assertion
here doubles as the benchmark-level half of that contract.
"""

from __future__ import annotations

import time

from repro.analysis import random_workload
from repro.datapath.datapath import DualRailDatapath
from repro.sim.program import compile_program
from repro.sim.program_cache import ProgramCache

#: Best-of-N rounds; smooths scheduler noise on loaded CI runners.
ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_program_cache_speedup(benchmark, umc, bench_records, tmp_path):
    workload = random_workload(
        num_features=4, clauses_per_polarity=8, num_operands=2, seed=5
    )
    netlist = DualRailDatapath(workload.config).circuit.netlist

    cold_s, program = _best_of(lambda: compile_program(netlist, umc))

    cache = ProgramCache(tmp_path)
    cache.put(program)
    key = cache.key_for(netlist=netlist, library=umc)

    def warm_load():
        return cache.get(key)

    warm_s, loaded = _best_of(lambda: benchmark.pedantic(
        warm_load, rounds=1, iterations=1
    ), rounds=1)
    # benchmark.pedantic can only run once per test; take further rounds raw.
    for _ in range(ROUNDS - 1):
        start = time.perf_counter()
        loaded = warm_load()
        warm_s = min(warm_s, time.perf_counter() - start)

    speedup = cold_s / warm_s
    print(
        f"\nProgram cache: cold compile {cold_s * 1e3:.2f} ms, "
        f"warm load {warm_s * 1e3:.2f} ms -> {speedup:.1f}x "
        f"({len(program.ops)} ops)"
    )
    bench_records["program_compile_ms"] = cold_s * 1e3
    bench_records["program_cache_warm_ms"] = warm_s * 1e3
    bench_records["program_cache_speedup"] = speedup

    # The cache contract: a warm load is the same artifact, bit for bit.
    assert loaded == program
    assert loaded.program_hash == program.program_hash
    # Acceptance floor: a warm load must beat recompilation outright.  Real
    # measurements sit around 3-4x; 1.2x leaves headroom for noisy runners.
    assert speedup >= 1.2
