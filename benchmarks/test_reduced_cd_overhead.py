"""Benchmark: reduced completion detection and architecture ablations (Section III-A / IV).

Quantifies the design choices the paper calls out:

* the reduced CD scheme (validity detectors + AND tree + timing assumption)
  versus full output CD (C-element tree): cell and area overhead;
* the grace-period numbers ``td = t_int − t_io`` and ``t_done(1→0)`` derived
  from static timing analysis;
* the HA-heavy (Dalalah-style) population counter versus the generic
  full-adder counter tree: area and cell-count comparison (the paper argues
  half-adders are the cheaper dual-rail building block);
* negative-gate versus positive-gate clause mapping: cell-area comparison
  (the negative-gate optimisation is what keeps dual-rail area close to
  single-rail).
"""

from __future__ import annotations

import pytest

from repro.analysis import run_reduced_cd_comparison
from repro.core import DualRailBuilder, SpacerPolarity
from repro.datapath import (
    DatapathConfig,
    dual_rail_clause,
    dual_rail_popcount8,
)
from repro.datapath.popcount import dual_rail_popcount
from repro.synth import area_report


CONFIG = DatapathConfig(num_features=4, clauses_per_polarity=8)


def test_reduced_vs_full_completion_overhead(benchmark, umc):
    comparison = benchmark.pedantic(
        run_reduced_cd_comparison,
        kwargs={"library": umc, "config": CONFIG},
        rounds=1, iterations=1,
    )

    # On the full datapath (a single 1-of-3 output) both schemes are tiny;
    # the cell-count relation must still hold.
    assert comparison.datapath_reduced_cells <= comparison.datapath_full_cells

    # On a multi-output block (the 8-input population counter) the reduced
    # scheme's AND-tree aggregation is strictly cheaper than the C-element
    # tree of full output completion detection.
    print(f"\nCompletion-detection overhead (4-output counter): "
          f"reduced={comparison.block_reduced_area_um2:.1f} um^2, "
          f"full={comparison.block_full_area_um2:.1f} um^2")
    assert comparison.block_reduced_area_um2 < comparison.block_full_area_um2

    grace = comparison.grace
    print(f"Grace period: t_int={grace.t_int:.1f} ps, t_io={grace.t_io:.1f} ps, "
          f"td={grace.td:.1f} ps, t_done_fall={grace.t_done_fall:.1f} ps")
    assert grace.t_io > 0
    assert grace.t_done_fall == pytest.approx(grace.t_io + grace.td)


def _popcount_area(use_dalalah: bool, library):
    builder = DualRailBuilder("pop_ablation")
    inputs = [builder.input_bit(f"x{i}") for i in range(8)]
    if use_dalalah:
        bits = dual_rail_popcount8(builder, inputs)
    else:
        # Force the generic carry-save tree by splitting the inputs into a
        # 7+1 arrangement (avoiding the specialised 8-input structure).
        bits = dual_rail_popcount(builder, inputs[:7], name="gen")
        extra = dual_rail_popcount(builder, inputs[7:], name="one")
        bits = bits + extra
    for i, bit in enumerate(bits):
        builder.output_bit(f"y{i}", builder.align_polarity(bit, SpacerPolarity.ALL_ZERO))
    return area_report(builder.netlist, library)


def test_popcount_architecture_ablation(benchmark, umc):
    dalalah = benchmark.pedantic(_popcount_area, args=(True, umc), rounds=1, iterations=1)
    generic = _popcount_area(False, umc)
    print(f"\nPopulation counter ablation: HA-heavy={dalalah.total:.1f} um^2 "
          f"({dalalah.cell_count} cells), generic FA tree={generic.total:.1f} um^2 "
          f"({generic.cell_count} cells)")
    assert dalalah.total > 0 and generic.total > 0
    # Both are the same order of magnitude; the HA-heavy design avoids the
    # expensive dual-rail full adders.
    assert 0.3 < dalalah.total / generic.total < 3.0


def _clause_area(negative_gates: bool, library):
    builder = DualRailBuilder("clause_ablation", negative_gates=negative_gates)
    features = [builder.input_bit(f"f{i}") for i in range(CONFIG.num_features)]
    excludes = [builder.input_bit(f"e{i}") for i in range(2 * CONFIG.num_features)]
    clause = dual_rail_clause(builder, features, excludes)
    builder.output_bit("y", builder.align_polarity(clause, SpacerPolarity.ALL_ZERO))
    return area_report(builder.netlist, library)


def test_negative_gate_optimisation_ablation(benchmark, umc):
    negative = benchmark.pedantic(_clause_area, args=(True, umc), rounds=1, iterations=1)
    positive = _clause_area(False, umc)
    print(f"\nClause mapping ablation: negative gates={negative.total:.1f} um^2, "
          f"positive gates={positive.total:.1f} um^2")
    # NAND/NOR cells are smaller than AND/OR cells, so the negative-gate
    # clause block must not be larger than the positive-gate one.
    assert negative.total <= positive.total
