"""Integration tests: the complete dual-rail and single-rail datapaths against the golden model."""

import pytest

from repro.analysis import measure_dual_rail, measure_single_rail, random_workload
from repro.circuits import check_unate_only, full_diffusion_library, umc_ll_library
from repro.core import analyse_circuit_spacers
from repro.datapath import DatapathConfig, DualRailDatapath, SingleRailDatapath
from repro.synth import map_to_library, synthesize
from repro.tm import InferenceModel

LIB = umc_ll_library()

SMALL = DatapathConfig(num_features=2, clauses_per_polarity=2)


@pytest.fixture(scope="module")
def small_workload():
    return random_workload(num_features=2, clauses_per_polarity=2, num_operands=8,
                           include_probability=0.4, seed=23)


def test_config_validation():
    with pytest.raises(ValueError):
        DatapathConfig(num_features=0).validate()
    with pytest.raises(ValueError):
        DatapathConfig(completion="bogus").validate()
    assert DatapathConfig().count_width == 4


def test_dual_rail_datapath_structure():
    datapath = DualRailDatapath(SMALL)
    circuit = datapath.circuit
    # 2 features + 2 polarities * 2 clauses * 4 excludes = 18 logical inputs.
    assert datapath.input_bit_count() == 2 + 2 * 2 * 4
    assert circuit.done_net == "done"
    assert check_unate_only(circuit.netlist).ok
    assert analyse_circuit_spacers(circuit).ok
    assert len(circuit.one_of_n_outputs) == 1


def test_dual_rail_datapath_matches_golden_model(small_workload):
    measurement = measure_dual_rail(small_workload, LIB)
    assert measurement.correctness == 1.0
    assert measurement.monotonic
    assert measurement.latency.average > 0
    assert measurement.latency.maximum >= measurement.latency.average


def test_single_rail_datapath_matches_golden_model(small_workload):
    measurement = measure_single_rail(small_workload, LIB)
    assert measurement.correctness == 1.0
    assert measurement.clock_period_ps > 0


def test_dual_rail_runs_on_full_diffusion_library(small_workload):
    library = full_diffusion_library()
    measurement = measure_dual_rail(small_workload, library)
    assert measurement.correctness == 1.0
    # The mapped netlist must not contain cells missing from the library.
    for cell in measurement.synthesis.netlist.iter_cells():
        assert library.has_cell(cell.cell_type)


def test_dual_rail_functional_below_threshold_voltage(small_workload):
    library = full_diffusion_library()
    measurement = measure_dual_rail(small_workload, library, vdd=0.3,
                                    check_monotonic=False)
    assert measurement.correctness == 1.0
    nominal = measure_dual_rail(small_workload, library, check_monotonic=False)
    assert measurement.latency.average > 10 * nominal.latency.average


def test_operand_assignment_shape_checks():
    datapath = DualRailDatapath(SMALL)
    model = InferenceModel.random(SMALL.num_clauses, SMALL.num_features, seed=3)
    with pytest.raises(ValueError):
        datapath.operand_assignments([1, 0, 1], model.exclude)
    with pytest.raises(ValueError):
        datapath.operand_assignments([1, 0], model.exclude[:, :2])
    assignments = datapath.operand_assignments([1, 0], model.exclude)
    assert len(assignments) == datapath.input_bit_count()


def test_verdict_decoding():
    assert DualRailDatapath.decision_from_verdict("greater") == 1
    assert DualRailDatapath.decision_from_verdict("equal") == 1
    assert DualRailDatapath.decision_from_verdict("less") == 0
    with pytest.raises(ValueError):
        DualRailDatapath.decision_from_verdict("sideways")
    with pytest.raises(ValueError):
        DualRailDatapath.decode_verdict({"verdict": None})


def test_sequential_area_split_between_designs():
    dual = DualRailDatapath(SMALL)
    single = SingleRailDatapath(SMALL)
    dual_syn = synthesize(dual.circuit.netlist, LIB, enforce_unate=True)
    single_syn = synthesize(single.netlist, LIB, clocked=True)
    # Dual-rail sequential cells are C-elements (two per input bit); the
    # single-rail ones are flip-flops (one per input bit plus the outputs).
    assert dual_syn.area.sequential_cell_count == 2 * dual.input_bit_count()
    assert single_syn.area.sequential_cell_count == dual.input_bit_count() + 4
    # Areas are of the same order (the paper's "similar sequential area").
    ratio = dual_syn.area.sequential / single_syn.area.sequential
    assert 0.5 < ratio < 2.0


def test_mapping_to_full_diffusion_removes_unavailable_cells():
    library = full_diffusion_library()
    dual = DualRailDatapath(SMALL)
    mapped = map_to_library(dual.circuit.netlist, library)
    assert all(library.has_cell(t) for t in mapped.count_by_type())
    # The decomposition rule itself: an AOI32 instance must disappear.
    from repro.circuits import LogicBuilder
    builder = LogicBuilder("aoi32")
    nets = builder.inputs(["a", "b", "c", "d", "e"])
    builder.output("y", builder.cell("AOI32", nets))
    decomposed = map_to_library(builder.netlist, library)
    assert "AOI32" not in decomposed.count_by_type()


def test_grace_period_positive_for_reduced_cd(small_workload):
    measurement = measure_dual_rail(small_workload, LIB)
    assert measurement.grace.t_int >= measurement.grace.t_io or measurement.grace.td == 0.0
    assert measurement.grace.t_done_fall >= measurement.grace.t_io
