"""Functional tests for the magnitude comparators and the clause logic."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import LogicBuilder, check_unate_only, umc_ll_library
from repro.core import DualRailBuilder, SpacerPolarity
from repro.datapath import (
    comparator_decision_bit,
    dual_rail_clause,
    dual_rail_magnitude_comparator,
    single_rail_clause,
    single_rail_magnitude_comparator,
)
from repro.tm import InferenceModel
from tests.conftest import run_dual_rail_operands, simulate_combinational

LIB = umc_ll_library()
VERDICTS = ("less", "equal", "greater")


def _expected_verdict(a, b):
    if a > b:
        return "greater"
    if a == b:
        return "equal"
    return "less"


# ---------------------------------------------------------------------------
# Single-rail comparator
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("width", [2, 3, 4])
def test_single_rail_comparator_exhaustive(width):
    builder = LogicBuilder(f"cmp{width}")
    a_bits = builder.inputs([f"a{i}" for i in range(width)])
    b_bits = builder.inputs([f"b{i}" for i in range(width)])
    greater, equal, less = single_rail_magnitude_comparator(builder, a_bits, b_bits)
    builder.output("gt", greater)
    builder.output("eq", equal)
    builder.output("lt", less)
    builder.output("ge", comparator_decision_bit(builder, greater, equal))
    for a, b in itertools.product(range(2 ** width), repeat=2):
        values = {f"a{i}": (a >> i) & 1 for i in range(width)}
        values.update({f"b{i}": (b >> i) & 1 for i in range(width)})
        out = simulate_combinational(builder.netlist, LIB, values, ["gt", "eq", "lt", "ge"])
        assert out["gt"] == int(a > b)
        assert out["eq"] == int(a == b)
        assert out["lt"] == int(a < b)
        assert out["ge"] == int(a >= b)


# ---------------------------------------------------------------------------
# Dual-rail comparator (1-of-3 output)
# ---------------------------------------------------------------------------

def _dual_comparator_circuit(width):
    builder = DualRailBuilder(f"drcmp{width}")
    a_bits = [builder.input_bit(f"a{i}") for i in range(width)]
    b_bits = [builder.input_bit(f"b{i}") for i in range(width)]
    verdict = dual_rail_magnitude_comparator(builder, a_bits, b_bits)
    aligned = [builder.align_polarity(s, SpacerPolarity.ALL_ZERO)
               for s in (verdict.less, verdict.equal, verdict.greater)]
    builder.one_of_n_output("verdict", [s.pos for s in aligned], VERDICTS,
                            SpacerPolarity.ALL_ZERO)
    return builder.build()


def test_dual_rail_comparator_is_unate_only():
    circuit = _dual_comparator_circuit(4)
    assert check_unate_only(circuit.netlist).ok


@pytest.mark.parametrize("width", [2, 3])
def test_dual_rail_comparator_exhaustive(width):
    circuit = _dual_comparator_circuit(width)
    operands = []
    expected = []
    for a, b in itertools.product(range(2 ** width), repeat=2):
        op = {f"a{i}": (a >> i) & 1 for i in range(width)}
        op.update({f"b{i}": (b >> i) & 1 for i in range(width)})
        operands.append(op)
        expected.append(_expected_verdict(a, b))
    results = run_dual_rail_operands(circuit, LIB, operands)
    for res, exp in zip(results, expected):
        assert VERDICTS[res.one_of_n_outputs["verdict"]] == exp


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
def test_dual_rail_comparator_4bit_property(a, b):
    circuit = _dual_comparator_circuit(4)
    op = {f"a{i}": (a >> i) & 1 for i in range(4)}
    op.update({f"b{i}": (b >> i) & 1 for i in range(4)})
    result = run_dual_rail_operands(circuit, LIB, [op])[0]
    assert VERDICTS[result.one_of_n_outputs["verdict"]] == _expected_verdict(a, b)


def test_dual_rail_comparator_early_propagation_latency():
    """Operands decided at the MSB must finish earlier than equal operands."""
    circuit = _dual_comparator_circuit(4)
    msb_decided = {f"a{i}": 1 if i == 3 else 0 for i in range(4)}
    msb_decided.update({f"b{i}": 0 for i in range(4)})
    equal = {f"a{i}": 1 for i in range(4)}
    equal.update({f"b{i}": 1 for i in range(4)})
    results = run_dual_rail_operands(circuit, LIB, [msb_decided, equal])
    assert results[0].t_s_to_v < results[1].t_s_to_v


def test_comparator_width_mismatch_rejected():
    builder = DualRailBuilder("bad")
    a = [builder.input_bit("a0")]
    b = [builder.input_bit("b0"), builder.input_bit("b1")]
    with pytest.raises(ValueError):
        dual_rail_magnitude_comparator(builder, a, b)


# ---------------------------------------------------------------------------
# Clause logic
# ---------------------------------------------------------------------------

def _clause_reference(features, exclude_row):
    """Software reference of one clause (hardware ordering of excludes)."""
    value = 1
    for m, f in enumerate(features):
        direct = exclude_row[2 * m] or f == 1
        negated = exclude_row[2 * m + 1] or f == 0
        value &= int(direct and negated)
    return value


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=3),
       st.lists(st.integers(min_value=0, max_value=1), min_size=6, max_size=6))
def test_single_rail_clause_matches_reference(features, excludes):
    builder = LogicBuilder("clause_sr")
    f_nets = builder.inputs([f"f{i}" for i in range(3)])
    e_nets = builder.inputs([f"e{i}" for i in range(6)])
    builder.output("y", single_rail_clause(builder, f_nets, e_nets))
    values = {f"f{i}": features[i] for i in range(3)}
    values.update({f"e{i}": excludes[i] for i in range(6)})
    out = simulate_combinational(builder.netlist, LIB, values, ["y"])
    assert out["y"] == _clause_reference(features, excludes)


@settings(max_examples=12, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=2),
       st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4))
def test_dual_rail_clause_matches_reference(features, excludes):
    builder = DualRailBuilder("clause_dr")
    f_sigs = [builder.input_bit(f"f{i}") for i in range(2)]
    e_sigs = [builder.input_bit(f"e{i}") for i in range(4)]
    clause = dual_rail_clause(builder, f_sigs, e_sigs)
    builder.output_bit("y", builder.align_polarity(clause, SpacerPolarity.ALL_ZERO))
    circuit = builder.build()
    operand = {f"f{i}": features[i] for i in range(2)}
    operand.update({f"e{i}": excludes[i] for i in range(4)})
    result = run_dual_rail_operands(circuit, LIB, [operand])[0]
    assert result.outputs["y"] == _clause_reference(features, excludes)


def test_clause_matches_inference_model_masking():
    model = InferenceModel.random(2, 3, include_probability=0.5, seed=17)
    exclude_row = model.exclude[0]
    builder = LogicBuilder("clause_vs_model")
    f_nets = builder.inputs([f"f{i}" for i in range(3)])
    e_nets = builder.inputs([f"e{i}" for i in range(6)])
    builder.output("y", single_rail_clause(builder, f_nets, e_nets))
    for features in itertools.product([0, 1], repeat=3):
        values = {f"f{i}": features[i] for i in range(3)}
        values.update({f"e{i}": int(exclude_row[i]) for i in range(6)})
        out = simulate_combinational(builder.netlist, LIB, values, ["y"])
        assert out["y"] == model.clause_outputs(list(features))[0]


def test_clause_exclude_count_validation():
    builder = LogicBuilder("bad_clause")
    f_nets = builder.inputs(["f0", "f1"])
    e_nets = builder.inputs(["e0", "e1", "e2"])
    with pytest.raises(ValueError):
        single_rail_clause(builder, f_nets, e_nets)
