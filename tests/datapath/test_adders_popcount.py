"""Functional tests for the adder cells and the population counters."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import LogicBuilder, check_unate_only, umc_ll_library
from repro.core import DualRailBuilder, SpacerPolarity
from repro.datapath import (
    dual_rail_full_adder,
    dual_rail_half_adder,
    dual_rail_popcount,
    dual_rail_popcount8,
    output_width,
    single_rail_full_adder,
    single_rail_half_adder,
    single_rail_popcount,
    single_rail_popcount8,
)
from tests.conftest import run_dual_rail_operands, simulate_combinational


LIB = umc_ll_library()


# ---------------------------------------------------------------------------
# Adders
# ---------------------------------------------------------------------------

def test_single_rail_half_and_full_adder_truth_tables():
    builder = LogicBuilder("sr_adders")
    a, b, c = builder.inputs(["a", "b", "c"])
    hs, hc = single_rail_half_adder(builder, a, b)
    fs, fc = single_rail_full_adder(builder, a, b, c)
    for name, net in (("hs", hs), ("hc", hc), ("fs", fs), ("fc", fc)):
        builder.output(name, net)
    for va, vb, vc in itertools.product([0, 1], repeat=3):
        out = simulate_combinational(builder.netlist, LIB, {"a": va, "b": vb, "c": vc},
                                     ["hs", "hc", "fs", "fc"])
        assert out["hs"] == (va ^ vb)
        assert out["hc"] == (va & vb)
        assert out["fs"] == (va ^ vb ^ vc)
        assert out["fc"] == int(va + vb + vc >= 2)


def test_dual_rail_half_adder_cell_budget_matches_paper():
    builder = DualRailBuilder("dr_ha")
    a, b = builder.input_bit("a"), builder.input_bit("b")
    before = builder.netlist.cell_count()
    dual_rail_half_adder(builder, a, b)
    added = builder.netlist.cell_count() - before
    # Two complex gates (AO22) plus two simple gates (AND2/OR2).
    assert added == 4
    types = builder.netlist.count_by_type()
    assert types.get("AO22") == 2


def test_dual_rail_half_adder_preserves_polarity_and_function():
    builder = DualRailBuilder("dr_ha_f")
    a, b = builder.input_bit("a"), builder.input_bit("b")
    result = dual_rail_half_adder(builder, a, b)
    assert result.sum.polarity is SpacerPolarity.ALL_ZERO
    assert result.carry.polarity is SpacerPolarity.ALL_ZERO
    builder.output_bit("s", result.sum)
    builder.output_bit("c", result.carry)
    circuit = builder.build()
    operands = [{"a": x, "b": y} for x, y in itertools.product([0, 1], repeat=2)]
    results = run_dual_rail_operands(circuit, LIB, operands)
    for operand, res in zip(operands, results):
        assert res.outputs["s"] == operand["a"] ^ operand["b"]
        assert res.outputs["c"] == operand["a"] & operand["b"]


def test_dual_rail_full_adder_function():
    builder = DualRailBuilder("dr_fa")
    a, b, c = (builder.input_bit(n) for n in "abc")
    result = dual_rail_full_adder(builder, a, b, c)
    builder.output_bit("s", result.sum)
    builder.output_bit("co", result.carry)
    circuit = builder.build()
    operands = [{"a": x, "b": y, "c": z} for x, y, z in itertools.product([0, 1], repeat=3)]
    results = run_dual_rail_operands(circuit, LIB, operands)
    for operand, res in zip(operands, results):
        total = operand["a"] + operand["b"] + operand["c"]
        assert res.outputs["s"] == total % 2
        assert res.outputs["co"] == total // 2


# ---------------------------------------------------------------------------
# Population counters
# ---------------------------------------------------------------------------

def _count_from_bits(bits):
    return sum(b << i for i, b in enumerate(bits))


def test_output_width():
    assert output_width(1) == 1
    assert output_width(3) == 2
    assert output_width(8) == 4
    assert output_width(15) == 4


def test_single_rail_popcount8_exhaustive():
    builder = LogicBuilder("popcount8")
    inputs = builder.inputs([f"x{i}" for i in range(8)])
    bits = single_rail_popcount8(builder, inputs)
    names = [f"y{i}" for i in range(4)]
    for name, net in zip(names, bits):
        builder.output(name, net)
    for pattern in range(256):
        values = {f"x{i}": (pattern >> i) & 1 for i in range(8)}
        out = simulate_combinational(builder.netlist, LIB, values, names)
        assert _count_from_bits([out[n] for n in names]) == bin(pattern).count("1")


@pytest.mark.parametrize("width", [2, 3, 5, 6])
def test_single_rail_generic_popcount_exhaustive(width):
    builder = LogicBuilder(f"pop{width}")
    inputs = builder.inputs([f"x{i}" for i in range(width)])
    bits = single_rail_popcount(builder, inputs)
    names = [f"y{i}" for i in range(len(bits))]
    for name, net in zip(names, bits):
        builder.output(name, net)
    for pattern in range(2 ** width):
        values = {f"x{i}": (pattern >> i) & 1 for i in range(width)}
        out = simulate_combinational(builder.netlist, LIB, values, names)
        assert _count_from_bits([out[n] for n in names]) == bin(pattern).count("1")


def _dual_popcount_circuit(width):
    builder = DualRailBuilder(f"drpop{width}")
    inputs = [builder.input_bit(f"x{i}") for i in range(width)]
    bits = dual_rail_popcount(builder, inputs)
    for i, bit in enumerate(bits):
        builder.output_bit(f"y{i}", builder.align_polarity(bit, SpacerPolarity.ALL_ZERO))
    return builder.build(), len(bits)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=255))
def test_dual_rail_popcount8_matches_popcount(pattern):
    circuit, nbits = _dual_popcount_circuit(8)
    operand = {f"x{i}": (pattern >> i) & 1 for i in range(8)}
    result = run_dual_rail_operands(circuit, LIB, [operand])[0]
    value = _count_from_bits([result.outputs[f"y{i}"] for i in range(nbits)])
    assert value == bin(pattern).count("1")


@pytest.mark.parametrize("width", [3, 5])
def test_dual_rail_generic_popcount_exhaustive(width):
    circuit, nbits = _dual_popcount_circuit(width)
    operands = [
        {f"x{i}": (pattern >> i) & 1 for i in range(width)}
        for pattern in range(2 ** width)
    ]
    results = run_dual_rail_operands(circuit, LIB, operands)
    for pattern, result in enumerate(results):
        value = _count_from_bits([result.outputs[f"y{i}"] for i in range(nbits)])
        assert value == bin(pattern).count("1")


def test_dual_rail_popcount8_is_half_adder_dominated():
    builder = DualRailBuilder("drpop_cells")
    inputs = [builder.input_bit(f"x{i}") for i in range(8)]
    dual_rail_popcount8(builder, inputs)
    types = builder.netlist.count_by_type()
    # The HA-heavy structure uses AO22 pairs for every half-adder sum.
    assert types.get("AO22", 0) >= 20
    report = check_unate_only(builder.netlist)
    assert report.ok


def test_popcount_rejects_empty_input():
    builder = LogicBuilder("empty")
    with pytest.raises(ValueError):
        single_rail_popcount(builder, [])
