"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import pytest

from repro.circuits import CellLibrary, Netlist, full_diffusion_library, umc_ll_library
from repro.core import DualRailCircuit, compute_grace_period
from repro.sim import DualRailEnvironment, GateLevelSimulator


@pytest.fixture(scope="session")
def umc() -> CellLibrary:
    """The synthetic UMC LL library (shared across tests)."""
    return umc_ll_library()


@pytest.fixture(scope="session")
def full_diffusion() -> CellLibrary:
    """The synthetic FULL DIFFUSION library (shared across tests)."""
    return full_diffusion_library()


def simulate_combinational(
    netlist: Netlist,
    library: CellLibrary,
    inputs: Dict[str, int],
    outputs: Sequence[str],
    vdd: Optional[float] = None,
) -> Dict[str, Optional[int]]:
    """Drive a combinational single-rail netlist and return settled output values."""
    sim = GateLevelSimulator(netlist, library, vdd=vdd)
    sim.set_inputs({net: int(value) for net, value in inputs.items()})
    sim.settle()
    return {net: sim.value(net) for net in outputs}


def run_dual_rail_operands(
    circuit: DualRailCircuit,
    library: CellLibrary,
    operands: Sequence[Dict[str, int]],
    vdd: Optional[float] = None,
    grace: Optional[float] = None,
):
    """Simulate a dual-rail circuit through the handshake environment.

    Returns the list of :class:`repro.sim.handshake.DualRailInferenceResult`.
    """
    if grace is None:
        grace = compute_grace_period(circuit, library, vdd=vdd).td
    sim = GateLevelSimulator(circuit.netlist, library, vdd=vdd)
    env = DualRailEnvironment(circuit, sim, grace_period=grace)
    env.reset()
    return [env.infer(op) for op in operands]


# Make the helpers importable from test modules via the conftest plugin object.
@pytest.fixture(scope="session")
def combinational_runner():
    """Fixture handle on :func:`simulate_combinational`."""
    return simulate_combinational


@pytest.fixture(scope="session")
def dual_rail_runner():
    """Fixture handle on :func:`run_dual_rail_operands`."""
    return run_dual_rail_operands
