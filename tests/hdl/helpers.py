"""Builders for the datapath-block netlists the HDL tests round-trip."""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.core.dual_rail import DualRailBuilder, SpacerPolarity
from repro.datapath.adders import dual_rail_full_adder, dual_rail_half_adder
from repro.datapath.clause_logic import dual_rail_clause
from repro.datapath.comparator import dual_rail_magnitude_comparator
from repro.datapath.popcount import dual_rail_popcount


def half_adder_netlist() -> Netlist:
    """The paper's dual-rail half adder as a standalone design."""
    builder = DualRailBuilder("ha_block")
    a = builder.input_bit("a")
    b = builder.input_bit("b")
    out = dual_rail_half_adder(builder, a, b)
    builder.output_bit("s", builder.align_polarity(out.sum, SpacerPolarity.ALL_ZERO))
    builder.output_bit("c", builder.align_polarity(out.carry, SpacerPolarity.ALL_ZERO))
    return builder.build().netlist


def full_adder_netlist() -> Netlist:
    """Dual-rail full adder (two half adders + carry merge)."""
    builder = DualRailBuilder("fa_block")
    a = builder.input_bit("a")
    b = builder.input_bit("b")
    cin = builder.input_bit("cin")
    out = dual_rail_full_adder(builder, a, b, cin)
    builder.output_bit("s", builder.align_polarity(out.sum, SpacerPolarity.ALL_ZERO))
    builder.output_bit("c", builder.align_polarity(out.carry, SpacerPolarity.ALL_ZERO))
    return builder.build().netlist


def popcount_netlist(num_inputs: int) -> Netlist:
    """Generic dual-rail population counter over *num_inputs* votes."""
    builder = DualRailBuilder(f"pop{num_inputs}_block")
    inputs = [builder.input_bit(f"x{i}") for i in range(num_inputs)]
    bits = dual_rail_popcount(builder, inputs)
    for i, bit in enumerate(bits):
        builder.output_bit(f"y{i}", builder.align_polarity(bit, SpacerPolarity.ALL_ZERO))
    return builder.build().netlist


def comparator_netlist(width: int) -> Netlist:
    """MSB-first dual-rail magnitude comparator over *width*-bit operands."""
    builder = DualRailBuilder(f"cmp{width}_block")
    a_bits = builder.input_bus("a", width)
    b_bits = builder.input_bus("b", width)
    verdict = dual_rail_magnitude_comparator(builder, a_bits, b_bits)
    for name, sig in (("gt", verdict.greater), ("eq", verdict.equal),
                      ("lt", verdict.less)):
        builder.output_bit(name, builder.align_polarity(sig, SpacerPolarity.ALL_ZERO))
    return builder.build().netlist


def clause_netlist(num_features: int) -> Netlist:
    """One dual-rail clause (OR masks + AND tree) over *num_features* features."""
    builder = DualRailBuilder(f"clause{num_features}_block")
    features = [builder.input_bit(f"f{m}") for m in range(num_features)]
    excludes = [builder.input_bit(f"e{k}") for k in range(2 * num_features)]
    vote = dual_rail_clause(builder, features, excludes)
    builder.output_bit("vote", builder.align_polarity(vote, SpacerPolarity.ALL_ZERO))
    return builder.build().netlist
